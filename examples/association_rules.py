"""Association-rule mining from transaction samples (future work, §5).

The paper's conclusion proposes extending its sampling framework to
rule discovery. This example mines a Quest-style basket dataset three
ways: exact Apriori over all transactions, Toivonen-style uniform
sampling with a negative-border certificate, and length-biased sampling
(the basket analogue of density bias) with inverse-probability-
corrected supports.

Run:  python examples/association_rules.py
"""

import time

from repro.mining import (
    apriori,
    association_rules,
    make_transaction_dataset,
    sampled_apriori,
)


def main() -> None:
    data = make_transaction_dataset(
        n_transactions=30_000, n_items=150, random_state=11
    )
    min_support = 0.06
    print(f"basket data: {data.n_transactions} transactions over "
          f"{data.n_items} items, min_support={min_support:.0%}")

    start = time.perf_counter()
    exact = apriori(data, min_support=min_support)
    exact_time = time.perf_counter() - start
    rules = association_rules(exact, min_confidence=0.7)
    print(f"exact Apriori: {len(exact)} frequent itemsets, "
          f"{len(rules)} rules at 70% confidence ({exact_time:.2f}s)")
    print(f"  top rule: {rules[0]}")

    for bias in ("uniform", "length"):
        start = time.perf_counter()
        sampled = sampled_apriori(
            data,
            min_support=min_support,
            sample_size=1500,
            bias=bias,
            random_state=0,
        )
        elapsed = time.perf_counter() - start
        recall = len(set(sampled.frequent) & set(exact)) / len(exact)
        certificate = "certified complete" if sampled.certified else (
            f"{len(sampled.missed_border)} border itemsets turned out "
            "frequent — rerun or lower the sample threshold"
        )
        print(f"{bias:>8} 5% sample: recall {recall:.1%}, "
              f"1 full pass, border {sampled.border_size} itemsets, "
              f"{certificate} ({elapsed:.2f}s)")


if __name__ == "__main__":
    main()
