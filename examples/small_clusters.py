"""Recovering small, sparse clusters (the Figure 5 scenario).

When some clusters are tiny and sparse next to huge dense ones, a
uniform sample contains too few of their points and the clustering
algorithm dismisses them. A *negative* exponent (-1 < a < 0)
oversamples sparse regions, inflating the small clusters in the sample,
while Lemma 1 guarantees the dense clusters stay dense. This example
also demonstrates the inverse-probability weights that make weighted
K-means on the biased sample unbiased (section 3.1 of the paper).

Run:  python examples/small_clusters.py
"""

import numpy as np

from repro import CureClustering, DensityBiasedSampler, KMeans, UniformSampler
from repro.datasets import make_fig5_dataset
from repro.evaluation import count_found_clusters, sample_share_per_cluster


def main() -> None:
    dataset = make_fig5_dataset(
        n_dims=2, noise_fraction=0.1, n_points=60_000, random_state=3
    )
    sizes = dataset.cluster_sizes()
    print(f"cluster sizes: smallest {sizes.min()}, largest {sizes.max()} "
          f"({sizes.max() / sizes.min():.0f}x spread, 10x density spread)")

    sample_size = 900
    biased_sampler = DensityBiasedSampler(
        sample_size=sample_size, exponent=-0.25, random_state=0
    )
    biased = biased_sampler.sample(dataset.points)
    uniform = UniformSampler(sample_size, random_state=0).sample(
        dataset.points
    )

    # How much of the SMALLEST cluster lands in each sample?
    smallest = int(np.argmin(sizes))
    share_b = sample_share_per_cluster(biased, dataset)[smallest]
    share_u = sample_share_per_cluster(uniform, dataset)[smallest]
    print(f"smallest cluster sampled: biased {share_b:.1%} vs "
          f"uniform {share_u:.1%} of its points")

    for name, sample in (("biased a=-0.25", biased), ("uniform", uniform)):
        clustering = CureClustering(n_clusters=15).fit(sample.points)
        found = count_found_clusters(clustering, dataset.clusters)
        print(f"{name:>15}: {found} of {dataset.n_clusters} clusters found")

    # Weighted K-means on the biased sample: the inverse-probability
    # weights undo the sampling bias (section 3.1).
    weighted = KMeans(n_clusters=10, random_state=0).fit(
        biased.points, sample_weight=biased.weights
    )
    true_centers = np.array([c.center for c in dataset.clusters])
    errors = [
        np.linalg.norm(true_centers - center, axis=1).min()
        for center in weighted.centers
    ]
    print(f"weighted K-means on the biased sample: mean distance of its "
          f"centers to the nearest true center = {np.mean(errors):.3f}")


if __name__ == "__main__":
    main()
