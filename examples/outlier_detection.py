"""Distance-based outlier detection with density screening (section 3.2).

A DB(p, k) outlier has at most p neighbours within distance k. The
exact detectors must examine every point; the paper's approximate
detector evaluates the fitted density instead, keeps only the *likely*
outliers, and verifies those exactly — three sequential dataset passes
in total (fit, screen, verify). The one-pass count estimate shows how
to explore (p, k) settings cheaply before committing.

Run:  python examples/outlier_detection.py
"""

import time

from repro import ApproximateOutlierDetector, IndexedOutlierDetector
from repro.datasets import make_outlier_dataset
from repro.evaluation import outlier_precision_recall
from repro.utils.streams import DataStream


def main() -> None:
    data = make_outlier_dataset(
        n_points=60_000, n_outliers=40, n_clusters=6, random_state=7
    )
    k = data.guaranteed_radius
    print(f"dataset: {data.n_points} points, {len(data.outlier_indices)} "
          f"planted DB(0, {k:.3f}) outliers")

    # Cheap exploration: how many outliers would (p, k) flag? One pass.
    detector = ApproximateOutlierDetector(k=k, p=0, random_state=0)
    estimate = detector.estimate_outlier_count(data.points)
    print(f"one-pass count estimate: ~{estimate} outliers")

    # Full approximate detection with pass accounting.
    stream = DataStream(data.points)
    start = time.perf_counter()
    result = ApproximateOutlierDetector(k=k, p=0, random_state=0).detect(
        None, stream=stream
    )
    approx_time = time.perf_counter() - start
    precision, recall = outlier_precision_recall(
        result.indices, data.outlier_indices
    )
    print(f"approximate detector: {len(result)} outliers in "
          f"{stream.passes} dataset passes ({approx_time:.2f}s); "
          f"screened {result.n_candidates} candidates from "
          f"{data.n_points} points")
    print(f"  precision {precision:.2f}, recall {recall:.2f} "
          "(verification pass makes precision exact)")

    # Exact baseline for comparison.
    start = time.perf_counter()
    exact = IndexedOutlierDetector(k=k, p=0).detect(data.points)
    exact_time = time.perf_counter() - start
    agree = set(result.indices.tolist()) == set(exact.indices.tolist())
    print(f"exact kd-tree detector: {len(exact)} outliers "
          f"({exact_time:.2f}s); agreement with approximate: {agree}")


if __name__ == "__main__":
    main()
