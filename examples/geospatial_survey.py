"""Metro-area discovery in geospatial data (section 4.3, Real Datasets).

The paper's NorthEast postal dataset: three dense metropolitan cores
(New York, Philadelphia, Boston) drowned in rural scatter and small
towns. Uniform sampling returns mostly scatter; density-biased sampling
at a = 1 concentrates on the metros. This example runs both pipelines
on the parametric stand-in and also tunes the exponent to show the
a-spectrum in one place.

Run:  python examples/geospatial_survey.py
"""

from repro import CureClustering, DensityBiasedSampler, UniformSampler
from repro.datasets import northeast_dataset
from repro.evaluation import count_found_clusters, noise_fraction_in_sample

METROS = ("New York", "Philadelphia", "Boston")


def main() -> None:
    data = northeast_dataset(n_points=130_000, random_state=0)
    print(f"NorthEast stand-in: {data.n_points} 'postal addresses', "
          f"{len(METROS)} metro cores + towns + rural scatter")

    budget = int(0.02 * data.n_points)
    for name, sample in (
        (
            "biased a=1",
            DensityBiasedSampler(
                sample_size=budget, exponent=1.0, random_state=0
            ).sample(data.points),
        ),
        ("uniform", UniformSampler(budget, random_state=0).sample(data.points)),
    ):
        clustering = CureClustering(n_clusters=6).fit(sample.points)
        found = count_found_clusters(clustering, data.clusters)
        scatter = noise_fraction_in_sample(sample, data)
        print(f"{name:>11}: {found}/{len(METROS)} metros found; "
              f"{scatter:.0%} of the sample is scatter")

    # The exponent spectrum on the same data: from metro-hunting (a=1)
    # to equal-coverage mapping (a=-1).
    print("\nexponent spectrum (share of sample on metro cores):")
    for a in (1.0, 0.5, 0.0, -0.5, -1.0):
        sample = DensityBiasedSampler(
            sample_size=budget, exponent=a, random_state=0
        ).sample(data.points)
        metro_share = 1.0 - noise_fraction_in_sample(sample, data)
        print(f"  a={a:+.1f}: {metro_share:.0%} on metros")


if __name__ == "__main__":
    main()
