"""Decision trees from weighted biased samples (future work, §5).

Classification is the other task the paper nominates for biased
sampling. The recipe mirrors section 3.1's weighted K-means: draw a
density-biased sample, weight each point by the inverse of its
inclusion probability, and let the (weighted) Gini criterion see an
unbiased picture of the full training distribution.

Run:  python examples/decision_tree_sampling.py
"""

import time

from repro.core import DensityBiasedSampler, UniformSampler
from repro.mining import DecisionTreeClassifier, make_classification_dataset


def main() -> None:
    points, labels = make_classification_dataset(
        n_points=60_000, n_classes=5, imbalance=8.0, random_state=4
    )
    split = 48_000
    train_x, train_y = points[:split], labels[:split]
    test_x, test_y = points[split:], labels[split:]
    print(f"classification data: {split} train / {len(test_y)} test, "
          f"5 classes with 8x imbalance")

    start = time.perf_counter()
    full = DecisionTreeClassifier(max_depth=8).fit(train_x, train_y)
    full_time = time.perf_counter() - start
    print(f"full-data tree:    accuracy {full.score(test_x, test_y):.3f} "
          f"({full_time:.2f}s, {full.n_nodes_} nodes)")

    budget = 2400  # 5% of the training data
    uniform = UniformSampler(budget, random_state=0).sample(train_x)
    tree_u = DecisionTreeClassifier(max_depth=8).fit(
        uniform.points, train_y[uniform.indices]
    )
    print(f"uniform 5% tree:   accuracy {tree_u.score(test_x, test_y):.3f}")

    biased = DensityBiasedSampler(
        sample_size=budget, exponent=0.5, random_state=0
    ).sample(train_x)
    tree_b = DecisionTreeClassifier(max_depth=8).fit(
        biased.points, train_y[biased.indices],
        sample_weight=biased.weights,
    )
    print(f"biased 5% tree:    accuracy {tree_b.score(test_x, test_y):.3f} "
          "(inverse-probability weighted)")


if __name__ == "__main__":
    main()
