"""Out-of-core sampling: the pipeline over a file it never fully loads.

The paper's efficiency story is measured in *dataset passes* because
the data lives on disk. This example writes a dataset to a ``.npy``
file, then runs density estimation, biased sampling, clustering and
full-dataset labelling through the memory-mapped file stream — counting
the passes as it goes.

Run:  python examples/out_of_core.py
"""

import os
import tempfile

import numpy as np

from repro import CureClustering, DensityBiasedSampler, assign_to_clusters
from repro.datasets import make_clustered_dataset
from repro.utils import NpyFileStream


def main() -> None:
    data = make_clustered_dataset(
        n_points=200_000, n_clusters=8, noise_fraction=0.2, random_state=0
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "big_dataset.npy")
        np.save(path, data.points)
        size_mb = os.path.getsize(path) / 1e6
        print(f"dataset on disk: {path} ({size_mb:.1f} MB, "
              f"{data.n_points} rows)")

        stream = NpyFileStream(path, chunk_size=32_768)
        sampler = DensityBiasedSampler(
            sample_size=1500, exponent=1.0, random_state=0
        )
        sample = sampler.sample(None, stream=stream)
        print(f"sampled {len(sample)} points in {stream.passes} "
              "sequential passes (estimator fit, normaliser+densities, "
              "collection)")

        clustering = CureClustering(n_clusters=10).fit(sample.points)
        before = stream.passes
        labels = assign_to_clusters(None, clustering, stream=stream)
        print(f"clustered the sample in memory, labelled all "
              f"{labels.shape[0]} rows in {stream.passes - before} more "
              "pass")
        print(f"total passes over the file: {stream.passes}")


if __name__ == "__main__":
    main()
