"""Finding clusters buried in heavy noise (the Figure 4 scenario).

As the noise fraction climbs toward 80%, a uniform random sample is
mostly noise and the hierarchical algorithm stops finding the true
clusters. Density-biased sampling with a positive exponent (a = 1)
keeps the sample concentrated on the dense regions, so the clusters
survive. This example sweeps the noise level and prints both curves —
a miniature of the paper's Figure 4.

Run:  python examples/noisy_clusters.py
"""

from repro import CureClustering, DensityBiasedSampler, UniformSampler
from repro.datasets import make_fig4_dataset
from repro.evaluation import count_found_clusters, noise_fraction_in_sample


def found_clusters_on_sample(dataset, sample_points) -> int:
    if sample_points.shape[0] < 20:
        return 0
    clustering = CureClustering(n_clusters=15).fit(sample_points)
    return count_found_clusters(clustering, dataset.clusters)


def main() -> None:
    sample_size = 800
    print(f"{'noise':>6}  {'biased a=1':>10}  {'uniform':>8}  "
          f"{'noise in biased sample':>22}")
    for noise in (0.1, 0.3, 0.5, 0.8):
        dataset = make_fig4_dataset(
            n_dims=2, noise_fraction=noise, n_points=40_000, random_state=1
        )
        biased = DensityBiasedSampler(
            sample_size=sample_size, exponent=1.0, random_state=0
        ).sample(dataset.points)
        uniform = UniformSampler(sample_size, random_state=0).sample(
            dataset.points
        )
        print(f"{noise:>6.0%}  "
              f"{found_clusters_on_sample(dataset, biased.points):>10}  "
              f"{found_clusters_on_sample(dataset, uniform.points):>8}  "
              f"{noise_fraction_in_sample(biased, dataset):>22.1%}")
    print("\nbiased sampling holds its cluster count while uniform "
          "sampling degrades; the last column shows why — the biased "
          "sample carries far less noise than the dataset.")


if __name__ == "__main__":
    main()
