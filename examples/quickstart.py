"""Quickstart: density-biased sampling + clustering in ~30 lines.

Generates a noisy clustered dataset, draws a 1% density-biased sample
(oversampling dense regions), clusters the sample with the CURE-style
hierarchical algorithm, and labels the full dataset from the sample —
the complete pipeline of the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CureClustering, DensityBiasedSampler, assign_to_clusters
from repro.datasets import make_clustered_dataset
from repro.evaluation import count_found_clusters


def main() -> None:
    # A 100k-point dataset: 10 hyper-rectangular clusters + 30% noise.
    data = make_clustered_dataset(
        n_points=100_000,
        n_clusters=10,
        n_dims=2,
        noise_fraction=0.3,
        density_ratio=3.0,
        random_state=0,
    )
    print(f"dataset: {data.n_points} points, {data.n_clusters} clusters, "
          f"{int(data.noise_fraction * 100)}% noise")

    # Draw an expected-size-1000 biased sample; a=1 oversamples dense
    # regions, suppressing the noise. Three sequential dataset passes.
    sampler = DensityBiasedSampler(sample_size=1000, exponent=1.0,
                                   random_state=0)
    sample = sampler.sample(data.points)
    print(f"sample: {len(sample)} points "
          f"({sample.sampling_fraction:.2%} of the data)")

    # Cluster the sample with the paper's settings (10 representatives,
    # shrink factor 0.3), asking for a few extra clusters for noise.
    clustering = CureClustering(n_clusters=12).fit(sample.points)
    found = count_found_clusters(clustering, data.clusters)
    print(f"clusters found: {found} of {data.n_clusters}")

    # Label every original point from the clustered sample (one pass).
    labels = assign_to_clusters(data.points, clustering)
    largest = np.bincount(labels).max()
    print(f"assigned all {labels.shape[0]} points; "
          f"largest cluster holds {largest}")


if __name__ == "__main__":
    main()
