"""A tour of the density-estimation back-ends.

The biased sampler only needs *some* density estimator (section 2.2:
"our biased-sampling technique can use any density estimation method").
This example fits all five back-ends on the same bimodal dataset,
renders their 1-D density profiles along a slice as ASCII charts, and
reports fit/evaluate timings plus the summary size each one keeps.

Run:  python examples/density_estimator_tour.py
"""

import time

import numpy as np

from repro.density import (
    DctDensityEstimator,
    GridDensityEstimator,
    KernelDensityEstimator,
    KnnDensityEstimator,
    WaveletDensityEstimator,
)
from repro.utils import line_plot


def main() -> None:
    rng = np.random.default_rng(21)
    data = np.vstack(
        [
            rng.normal((0.3, 0.5), 0.04, size=(40_000, 2)),
            rng.normal((0.7, 0.5), 0.10, size=(20_000, 2)),
            rng.uniform(0.0, 1.0, size=(10_000, 2)),
        ]
    )
    print(f"dataset: {data.shape[0]} points, two Gaussian modes + noise\n")

    backends = (
        ("kde (1000 kernels)",
         KernelDensityEstimator(n_kernels=1000, random_state=0)),
        ("grid 32x32", GridDensityEstimator(bins_per_dim=32)),
        ("knn k=20", KnnDensityEstimator(n_sample=1000, k=20,
                                         random_state=0)),
        ("wavelet top-200", WaveletDensityEstimator(bins_per_dim=32,
                                                    n_coefficients=200)),
        ("dct top-200", DctDensityEstimator(bins_per_dim=32,
                                            n_coefficients=200)),
    )

    xs = np.linspace(0.05, 0.95, 25)
    slice_pts = np.column_stack([xs, np.full_like(xs, 0.5)])
    profiles: dict[str, list] = {}
    print(f"{'estimator':>20}  {'fit_s':>7}  {'eval_s':>7}")
    for name, estimator in backends:
        start = time.perf_counter()
        estimator.fit(data)
        fit_s = time.perf_counter() - start
        start = time.perf_counter()
        values = estimator.evaluate(slice_pts)
        eval_s = time.perf_counter() - start
        profiles[name.split(" ")[0]] = (values / values.max()).tolist()
        print(f"{name:>20}  {fit_s:>7.2f}  {eval_s:>7.4f}")

    print("\nnormalised density along the y=0.5 slice "
          "(both modes should appear):")
    print(line_plot(xs, profiles, width=66, height=14))


if __name__ == "__main__":
    main()
