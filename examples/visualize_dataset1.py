"""Figure 3, rendered in the terminal.

Draws the CURE dataset1 lookalike, a density-biased sample of it, and a
uniform sample of the same size, as ASCII scatter plots — the library's
dependency-free version of the paper's three panels. Watch the sparse
chain between the two ellipses: it survives in the uniform sample
(bridging them into one cluster) and fades in the biased one.

Run:  python examples/visualize_dataset1.py
"""

from repro.core import DensityBiasedSampler, UniformSampler
from repro.datasets import cure_dataset1
from repro.utils import scatter_plot


def main() -> None:
    data = cure_dataset1(n_points=60_000, random_state=0)
    budget = 700

    print("(a) the dataset — one big circle, two ellipses joined by a "
          "chain, two close small circles:")
    preview = data.points[:: max(1, data.n_points // 2500)]
    print(scatter_plot(preview, width=70, height=24))

    biased = DensityBiasedSampler(
        sample_size=budget, exponent=0.5, random_state=0
    ).sample(data.points)
    print(f"\n(b) density-biased sample, a=0.5, {len(biased)} points — "
          "the chain is gone, five clusters separate:")
    print(scatter_plot(biased.points, width=70, height=24,
                       bounds=((0, 0), (1, 1))))

    uniform = UniformSampler(budget, random_state=0).sample(data.points)
    print(f"\n(c) uniform sample, {len(uniform)} points — chain points "
          "survive and bridge the ellipses:")
    print(scatter_plot(uniform.points, width=70, height=24,
                       bounds=((0, 0), (1, 1))))


if __name__ == "__main__":
    main()
