"""Merge SARIF logs into one multi-run log for a single upload.

GitHub code scanning accepts one SARIF file per upload category; a
file may carry several ``runs``, each with its own tool driver. CI uses
this to ship the ``repro-lint`` and ``repro-audit`` results as one
upload while keeping the two tools distinguishable by driver name.

Inputs that are missing or unparseable are skipped with a warning
rather than failing the merge — a crashed analyser should not also
take down the other tool's report.

Usage::

    python tools/merge_sarif.py lint.sarif audit.sarif --output merged.sarif
"""

# CLI entry point: stdout IS the user interface here.
# repro-lint: disable=RL007

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main", "merge_logs"]

SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def merge_logs(paths: list[Path]) -> tuple[dict, list[str]]:
    """Combined SARIF log plus warnings for inputs that were skipped."""
    runs: list[dict] = []
    warnings: list[str] = []
    for path in paths:
        if not path.exists():
            warnings.append(f"skipping {path}: no such file")
            continue
        try:
            log = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            warnings.append(f"skipping {path}: not valid JSON ({exc})")
            continue
        file_runs = log.get("runs")
        if not isinstance(file_runs, list):
            warnings.append(f"skipping {path}: no runs array")
            continue
        runs.extend(file_runs)
    merged = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": runs,
    }
    return merged, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", type=Path)
    parser.add_argument(
        "--output", metavar="FILE", type=Path, required=True,
        help="file to write the merged log to",
    )
    args = parser.parse_args(argv)

    merged, warnings = merge_logs(args.inputs)
    for warning in warnings:
        print(f"merge-sarif: {warning}", file=sys.stderr)
    args.output.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    tools = [
        run.get("tool", {}).get("driver", {}).get("name", "<unnamed>")
        for run in merged["runs"]
    ]
    print(
        f"merge-sarif: wrote {len(merged['runs'])} run(s) "
        f"[{', '.join(tools) or 'none'}] to {args.output}."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
