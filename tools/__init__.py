"""Developer tooling for the repro repository (not shipped with the package)."""

__all__: list[str] = []
