"""RA001 — pass-count audit.

The paper's efficiency claim is a *scan budget*: density-biased
sampling costs one fit pass plus a bounded number of further dataset
scans. This rule makes the budget a static contract. For every audited
class (samplers, density estimators, outlier detectors) it

1. counts the ``DataStream`` scans statically reachable from the
   class's primary entry point (``sample`` / ``fit`` / ``detect``),
   attributed to the ``recorder.phase(...)`` block they execute under;
2. compares the result against the class's declared ``__n_passes__``
   (an int, or a ``{phase: count}`` dict) and against the
   ``Dataset passes: N`` line of the class docstring;
3. reports any scan reachable *inside a loop* as unbounded.

Scan intrinsics are ``for ... in <stream>``, ``.iter_with_offsets()``
and ``.materialize()`` on stream-typed receivers, comprehensions
iterating a stream, and ``shard_map(...)`` — the sharded fan-out of
one pass (its tasks partition the chunk sequence, so the dispatch
costs one pass total). Stream-typed values are inferred from parameter
names/annotations (``stream``, ``source``, ``DataStream``), stream
factory calls (``as_stream`` / ``_as_stream``) and constructor calls of
``DataStream`` subclasses, propagated through local assignment.

Calls resolved in-project contribute their callee's counts (memoized,
cycle-safe), with unphased callee scans attributed to the caller's
current phase. A *dynamically-typed* ``obj.fit(<stream>)`` call that
resolution cannot pin down is charged the estimator ABC's declared
contract (``DensityEstimator.__n_passes__``, default 1) — the audited
guarantee is then "one pass assuming the estimator honours its own
contract", a documented under-approximation (DESIGN.md §10).
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass, field, replace
from typing import Iterator

from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import (
    CallGraph,
    CallTarget,
    ClassNode,
    FuncNode,
    attr_chain,
    is_dispatch_call,
)

__all__ = [
    "PassCounter",
    "ScanSite",
    "audited_entries",
    "entry_pass_counts",
]

#: Method calls that consume one full pass when the receiver is a stream.
INTRINSIC_SCAN_ATTRS = frozenset({"iter_with_offsets", "materialize"})

#: Parameter names treated as stream-typed regardless of annotation.
STREAM_PARAM_NAMES = frozenset({"stream", "source", "data_stream"})

#: Calls whose result is a stream (wrapping, not scanning).
STREAM_FACTORY_NAMES = frozenset({"as_stream", "_as_stream"})

#: Root of the stream class hierarchy.
STREAM_BASE = "DataStream"

#: Estimator ABC whose ``__n_passes__`` is the assumed contract at
#: dynamically-typed ``.fit(<stream>)`` call sites.
ESTIMATOR_BASE = "DensityEstimator"

_DOC_PASSES_RE = re.compile(r"Dataset passes:\s*(\d+)")


@dataclass(frozen=True)
class ScanSite:
    """One statically-identified dataset scan, with its "why" trace."""

    path: str
    line: int
    kind: str
    phase: str | None
    #: Call frames from the audited entry down to the scanning function.
    trace: tuple[str, ...] = ()


# Counts are ``{phase or None: scans}``; ``math.inf`` marks unbounded.
Counts = dict


def _add(a: Counts, b: Counts) -> Counts:
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0) + v
    return out


def _bmax(a: Counts, b: Counts) -> Counts:
    out = dict(a)
    for k, v in b.items():
        out[k] = max(out.get(k, 0), v)
    return out


def _total(counts: Counts) -> float:
    return sum(counts.values()) if counts else 0


def _rephase(counts: Counts, phase: str | None) -> Counts:
    """Attribute a callee's unphased scans to the caller's phase."""
    if phase is None or None not in counts:
        return counts
    out = {k: v for k, v in counts.items() if k is not None}
    out[phase] = out.get(phase, 0) + counts[None]
    return out


@dataclass
class _State:
    """Mutable per-function analysis state (forward flow)."""

    func: FuncNode
    self_cls: ClassNode | None
    streams: set = field(default_factory=set)
    types: dict = field(default_factory=dict)


class PassCounter:
    """Memoized flow-sensitive dataset-scan counter over a call graph."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self._memo: dict[tuple[int, int], tuple[Counts, tuple[ScanSite, ...]]] = {}
        self._active: set[tuple[int, int]] = set()
        self._fit_contract = self._estimator_contract()

    def _estimator_contract(self) -> int:
        """Declared ``__n_passes__`` of the estimator ABC (default 1)."""
        for cls in self.graph.classes_by_name.get(ESTIMATOR_BASE, []):
            expr = self.graph.declared_attr(cls, "__n_passes__")
            if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
                return expr.value
        return 1

    # ------------------------------------------------------------------

    def count_target(
        self, target: CallTarget
    ) -> tuple[Counts, tuple[ScanSite, ...]]:
        """Scans performed by one (function, receiver class) node."""
        key = target.key
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._active:
            # Recursive helper: charge the cycle zero (under-approx).
            return {}, ()
        self._active.add(key)
        state = _State(func=target.func, self_cls=target.self_cls)
        self._seed_params(state)
        result = self._count_body(list(target.func.node.body), state, None)
        self._active.discard(key)
        self._memo[key] = result
        return result

    def _seed_params(self, state: _State) -> None:
        args = state.func.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in STREAM_PARAM_NAMES or self._stream_annotation(
                arg.annotation
            ):
                state.streams.add(arg.arg)

    @staticmethod
    def _stream_annotation(annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        for node in ast.walk(annotation):
            name = getattr(node, "id", None) or getattr(node, "attr", None)
            if isinstance(name, str) and "Stream" in name:
                return True
        return False

    # ------------------------------------------------------------------
    # Statements

    def _count_body(
        self, stmts: list, state: _State, phase: str | None
    ) -> tuple[Counts, tuple[ScanSite, ...]]:
        counts: Counts = {}
        sites: list[ScanSite] = []
        for stmt in stmts:
            c, s = self._count_stmt(stmt, state, phase)
            counts = _add(counts, c)
            sites.extend(s)
        return counts, tuple(sites)

    def _count_stmt(
        self, stmt: ast.stmt, state: _State, phase: str | None
    ) -> tuple[Counts, tuple[ScanSite, ...]]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return {}, ()
        if isinstance(stmt, ast.Assign):
            counts, sites = self._scan_node(stmt.value, state, phase)
            self._bind(stmt.targets, stmt.value, state)
            return counts, sites
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return {}, ()
            counts, sites = self._scan_node(stmt.value, state, phase)
            self._bind([stmt.target], stmt.value, state)
            return counts, sites
        if isinstance(stmt, (ast.If,)):
            counts, sites = self._scan_node(stmt.test, state, phase)
            body = self._count_body(stmt.body, state, phase)
            orelse = self._count_body(stmt.orelse, state, phase)
            return (
                _add(counts, _bmax(body[0], orelse[0])),
                sites + body[1] + orelse[1],
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            counts, sites = self._scan_node(stmt.iter, state, phase)
            if self._is_stream_expr(stmt.iter, state):
                counts = _add(counts, {phase: 1})
                sites = sites + (
                    ScanSite(
                        path=state.func.module.display_path,
                        line=stmt.iter.lineno,
                        kind="for-loop over stream",
                        phase=phase,
                    ),
                )
            body = self._loopify(self._count_body(stmt.body, state, phase))
            orelse = self._count_body(stmt.orelse, state, phase)
            return (
                _add(_add(counts, body[0]), orelse[0]),
                sites + body[1] + orelse[1],
            )
        if isinstance(stmt, ast.While):
            counts, sites = self._scan_node(stmt.test, state, phase)
            body = self._loopify(self._count_body(stmt.body, state, phase))
            return _add(counts, body[0]), sites + body[1]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            counts: Counts = {}
            sites: tuple[ScanSite, ...] = ()
            inner_phase = phase
            for item in stmt.items:
                label = self._phase_label(item.context_expr)
                if label is not None:
                    inner_phase = label
                else:
                    c, s = self._scan_node(item.context_expr, state, phase)
                    counts = _add(counts, c)
                    sites = sites + s
            body = self._count_body(stmt.body, state, inner_phase)
            return _add(counts, body[0]), sites + body[1]
        if isinstance(stmt, ast.Try):
            counts, sites = self._count_body(stmt.body, state, phase)
            handlers: Counts = {}
            for handler in stmt.handlers:
                h = self._count_body(handler.body, state, phase)
                handlers = _bmax(handlers, h[0])
                sites = sites + h[1]
            for extra in (stmt.orelse, stmt.finalbody):
                e = self._count_body(extra, state, phase)
                counts = _add(counts, e[0])
                sites = sites + e[1]
            return _add(counts, handlers), sites
        if isinstance(stmt, ast.Return):
            return self._scan_node(stmt.value, state, phase)
        if isinstance(stmt, (ast.Expr, ast.AugAssign)):
            value = stmt.value
            return self._scan_node(value, state, phase)
        if isinstance(stmt, ast.Raise):
            counts, sites = self._scan_node(stmt.exc, state, phase)
            cause = self._scan_node(stmt.cause, state, phase)
            return _add(counts, cause[0]), sites + cause[1]
        if isinstance(stmt, ast.Assert):
            return self._scan_node(stmt.test, state, phase)
        return {}, ()

    @staticmethod
    def _loopify(
        result: tuple[Counts, tuple[ScanSite, ...]]
    ) -> tuple[Counts, tuple[ScanSite, ...]]:
        """A scan inside a loop body executes an unbounded number of times."""
        counts, sites = result
        if _total(counts) == 0:
            return result
        return (
            {k: math.inf for k, v in counts.items() if v},
            tuple(
                replace(site, kind=f"{site.kind} (inside loop)")
                for site in sites
            ),
        )

    def _bind(self, targets: list, value: ast.expr, state: _State) -> None:
        """Forward-propagate stream-ness and constructor types."""
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        if self._is_stream_expr(value, state):
            state.streams.add(name)
            return
        state.streams.discard(name)
        constructed = self.graph._constructed_class(
            value, self.graph.scope(state.func.module)
        )
        if constructed is not None:
            state.types[name] = constructed
        else:
            state.types.pop(name, None)

    @staticmethod
    def _phase_label(expr: ast.expr) -> str | None:
        """``recorder.phase("draw")`` -> ``"draw"``."""
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "phase"
            and expr.args
            and isinstance(expr.args[0], ast.Constant)
            and isinstance(expr.args[0].value, str)
        ):
            return expr.args[0].value
        return None

    # ------------------------------------------------------------------
    # Expressions

    def _is_stream_expr(self, expr: ast.expr | None, state: _State) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in state.streams
        if isinstance(expr, ast.IfExp):
            return self._is_stream_expr(expr.body, state) or self._is_stream_expr(
                expr.orelse, state
            )
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain and chain[-1] in STREAM_FACTORY_NAMES:
                return True
            constructed = self.graph._constructed_class(
                expr, self.graph.scope(state.func.module)
            )
            if constructed is not None and (
                constructed.name == STREAM_BASE
                or self.graph.inherits_from(constructed, STREAM_BASE)
            ):
                return True
        return False

    def _scan_node(
        self, node: ast.AST | None, state: _State, phase: str | None
    ) -> tuple[Counts, tuple[ScanSite, ...]]:
        if node is None:
            return {}, ()
        if isinstance(node, ast.Call):
            return self._scan_call(node, state, phase)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            counts: Counts = {}
            sites: tuple[ScanSite, ...] = ()
            for gen in node.generators:
                if self._is_stream_expr(gen.iter, state):
                    counts = _add(counts, {phase: 1})
                    sites = sites + (
                        ScanSite(
                            path=state.func.module.display_path,
                            line=gen.iter.lineno,
                            kind="comprehension over stream",
                            phase=phase,
                        ),
                    )
                else:
                    c, s = self._scan_node(gen.iter, state, phase)
                    counts = _add(counts, c)
                    sites = sites + s
            # Element/condition scans are not multiplied by the loop —
            # a deliberate under-approximation (no such idiom in-tree).
            return counts, sites
        if isinstance(node, ast.IfExp):
            counts, sites = self._scan_node(node.test, state, phase)
            body = self._scan_node(node.body, state, phase)
            orelse = self._scan_node(node.orelse, state, phase)
            return (
                _add(counts, _bmax(body[0], orelse[0])),
                sites + body[1] + orelse[1],
            )
        counts = {}
        sites = ()
        for child in ast.iter_child_nodes(node):
            c, s = self._scan_node(child, state, phase)
            counts = _add(counts, c)
            sites = sites + s
        return counts, sites

    def _scan_call(
        self, call: ast.Call, state: _State, phase: str | None
    ) -> tuple[Counts, tuple[ScanSite, ...]]:
        counts: Counts = {}
        sites: tuple[ScanSite, ...] = ()

        # Arguments first (e.g. ``np.vstack(list(source.iter_with_offsets()))``).
        for arg in call.args:
            c, s = self._scan_node(arg, state, phase)
            counts, sites = _add(counts, c), sites + s
        for kw in call.keywords:
            c, s = self._scan_node(kw.value, state, phase)
            counts, sites = _add(counts, c), sites + s

        func_expr = call.func
        # Intrinsic: .iter_with_offsets() / .materialize() on a stream.
        if (
            isinstance(func_expr, ast.Attribute)
            and func_expr.attr in INTRINSIC_SCAN_ATTRS
            and self._is_stream_expr(func_expr.value, state)
        ):
            return (
                _add(counts, {phase: 1}),
                sites
                + (
                    ScanSite(
                        path=state.func.module.display_path,
                        line=call.lineno,
                        kind=f".{func_expr.attr}()",
                        phase=phase,
                    ),
                ),
            )

        # Intrinsic: shard_map(...) — a shard fan-out partitions one
        # pass's chunk sequence across its tasks, so the dispatch reads
        # each row of the plan's stream exactly once regardless of the
        # shard or worker count (repro.sharding.runner).
        chain = attr_chain(func_expr)
        if chain and chain[-1] == "shard_map":
            return (
                _add(counts, {phase: 1}),
                sites
                + (
                    ScanSite(
                        path=state.func.module.display_path,
                        line=call.lineno,
                        kind="shard_map() fan-out",
                        phase=phase,
                    ),
                ),
            )

        # Parallel dispatch: the worker runs once per chunk.
        if self._is_dispatch(call):
            c, s = self._worker_counts(call, state, phase)
            return _add(counts, c), sites + s

        # In-project resolution.
        targets = self.graph.resolve_call(
            call, state.func, state.self_cls, state.types
        )
        if targets:
            target = targets[0]
            callee_counts, callee_sites = self.count_target(target)
            callee_counts = _rephase(callee_counts, phase)
            hop = state.func.frame(call.lineno)
            for site in callee_sites:
                sites = sites + (
                    replace(
                        site,
                        phase=site.phase if site.phase is not None else phase,
                        trace=(hop,) + site.trace,
                    ),
                )
            return _add(counts, callee_counts), sites

        # Unresolved ``obj.fit(<stream>)``: charge the estimator contract.
        if (
            isinstance(func_expr, ast.Attribute)
            and func_expr.attr == "fit"
            and self._passes_stream(call, state)
        ):
            return (
                _add(counts, {phase: self._fit_contract}),
                sites
                + (
                    ScanSite(
                        path=state.func.module.display_path,
                        line=call.lineno,
                        kind=(
                            "estimator .fit() contract "
                            f"({ESTIMATOR_BASE}.__n_passes__ = "
                            f"{self._fit_contract})"
                        ),
                        phase=phase,
                    ),
                ),
            )

        # Unresolved call: scan any sub-expressions of the callee itself
        # (e.g. the receiver of a chained call).
        for child in ast.iter_child_nodes(func_expr):
            c, s = self._scan_node(child, state, phase)
            counts, sites = _add(counts, c), sites + s
        return counts, sites

    def _passes_stream(self, call: ast.Call, state: _State) -> bool:
        return any(
            self._is_stream_expr(arg, state) for arg in call.args
        ) or any(
            self._is_stream_expr(kw.value, state) for kw in call.keywords
        )

    @staticmethod
    def _is_dispatch(call: ast.Call) -> bool:
        return is_dispatch_call(call)

    def _worker_counts(
        self, call: ast.Call, state: _State, phase: str | None
    ) -> tuple[Counts, tuple[ScanSite, ...]]:
        """A worker that scans a stream does so once per chunk: unbounded."""
        if not call.args:
            return {}, ()
        workers = self.graph.unwrap_callable(
            call.args[0], state.func, state.self_cls, state.types
        )
        counts: Counts = {}
        sites: tuple[ScanSite, ...] = ()
        hop = state.func.frame(call.lineno)
        for worker in workers:
            wc, ws = self.count_target(worker)
            if _total(wc) == 0:
                continue
            counts = _add(counts, {phase: math.inf})
            for site in ws:
                sites = sites + (
                    replace(
                        site,
                        kind=f"{site.kind} (in parallel worker)",
                        phase=site.phase if site.phase is not None else phase,
                        trace=(hop,) + site.trace,
                    ),
                )
        return counts, sites


# ----------------------------------------------------------------------
# Entry-point discovery and the rule itself


def audited_entries(
    graph: CallGraph,
) -> Iterator[tuple[ClassNode, FuncNode, str]]:
    """(class, entry method, kind) for every class under pass audit.

    * ``OutlierDetector`` subclasses -> ``detect``;
    * ``DensityEstimator`` subclasses -> ``fit``;
    * any class whose ``sample`` method takes a ``stream`` parameter
      -> ``sample`` (the samplers share no ABC).

    Abstract classes and non-library modules (tests, benchmarks,
    examples) are skipped.
    """
    for cls in graph.classes:
        if not cls.module.is_library or graph.is_abstract(cls):
            continue
        if graph.inherits_from(cls, "OutlierDetector"):
            entry = graph.lookup_method(cls, "detect")
            if entry is not None:
                yield cls, entry, "detector"
            continue
        if graph.inherits_from(cls, ESTIMATOR_BASE):
            entry = graph.lookup_method(cls, "fit")
            if entry is not None:
                yield cls, entry, "estimator"
            continue
        entry = graph.lookup_method(cls, "sample")
        if entry is not None and _has_stream_param(entry.node):
            yield cls, entry, "sampler"


def _has_stream_param(node: ast.FunctionDef) -> bool:
    args = node.args
    return any(
        arg.arg in STREAM_PARAM_NAMES
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    )


def entry_pass_counts(graph: CallGraph, class_name: str) -> Counts:
    """Per-phase static scan counts for one audited class (test hook)."""
    counter = PassCounter(graph)
    for cls, entry, _ in audited_entries(graph):
        if cls.name == class_name:
            counts, _sites = counter.count_target(CallTarget(entry, cls))
            return counts
    raise KeyError(f"no audited entry point found for class {class_name!r}")


def _parse_declared(expr: ast.expr) -> int | dict | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return expr.value
    if isinstance(expr, ast.Dict):
        out: dict = {}
        for key, value in zip(expr.keys, expr.values):
            if not (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
            ):
                return None
            out[key.value] = value.value
        return out
    return None


def _fmt_counts(counts: Counts) -> str:
    if not counts:
        return "0"
    parts = []
    for key in sorted(counts, key=lambda k: (k is None, k or "")):
        value = counts[key]
        label = key if key is not None else "unphased"
        shown = "unbounded" if math.isinf(value) else str(int(value))
        parts.append(f"{label}={shown}")
    return f"{int(_total(counts)) if not _has_inf(counts) else 'unbounded'} ({', '.join(parts)})"


def _has_inf(counts: Counts) -> bool:
    return any(math.isinf(v) for v in counts.values())


def _site_trace(sites: tuple[ScanSite, ...], limit: int = 8) -> tuple[str, ...]:
    trace: list[str] = []
    for site in sites[:limit]:
        trace.extend(site.trace)
        label = site.phase if site.phase is not None else "unphased"
        trace.append(f"{site.kind} scan [{label}] at {site.path}:{site.line}")
    if len(sites) > limit:
        trace.append(f"... {len(sites) - limit} more scan site(s)")
    return tuple(trace)


@register
class PassCountAudit(AuditRule):
    code = "RA001"
    summary = (
        "samplers/estimators/detectors declare __n_passes__ matching the "
        "statically counted dataset scans (and the docstring states it)"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        counter = PassCounter(graph)
        for cls, entry, kind in audited_entries(graph):
            counts, sites = counter.count_target(CallTarget(entry, cls))
            anchor = cls.qualname
            symbol = f"{cls.name}.{entry.name}"

            if _has_inf(counts):
                yield self.finding(
                    cls.module,
                    cls.node,
                    f"{symbol} reaches a dataset scan inside a loop: "
                    f"statically unbounded passes ({_fmt_counts(counts)})",
                    anchor=anchor,
                    trace=_site_trace(
                        tuple(
                            s
                            for s in sites
                            if "loop" in s.kind or "worker" in s.kind
                        )
                        or sites
                    ),
                )
                continue

            total = int(_total(counts))
            declared_expr = graph.declared_attr(cls, "__n_passes__")
            declared = (
                _parse_declared(declared_expr)
                if declared_expr is not None
                else None
            )
            if declared_expr is None:
                yield self.finding(
                    cls.module,
                    cls.node,
                    f"{kind} {cls.name} has no __n_passes__ declaration "
                    f"(statically counted {_fmt_counts(counts)} dataset "
                    f"scans from {symbol})",
                    anchor=anchor,
                    trace=_site_trace(sites),
                )
            elif declared is None:
                owner = graph.own_or_inherited_attr_owner(cls, "__n_passes__")
                yield self.finding(
                    (owner or cls).module,
                    (owner or cls).node,
                    f"{cls.name}.__n_passes__ must be an int literal or a "
                    "{str: int} dict literal",
                    anchor=anchor,
                )
            elif isinstance(declared, int):
                if declared != total:
                    yield self.finding(
                        cls.module,
                        cls.node,
                        f"{symbol} statically performs {_fmt_counts(counts)} "
                        f"dataset scans but __n_passes__ declares {declared}",
                        anchor=anchor,
                        trace=_site_trace(sites),
                    )
            else:
                computed = {
                    (k if k is not None else "unphased"): int(v)
                    for k, v in counts.items()
                    if v
                }
                if computed != declared:
                    yield self.finding(
                        cls.module,
                        cls.node,
                        f"{symbol} statically performs {_fmt_counts(counts)} "
                        f"dataset scans but __n_passes__ declares {declared}",
                        anchor=anchor,
                        trace=_site_trace(sites),
                    )

            if declared is not None:
                declared_total = (
                    declared
                    if isinstance(declared, int)
                    else sum(declared.values())
                )
                yield from self._check_docstring(
                    graph, cls, declared_total, anchor
                )

    def _check_docstring(
        self, graph: CallGraph, cls: ClassNode, declared_total: int, anchor: str
    ) -> Iterator[Finding]:
        doc = ast.get_docstring(cls.node)
        match = _DOC_PASSES_RE.search(doc) if doc else None
        if match is None:
            yield self.finding(
                cls.module,
                cls.node,
                f"{cls.name} docstring must state its scan budget with a "
                f'"Dataset passes: {declared_total}" line',
                anchor=f"{anchor}.__doc__",
            )
        elif int(match.group(1)) != declared_total:
            yield self.finding(
                cls.module,
                cls.node,
                f'{cls.name} docstring says "Dataset passes: '
                f'{match.group(1)}" but __n_passes__ totals '
                f"{declared_total}",
                anchor=f"{anchor}.__doc__",
            )
