"""RA011 — must-release lifecycle audit for acquired resources.

A shared-memory segment that is never unlinked outlives the run as a
file in ``/dev/shm`` (or the tempdir); a temp file or raw file handle
that is never closed leaks a descriptor per chunk. The shm layer's
contract is *coordinator ownership*: ``SharedChunks`` creates segments
in ``__enter__`` and its ``__exit__``/``_release`` unlinks every one —
workers only ever map and never own. This rule proves the release
half of that contract on the per-function CFG
(:func:`tools.astkit.build_cfg`): for every *acquire site* — an
assignment whose value is a bare ``open``/``os.fdopen``/
``tempfile.mkstemp``/``mkdtemp``/``NamedTemporaryFile``/
``np.memmap``/``SharedArray.create`` call — every CFG path from the
acquire to the function exit, *including exception edges*, must cross
a release (``.close()``/``.unlink()``/``.release()``/``.cleanup()``/
``os.close``/``os.unlink``/``os.remove``/``shutil.rmtree``) of that
resource.

Exceptions raised *at* the acquire statement itself are not leak
paths — the CFG terminates a block at its may-raise statement, so the
acquire block's exception edges describe the acquire failing before
any resource exists; the query starts from its normal successors.

Ownership-transfer escapes are exempt (the resource's lifecycle
continues elsewhere, beyond one function's CFG):

* returned or yielded, or aliased into another local / a container;
* passed as an argument to a non-release call (``os.fdopen(fd)``,
  ``cls(path=path)`` — the callee or constructed object owns it);
* parked on ``self`` — sanctioned only when the owning class declares
  a release method (``close``/``__exit__``/``__del__``/``release``/
  ``_release``/``cleanup``/``unlink``), the ``SharedChunks`` shape;
  a park on a class with no release method is flagged.

``with``-managed acquires are inherently released and never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import CallGraph, FuncNode, attr_chain

__all__ = ["LifecycleAudit", "ACQUIRE_TAILS"]

#: Call-name tails that acquire a releasable resource when assigned.
ACQUIRE_TAILS = frozenset(
    {
        "open",
        "fdopen",
        "mkstemp",
        "mkdtemp",
        "NamedTemporaryFile",
        "TemporaryFile",
        "memmap",
    }
)

#: ``<receiver>.<method>()`` method tails releasing their receiver.
_RELEASE_METHODS = frozenset(
    {"close", "unlink", "release", "cleanup", "terminate", "__exit__"}
)

#: ``f(resource)`` function tails releasing their argument.
_RELEASE_FUNCS = frozenset({"close", "unlink", "remove", "rmtree"})

#: Methods whose presence on a class sanctions parking a resource on self.
_OWNER_RELEASE_METHODS = frozenset(
    {
        "close",
        "__exit__",
        "__aexit__",
        "__del__",
        "release",
        "_release",
        "cleanup",
        "unlink",
    }
)


def _shallow_walk(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs/lambdas."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _acquire_call(call: ast.Call) -> str | None:
    """The acquire kind of a call, or None."""
    chain = attr_chain(call.func)
    if not chain:
        return None
    if chain[-1] in ACQUIRE_TAILS:
        return chain[-1]
    if chain[-1] == "create" and len(chain) >= 2 and chain[-2] == "SharedArray":
        return "SharedArray.create"
    return None


def _escaping_ref(expr: ast.expr | None, name: str) -> bool:
    """Whether ``expr`` passes the resource *object* along.

    True only when the bare name flows into the expression value —
    directly, through container literals, conditionals or walruses.
    ``f.read()`` references ``f`` but yields data, not the handle, so
    call results and attribute loads do not count.
    """
    if expr is None:
        return False
    if isinstance(expr, ast.Name):
        return expr.id == name
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return any(_escaping_ref(e, name) for e in expr.elts)
    if isinstance(expr, ast.Dict):
        values = list(expr.keys) + list(expr.values)
        return any(v is not None and _escaping_ref(v, name) for v in values)
    if isinstance(expr, ast.Starred):
        return _escaping_ref(expr.value, name)
    if isinstance(expr, ast.IfExp):
        return _escaping_ref(expr.body, name) or _escaping_ref(
            expr.orelse, name
        )
    if isinstance(expr, (ast.NamedExpr, ast.Await)):
        return _escaping_ref(expr.value, name)
    return False


def _is_release_stmt(stmt: ast.stmt, name: str) -> bool:
    """Whether ``stmt`` releases the resource bound to ``name``."""
    for node in _shallow_walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        chain = attr_chain(node.func)
        if not chain:
            continue
        if (
            len(chain) == 2
            and chain[0] == name
            and chain[1] in _RELEASE_METHODS
        ):
            return True
        if chain[-1] in _RELEASE_FUNCS and any(
            isinstance(arg, ast.Name) and arg.id == name for arg in node.args
        ):
            return True
    return False


@register
class LifecycleAudit(AuditRule):
    code = "RA011"
    summary = (
        "every shm/tempfile/file-handle/memmap acquire is released on "
        "all CFG paths (exception edges included) or its ownership is "
        "transferred to a releasing owner"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        for func in graph.iter_functions():
            yield from self._check_function(graph, func)

    # ------------------------------------------------------------------

    def _check_function(
        self, graph: CallGraph, func: FuncNode
    ) -> Iterator[Finding]:
        acquires = self._acquire_sites(func)
        if not acquires:
            return
        cfg = None
        for stmt, name, kind in acquires:
            escape = self._escape_of(graph, func, stmt, name)
            if escape == "owned":
                continue
            if escape is not None:
                yield escape
                continue
            if cfg is None:
                cfg = graph.cfg_of(func)
            start = cfg.block_index(stmt)
            if start is None:
                continue  # inside a nested def: its own CFG's problem
            barriers = {
                block.index
                for block in cfg.blocks
                if any(_is_release_stmt(s, name) for s in block.statements)
            }
            if not barriers:
                yield self.finding(
                    func.module,
                    stmt,
                    f"{kind}(...) acquired as {name} in {func.qualname} "
                    "is never closed/unlinked and never transferred — "
                    "the resource leaks on every path",
                    anchor=f"{func.qualname}:never-released:{name}",
                    trace=(func.frame(stmt.lineno),),
                )
                continue
            normal_leak = any(
                succ not in barriers
                and cfg.reaches_exit_avoiding(succ, barriers)
                for succ in cfg.blocks[start].succs
            )
            if normal_leak:
                yield self.finding(
                    func.module,
                    stmt,
                    f"{kind}(...) acquired as {name} in {func.qualname} "
                    "escapes the function on a path that skips its "
                    "release (exception edges included) — releases must "
                    "postdominate the acquire (try/finally or a "
                    "catch-all handler)",
                    anchor=f"{func.qualname}:leaky-path:{name}",
                    trace=(func.frame(stmt.lineno),),
                )

    # ------------------------------------------------------------------
    # Acquire-site discovery

    @staticmethod
    def _acquire_sites(
        func: FuncNode,
    ) -> list[tuple[ast.stmt, str, str]]:
        """(statement, bound name, kind) per resource-acquiring assign.

        A tuple target (``fd, path = mkstemp()``) yields one site per
        bound name: each component is released independently.
        """
        sites: list[tuple[ast.stmt, str, str]] = []
        for node in _shallow_walk(func.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            if not isinstance(node.value, ast.Call):
                continue
            kind = _acquire_call(node.value)
            if kind is None:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name):
                sites.append((node, target.id, kind))
            elif isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        sites.append((node, element.id, kind))
        return sites

    # ------------------------------------------------------------------
    # Escape analysis

    def _escape_of(
        self,
        graph: CallGraph,
        func: FuncNode,
        acquire: ast.stmt,
        name: str,
    ) -> Finding | str | None:
        """Ownership transfer of ``name``: "owned" when sanctioned, a
        Finding for an unsanctioned self-park, None when the resource
        stays function-local (must-release applies)."""
        for node in _shallow_walk(func.node):
            if node is acquire:
                continue
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if _escaping_ref(getattr(node, "value", None), name):
                    return "owned"
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                is_release = bool(chain) and (
                    (
                        len(chain) == 2
                        and chain[0] == name
                        and chain[1] in _RELEASE_METHODS
                    )
                    or chain[-1] in _RELEASE_FUNCS
                )
                if not is_release:
                    args = list(node.args) + [kw.value for kw in node.keywords]
                    if any(_escaping_ref(arg, name) for arg in args):
                        return "owned"
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    park = self._self_park(graph, func, target, node, name)
                    if park is not None:
                        return park
                if any(
                    not isinstance(t, ast.Attribute)
                    for t in node.targets
                ) and _escaping_ref(node.value, name):
                    # Aliased into another local or a container; the
                    # alias carries the lifecycle from here on.
                    return "owned"
        return None

    def _self_park(
        self,
        graph: CallGraph,
        func: FuncNode,
        target: ast.expr,
        stmt: ast.Assign,
        name: str,
    ) -> Finding | str | None:
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
            and _escaping_ref(stmt.value, name)
        ):
            return None
        owner = func.cls
        if owner is not None and any(
            method in node.own_methods
            for node in graph.mro(owner)
            for method in _OWNER_RELEASE_METHODS
        ):
            return "owned"
        owner_name = owner.name if owner is not None else "<module>"
        return self.finding(
            func.module,
            stmt,
            f"resource {name} is parked on self.{target.attr} in "
            f"{func.qualname} but {owner_name} declares no release "
            f"method ({'/'.join(sorted(_OWNER_RELEASE_METHODS))}) — "
            "the parked resource can never be released",
            anchor=f"{func.qualname}:unreleased-park:{target.attr}",
            trace=(func.frame(stmt.lineno),),
        )
