"""RA002 — parallel-determinism audit.

``repro.parallel`` guarantees byte-identical results for any worker
count, which holds only if dispatched workers are pure with respect to
process-global state: no RNG draws (worker draw *order* is
scheduling-dependent) and no ambient-context installation (recorder /
fault-policy / n_jobs contextvars — the harness itself installs those
deterministically around each task). This rule is the static twin of
the runtime n_jobs byte-identity tests: it finds every function
dispatched through ``parallel_map_chunks(...)`` or
``get_backend(...).map(...)``, walks the call graph reachable from it,
and flags

* RNG use: ``np.random.*``, ``default_rng(...)``,
  ``check_random_state(...)``, or any call on a receiver named like a
  generator (``rng``, ``_rng``, ``random_state``);
* ambient-context mutation: ``use_recorder`` / ``recording`` /
  ``use_fault_policy`` / ``use_n_jobs`` calls, or ``.set(...)`` on a
  module-level ``ContextVar``.

Functions defined inside ``repro.parallel`` itself are exempt (the
sanctioned harness installs worker-local context on purpose) but are
still traversed, so a violation *reached through* the harness is found.
Incrementing counters on the worker-local recorder is deliberately
allowed — the harness merges counters deterministically.

Dynamically-typed worker references (``estimator.evaluate``) are
expanded over every concrete scanned class defining that method, so the
audit covers all estimators a dispatch site could receive.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.astkit import ModuleInfo
from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import (
    CallGraph,
    CallTarget,
    FuncNode,
    attr_chain,
)

__all__ = ["ParallelDeterminismAudit", "expand_dynamic", "worker_roots"]

#: Call names that install ambient context (contextvar mutation).
CONTEXT_INSTALLERS = frozenset(
    {"use_recorder", "recording", "use_fault_policy", "use_n_jobs"}
)

#: Receiver names that identify a random generator object.
RNG_RECEIVERS = frozenset(
    {"rng", "_rng", "random_state", "_random_state", "generator"}
)

#: Functions creating or seeding generators.
RNG_FACTORIES = frozenset({"default_rng", "check_random_state", "RandomState"})

#: Module prefix of the sanctioned dispatch harness.
HARNESS_PREFIX = "repro.parallel"

#: Cap on contract expansion of a dynamically-typed worker reference.
_MAX_EXPANSION = 24


def expand_dynamic(graph: CallGraph, expr: ast.expr) -> list[CallTarget]:
    """Expand a dynamic ``obj.method`` worker reference over every
    concrete scanned class defining that method (capped). Shared by the
    worker-rooted rules (RA002 determinism, RA007 merge contracts)."""
    if isinstance(expr, ast.Call):
        chain = attr_chain(expr.func)
        if chain and chain[-1] == "partial" and expr.args:
            return expand_dynamic(graph, expr.args[0])
        return []
    if not isinstance(expr, ast.Attribute):
        return []
    method = expr.attr
    targets: list[CallTarget] = []
    for cls in graph.classes:
        if graph.is_abstract(cls):
            continue
        found = graph.lookup_method(cls, method)
        if found is not None:
            targets.append(CallTarget(found, cls))
        if len(targets) >= _MAX_EXPANSION:
            break
    return targets


def _param_names(node: ast.FunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in args.posonlyargs + args.args]


def _chase_param_workers(
    graph: CallGraph, func: FuncNode, param: str
) -> list[tuple[CallTarget, str]]:
    """Worker targets bound to ``param`` by in-project callers of ``func``.

    ``shard_map(worker, tasks)`` forwards a caller-supplied callable
    into ``parallel_map_chunks``; the dispatched worker is whatever each
    call site passes. One level of indirection is chased: the matching
    positional/keyword argument at every call resolving to ``func`` is
    unwrapped in the *caller's* context.
    """
    try:
        position = _param_names(func.node).index(param)
    except ValueError:
        return []
    if func.cls is not None:
        # Bound-call positions are receiver-shifted; the repo's
        # forwarding dispatchers are module-level, so keep this simple.
        return []
    found: list[tuple[CallTarget, str]] = []
    for caller in graph.iter_functions():
        env = graph.local_types(caller, caller.cls)
        for call in graph.calls_of(caller):
            if not any(
                t.func.node is func.node
                for t in graph.resolve_call(call, caller, caller.cls, env)
            ):
                continue
            arg: ast.expr | None = None
            if position < len(call.args):
                arg = call.args[position]
            else:
                for kw in call.keywords:
                    if kw.arg == param:
                        arg = kw.value
            if arg is None:
                continue
            targets = graph.unwrap_callable(arg, caller, caller.cls, env)
            if not targets:
                targets = expand_dynamic(graph, arg)
            bound_frame = f"worker bound at {caller.frame(call.lineno)}"
            found.extend((t, bound_frame) for t in targets)
    return found


def worker_roots(
    graph: CallGraph,
) -> list[tuple[FuncNode, CallTarget, tuple[str, ...]]]:
    """``(dispatcher, worker, trace)`` per ``repro.parallel`` dispatch.

    Shared by the worker-rooted rule families (RA002 determinism, RA007
    merge contracts, RA009 races, RA010 RNG ordering). Worker
    references are resolved directly (``unwrap_callable``), expanded
    over concrete classes when dynamically typed (``expand_dynamic``),
    and — when the dispatch site forwards one of its own parameters —
    chased one call level up to the sites that bound the callable.
    The dispatcher (the function containing the dispatch call) lets
    callers thread worker reachability into other reachability domains
    (RA010 extends entry-point reachability through dispatch edges).
    """
    roots: list[tuple[FuncNode, CallTarget, tuple[str, ...]]] = []
    for func, call in graph.dispatch_sites():
        if not call.args:
            continue
        env = graph.local_types(func, func.cls)
        worker_expr = call.args[0]
        dispatch_frame = f"dispatched by {func.frame(call.lineno)}"
        targets = graph.unwrap_callable(worker_expr, func, func.cls, env)
        if not targets:
            targets = expand_dynamic(graph, worker_expr)
        for target in targets:
            roots.append((func, target, (dispatch_frame,)))
        if targets or not isinstance(worker_expr, ast.Name):
            continue
        if worker_expr.id not in _param_names(func.node):
            continue
        for target, bound_frame in _chase_param_workers(
            graph, func, worker_expr.id
        ):
            roots.append((func, target, (dispatch_frame, bound_frame)))
    return roots


def _rng_call(chain: list[str]) -> str | None:
    """Why this name chain is an RNG call, or None."""
    if chain[-1] in RNG_FACTORIES:
        return f"creates/seeds a generator via {chain[-1]}()"
    if "random" in chain[:-1]:
        return f"draws from the global numpy RNG ({'.'.join(chain)})"
    if len(chain) >= 2 and any(part in RNG_RECEIVERS for part in chain[:-1]):
        return f"draws from a generator ({'.'.join(chain)})"
    return None


@register
class ParallelDeterminismAudit(AuditRule):
    code = "RA002"
    summary = (
        "no RNG use or ambient-context mutation reachable from functions "
        "dispatched through repro.parallel workers"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        roots = [
            (target, trace) for _, target, trace in worker_roots(graph)
        ]
        if not roots:
            return
        # Calling an installer IS the violation (flagged at the call
        # site); its body legitimately mutates the contextvar, so don't
        # descend into it.
        reached = graph.reachable(
            roots, prune=lambda t: t.func.name in CONTEXT_INSTALLERS
        )
        seen: set[tuple[str, int]] = set()
        for target, trace in reached.values():
            if target.func.module.module.startswith(HARNESS_PREFIX):
                continue
            for finding in self._check_function(target.func, trace):
                key = (finding.path, finding.line)
                if key not in seen:
                    seen.add(key)
                    yield finding

    # ------------------------------------------------------------------

    def _check_function(
        self, func: FuncNode, trace: tuple[str, ...]
    ) -> Iterator[Finding]:
        info = func.module
        module_scope_exprs = self._contextvar_names(info)
        for call in ast.walk(func.node):
            if not isinstance(call, ast.Call):
                continue
            chain = attr_chain(call.func)
            if not chain:
                continue
            why = _rng_call(chain)
            if why is not None:
                yield self._site_finding(
                    info, func, call, trace, f"worker-reachable RNG use: {why}"
                )
                continue
            if chain[-1] in CONTEXT_INSTALLERS:
                yield self._site_finding(
                    info,
                    func,
                    call,
                    trace,
                    "worker-reachable ambient-context mutation: "
                    f"{chain[-1]}() installs process-wide state",
                )
                continue
            if (
                chain[-1] == "set"
                and len(chain) == 2
                and chain[0] in module_scope_exprs
            ):
                yield self._site_finding(
                    info,
                    func,
                    call,
                    trace,
                    f"worker-reachable ContextVar mutation: {chain[0]}.set()",
                )

    @staticmethod
    def _contextvar_names(info: ModuleInfo) -> set[str]:
        names: set[str] = set()
        for stmt in info.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                chain = attr_chain(stmt.value.func)
                if chain and chain[-1] == "ContextVar":
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _site_finding(
        self,
        info: ModuleInfo,
        func: FuncNode,
        call: ast.Call,
        trace: tuple[str, ...],
        message: str,
    ) -> Finding:
        chain = attr_chain(call.func) or ["<call>"]
        return self.finding(
            info,
            call,
            f"{message} (in {func.qualname})",
            anchor=f"{func.qualname}:{'.'.join(chain)}",
            trace=trace + (func.frame(call.lineno),),
        )
