"""RA002 — parallel-determinism audit.

``repro.parallel`` guarantees byte-identical results for any worker
count, which holds only if dispatched workers are pure with respect to
process-global state: no RNG draws (worker draw *order* is
scheduling-dependent) and no ambient-context installation (recorder /
fault-policy / n_jobs contextvars — the harness itself installs those
deterministically around each task). This rule is the static twin of
the runtime n_jobs byte-identity tests: it finds every function
dispatched through ``parallel_map_chunks(...)`` or
``get_backend(...).map(...)``, walks the call graph reachable from it,
and flags

* RNG use: ``np.random.*``, ``default_rng(...)``,
  ``check_random_state(...)``, or any call on a receiver named like a
  generator (``rng``, ``_rng``, ``random_state``);
* ambient-context mutation: ``use_recorder`` / ``recording`` /
  ``use_fault_policy`` / ``use_n_jobs`` calls, or ``.set(...)`` on a
  module-level ``ContextVar``.

Functions defined inside ``repro.parallel`` itself are exempt (the
sanctioned harness installs worker-local context on purpose) but are
still traversed, so a violation *reached through* the harness is found.
Incrementing counters on the worker-local recorder is deliberately
allowed — the harness merges counters deterministically.

Dynamically-typed worker references (``estimator.evaluate``) are
expanded over every concrete scanned class defining that method, so the
audit covers all estimators a dispatch site could receive.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.astkit import ModuleInfo
from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import (
    CallGraph,
    CallTarget,
    FuncNode,
    attr_chain,
)

__all__ = ["ParallelDeterminismAudit", "expand_dynamic"]

#: Call names that install ambient context (contextvar mutation).
CONTEXT_INSTALLERS = frozenset(
    {"use_recorder", "recording", "use_fault_policy", "use_n_jobs"}
)

#: Receiver names that identify a random generator object.
RNG_RECEIVERS = frozenset(
    {"rng", "_rng", "random_state", "_random_state", "generator"}
)

#: Functions creating or seeding generators.
RNG_FACTORIES = frozenset({"default_rng", "check_random_state", "RandomState"})

#: Module prefix of the sanctioned dispatch harness.
HARNESS_PREFIX = "repro.parallel"

#: Cap on contract expansion of a dynamically-typed worker reference.
_MAX_EXPANSION = 24


def expand_dynamic(graph: CallGraph, expr: ast.expr) -> list[CallTarget]:
    """Expand a dynamic ``obj.method`` worker reference over every
    concrete scanned class defining that method (capped). Shared by the
    worker-rooted rules (RA002 determinism, RA007 merge contracts)."""
    if isinstance(expr, ast.Call):
        chain = attr_chain(expr.func)
        if chain and chain[-1] == "partial" and expr.args:
            return expand_dynamic(graph, expr.args[0])
        return []
    if not isinstance(expr, ast.Attribute):
        return []
    method = expr.attr
    targets: list[CallTarget] = []
    for cls in graph.classes:
        if graph.is_abstract(cls):
            continue
        found = graph.lookup_method(cls, method)
        if found is not None:
            targets.append(CallTarget(found, cls))
        if len(targets) >= _MAX_EXPANSION:
            break
    return targets


def _rng_call(chain: list[str]) -> str | None:
    """Why this name chain is an RNG call, or None."""
    if chain[-1] in RNG_FACTORIES:
        return f"creates/seeds a generator via {chain[-1]}()"
    if "random" in chain[:-1]:
        return f"draws from the global numpy RNG ({'.'.join(chain)})"
    if len(chain) >= 2 and any(part in RNG_RECEIVERS for part in chain[:-1]):
        return f"draws from a generator ({'.'.join(chain)})"
    return None


@register
class ParallelDeterminismAudit(AuditRule):
    code = "RA002"
    summary = (
        "no RNG use or ambient-context mutation reachable from functions "
        "dispatched through repro.parallel workers"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        roots = self._worker_roots(graph)
        if not roots:
            return
        # Calling an installer IS the violation (flagged at the call
        # site); its body legitimately mutates the contextvar, so don't
        # descend into it.
        reached = graph.reachable(
            roots, prune=lambda t: t.func.name in CONTEXT_INSTALLERS
        )
        seen: set[tuple[str, int]] = set()
        for target, trace in reached.values():
            if target.func.module.module.startswith(HARNESS_PREFIX):
                continue
            for finding in self._check_function(target.func, trace):
                key = (finding.path, finding.line)
                if key not in seen:
                    seen.add(key)
                    yield finding

    # ------------------------------------------------------------------

    def _worker_roots(
        self, graph: CallGraph
    ) -> list[tuple[CallTarget, tuple[str, ...]]]:
        roots: list[tuple[CallTarget, tuple[str, ...]]] = []
        for func, call in graph.dispatch_sites():
            if not call.args:
                continue
            env = graph.local_types(func, func.cls)
            worker_expr = call.args[0]
            dispatch_frame = f"dispatched by {func.frame(call.lineno)}"
            targets = graph.unwrap_callable(worker_expr, func, func.cls, env)
            if not targets:
                targets = self._expand_dynamic(graph, worker_expr)
            for target in targets:
                roots.append((target, (dispatch_frame,)))
        return roots

    def _expand_dynamic(
        self, graph: CallGraph, expr: ast.expr
    ) -> list[CallTarget]:
        return expand_dynamic(graph, expr)

    # ------------------------------------------------------------------

    def _check_function(
        self, func: FuncNode, trace: tuple[str, ...]
    ) -> Iterator[Finding]:
        info = func.module
        module_scope_exprs = self._contextvar_names(info)
        for call in ast.walk(func.node):
            if not isinstance(call, ast.Call):
                continue
            chain = attr_chain(call.func)
            if not chain:
                continue
            why = _rng_call(chain)
            if why is not None:
                yield self._site_finding(
                    info, func, call, trace, f"worker-reachable RNG use: {why}"
                )
                continue
            if chain[-1] in CONTEXT_INSTALLERS:
                yield self._site_finding(
                    info,
                    func,
                    call,
                    trace,
                    "worker-reachable ambient-context mutation: "
                    f"{chain[-1]}() installs process-wide state",
                )
                continue
            if (
                chain[-1] == "set"
                and len(chain) == 2
                and chain[0] in module_scope_exprs
            ):
                yield self._site_finding(
                    info,
                    func,
                    call,
                    trace,
                    f"worker-reachable ContextVar mutation: {chain[0]}.set()",
                )

    @staticmethod
    def _contextvar_names(info: ModuleInfo) -> set[str]:
        names: set[str] = set()
        for stmt in info.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                chain = attr_chain(stmt.value.func)
                if chain and chain[-1] == "ContextVar":
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _site_finding(
        self,
        info: ModuleInfo,
        func: FuncNode,
        call: ast.Call,
        trace: tuple[str, ...],
        message: str,
    ) -> Finding:
        chain = attr_chain(call.func) or ["<call>"]
        return self.finding(
            info,
            call,
            f"{message} (in {func.qualname})",
            anchor=f"{func.qualname}:{'.'.join(chain)}",
            trace=trace + (func.frame(call.lineno),),
        )
