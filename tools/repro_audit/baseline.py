"""Baseline (accepted-findings) file handling for repro-audit.

A baseline holds fingerprints of findings that are known and accepted;
CI fails only on findings *not* in the baseline, so the audit can be
adopted on a tree with historical debt and still block regressions.
Fingerprints are ``rule<TAB>path<TAB>anchor`` — line-number free, so
unrelated edits don't invalidate them. The file is plain text, one
fingerprint per line, ``#`` comments and blank lines ignored; regenerate
with ``python -m tools.repro_audit --write-baseline``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from tools.repro_audit.core import Finding

__all__ = ["DEFAULT_BASELINE", "filter_baselined", "load_baseline", "write_baseline"]

#: Conventional location, used by the CLI when it exists.
DEFAULT_BASELINE = Path(__file__).parent / "baseline.txt"


def load_baseline(path: Path) -> frozenset[str]:
    """Fingerprints accepted by the baseline file at ``path``."""
    entries: set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            entries.add(stripped)
    return frozenset(entries)


def filter_baselined(
    findings: Sequence[Finding], baseline: frozenset[str]
) -> list[Finding]:
    """Findings whose fingerprint is not accepted by the baseline."""
    return [f for f in findings if f.fingerprint() not in baseline]


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    """Write the fingerprints of ``findings`` as the new baseline."""
    lines = [
        "# repro-audit baseline: accepted findings, one fingerprint per",
        "# line (rule<TAB>path<TAB>anchor). Regenerate with",
        "#   python -m tools.repro_audit --write-baseline <paths>",
    ]
    lines.extend(sorted({f.fingerprint() for f in findings}))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
