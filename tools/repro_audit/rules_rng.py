"""RA010 — RNG consumption-order prover.

Byte-identity across ``n_jobs``/``--shards`` rests on one discipline:
every draw from the fitted generator happens on the *coordinator*, in
*stream order*. The runtime tests check this for the configurations CI
runs; this rule proves the shape statically, for all configurations,
with three checks over the inventory of generator draw sites (calls on
``rng``/``_rng``/``random_state``-named receivers and ``np.random``
globals, the same lexicon as RA002):

1. **coordinator-only** — no draw site may be both reachable from a
   public entry point (any ``fit``/``draw``/``plan``/``sample``
   function or method) and reachable from a dispatched parallel worker
   (discovery shared with RA002/RA007 via
   :func:`~tools.repro_audit.rules_parallel.worker_roots`): such a draw
   would execute on a worker with scheduling-dependent order.
2. **deterministic iteration** — a draw inside a loop over an
   order-nondeterministic iterable (a set literal/comprehension or
   ``set(...)``, unsorted ``os.listdir``/``scandir``/``iterdir``/
   ``glob``, ``as_completed``) consumes the generator in a different
   order every run even serially.
3. **branch-pair equivalence** — an ``if``/``else`` whose test mentions
   shards (``n_shards > 1`` …) must consume the rng identically on both
   sides, or serial and sharded runs diverge at the first draw after
   the branch. Each branch's *draw signature* — the set of normalised
   call shapes (``draw:rng.random``, ``seed:check_random_state``)
   collected from the branch body and everything statically reachable
   from it — must match. Signatures are shape *sets*, not sequences:
   static analysis cannot order draws across calls, so two branches
   drawing the same shapes in different counts pass — the runtime
   determinism canary (CI) covers that residue. A branch ending in
   ``return`` with no ``else`` is paired against the statements that
   follow the ``if`` (the fallthrough serial path).

Dynamically-typed calls (``folded.merge(part)``) are not traversed, so
a combiner's draws do not leak into a branch signature — matching the
runtime fact that sharded fits fold partials without consuming the fit
generator.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import (
    CallGraph,
    CallTarget,
    FuncNode,
    attr_chain,
)
from tools.repro_audit.rules_parallel import (
    CONTEXT_INSTALLERS,
    HARNESS_PREFIX,
    RNG_FACTORIES,
    RNG_RECEIVERS,
    worker_roots,
)

__all__ = ["RngOrderAudit", "ENTRY_NAMES", "draw_descriptor"]

#: Public entry-point names whose reachable draws must stay coordinator-side.
ENTRY_NAMES = frozenset({"fit", "draw", "plan", "sample"})

#: Call tails producing order-nondeterministic iterables.
_NONDET_TAILS = frozenset(
    {"listdir", "scandir", "iterdir", "glob", "iglob", "as_completed", "set"}
)


def draw_descriptor(call: ast.Call) -> str | None:
    """Normalised shape of an RNG call, or None.

    Receiver names are canonicalised (any generator-named receiver
    becomes ``rng``; ``self`` is dropped) so the same draw reached
    inline in one branch and through a helper in the other compares
    equal: ``self._rng.random(...)`` and ``rng.random(...)`` are both
    ``draw:rng.random``.
    """
    chain = attr_chain(call.func)
    if not chain:
        return None
    if chain[-1] in RNG_FACTORIES:
        return f"seed:{chain[-1]}"
    prefix = chain[:-1]
    if "random" in prefix:
        return f"draw:np.random.{chain[-1]}"
    if any(part in RNG_RECEIVERS for part in prefix):
        return f"draw:rng.{chain[-1]}"
    return None


def _is_draw(descriptor: str | None) -> bool:
    return descriptor is not None and descriptor.startswith("draw:")


def _shallow_walk(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs/lambdas."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _nondet_iterable(expr: ast.expr) -> str | None:
    """Why iterating ``expr`` is order-nondeterministic, or None."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set has no defined iteration order"
    if isinstance(expr, ast.Call):
        chain = attr_chain(expr.func)
        if chain and chain[-1] in _NONDET_TAILS:
            return f"{chain[-1]}() yields elements in unspecified order"
    return None


@register
class RngOrderAudit(AuditRule):
    code = "RA010"
    summary = (
        "all generator draws reachable from fit/draw/plan/sample entry "
        "points execute on the coordinator, under order-deterministic "
        "iteration, with serial/sharded branch pairs consuming the rng "
        "identically"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        entry_reached = self._entry_reached(graph)
        yield from self._check_coordinator_only(graph, entry_reached)
        yield from self._check_iteration_order(entry_reached)
        yield from self._check_branch_pairs(graph)

    # ------------------------------------------------------------------
    # Check 1: entry-reachable draws never run on a worker

    @staticmethod
    def _entry_reached(
        graph: CallGraph,
    ) -> dict[tuple[int, int], tuple[CallTarget, tuple[str, ...]]]:
        roots = [
            (CallTarget(func, func.cls), (f"entry point {func.frame()}",))
            for func in graph.iter_functions()
            if func.name in ENTRY_NAMES
        ]
        reached = dict(graph.reachable(roots))
        # A dispatch site fans control out of the coordinator into its
        # workers; entry reachability must follow that edge too (the
        # dispatched callable is data, not a call, so plain call-graph
        # reachability stops at the dispatch). Iterate to a fixpoint in
        # case an entry-reached worker itself dispatches.
        dispatch_edges = worker_roots(graph)
        while True:
            entry_nodes = {
                id(target.func.node): trace
                for target, trace in reached.values()
            }
            extra = [
                (target, entry_nodes[id(dispatcher.node)] + trace)
                for dispatcher, target, trace in dispatch_edges
                if id(dispatcher.node) in entry_nodes
                and id(target.func.node) not in entry_nodes
            ]
            if not extra:
                return reached
            grown = False
            for key, value in graph.reachable(extra).items():
                if key not in reached:
                    reached[key] = value
                    grown = True
            if not grown:
                return reached

    def _check_coordinator_only(
        self, graph: CallGraph, entry_reached: dict
    ) -> Iterator[Finding]:
        roots = [
            (target, trace) for _, target, trace in worker_roots(graph)
        ]
        if not roots:
            return
        worker_reached = graph.reachable(
            roots, prune=lambda t: t.func.name in CONTEXT_INSTALLERS
        )
        entry_nodes = {
            id(target.func.node): trace
            for target, trace in entry_reached.values()
        }
        seen: set[tuple[str, int]] = set()
        for target, trace in worker_reached.values():
            func = target.func
            if func.module.module.startswith(HARNESS_PREFIX):
                continue
            entry_trace = entry_nodes.get(id(func.node))
            if entry_trace is None:
                continue
            for call in graph.calls_of(func):
                descriptor = draw_descriptor(call)
                if not _is_draw(descriptor):
                    continue
                key = (func.module.display_path, call.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    func.module,
                    call,
                    f"generator draw ({descriptor[5:]}) in "
                    f"{func.qualname} is reachable from "
                    f"{entry_trace[0]} AND from a parallel worker — "
                    "worker-side draw order is scheduling-dependent, so "
                    "results change with n_jobs",
                    anchor=f"{func.qualname}:worker-draw",
                    trace=trace + (func.frame(call.lineno),),
                )

    # ------------------------------------------------------------------
    # Check 2: draws under order-nondeterministic iteration

    def _check_iteration_order(self, entry_reached: dict) -> Iterator[Finding]:
        seen: set[tuple[str, int]] = set()
        for target, trace in entry_reached.values():
            func = target.func
            for node in _shallow_walk(func.node):
                iters: list[tuple[ast.expr, ast.AST]] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append((node.iter, node))
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp),
                ):
                    iters.extend((gen.iter, node) for gen in node.generators)
                for iter_expr, scope_node in iters:
                    why = _nondet_iterable(iter_expr)
                    if why is None:
                        continue
                    body = (
                        scope_node.body
                        if isinstance(scope_node, (ast.For, ast.AsyncFor))
                        else scope_node
                    )
                    yield from self._flag_draws_in(
                        func, body, why, trace, seen
                    )

    def _flag_draws_in(
        self,
        func: FuncNode,
        body,
        why: str,
        trace: tuple[str, ...],
        seen: set[tuple[str, int]],
    ) -> Iterator[Finding]:
        nodes = body if isinstance(body, list) else [body]
        for node in nodes:
            for sub in _shallow_walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                descriptor = draw_descriptor(sub)
                if not _is_draw(descriptor):
                    continue
                key = (func.module.display_path, sub.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    func.module,
                    sub,
                    f"generator draw ({descriptor[5:]}) inside an "
                    f"order-nondeterministic loop in {func.qualname}: "
                    f"{why} — the rng consumption order differs run to "
                    "run even serially",
                    anchor=f"{func.qualname}:nondet-iteration-draw",
                    trace=trace + (func.frame(sub.lineno),),
                )

    # ------------------------------------------------------------------
    # Check 3: serial-vs-sharded branch pairs draw identically

    def _check_branch_pairs(self, graph: CallGraph) -> Iterator[Finding]:
        for func in graph.iter_functions():
            if func.module.module.startswith(HARNESS_PREFIX):
                continue
            yield from self._branch_pairs_in(graph, func, func.node.body)

    def _branch_pairs_in(
        self, graph: CallGraph, func: FuncNode, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        for position, stmt in enumerate(body):
            for nested in self._nested_bodies(stmt):
                yield from self._branch_pairs_in(graph, func, nested)
            if not isinstance(stmt, ast.If):
                continue
            if not self._mentions_shards(stmt.test):
                continue
            taken = list(stmt.body)
            fallthrough = list(stmt.orelse)
            if not fallthrough:
                # ``if sharded: return ...`` followed by the serial
                # path: pair the branch against the trailing
                # statements, which only run when the test is false.
                if not taken or not isinstance(taken[-1], (ast.Return, ast.Raise)):
                    continue
                fallthrough = body[position + 1:]
            if not fallthrough:
                continue
            taken_sig = self._draw_signature(graph, func, taken)
            fall_sig = self._draw_signature(graph, func, fallthrough)
            if taken_sig == fall_sig:
                continue
            only_taken = sorted(taken_sig - fall_sig)
            only_fall = sorted(fall_sig - taken_sig)
            detail = []
            if only_taken:
                detail.append(
                    f"only the sharded branch: {', '.join(only_taken)}"
                )
            if only_fall:
                detail.append(
                    f"only the serial branch: {', '.join(only_fall)}"
                )
            yield self.finding(
                func.module,
                stmt,
                f"serial/sharded branch pair in {func.qualname} consumes "
                f"the rng differently ({'; '.join(detail)}) — the first "
                "draw after this branch diverges between --shards "
                "configurations",
                anchor=f"{func.qualname}:branch-draw-mismatch",
                trace=(func.frame(stmt.lineno),),
            )

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, attr, None)
            if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                bodies.append(sub)
        for handler in getattr(stmt, "handlers", []):
            bodies.append(handler.body)
        for case in getattr(stmt, "cases", []):
            bodies.append(case.body)
        return bodies

    @staticmethod
    def _mentions_shards(test: ast.expr) -> bool:
        for node in ast.walk(test):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is not None and "shard" in name.lower():
                return True
        return False

    def _draw_signature(
        self, graph: CallGraph, func: FuncNode, body: list[ast.stmt]
    ) -> frozenset[str]:
        """Normalised draw/seed shapes a branch can execute.

        Union of the branch's inline calls and every call in functions
        statically reachable from the branch (resolved in the enclosing
        function's context). Unresolvable dynamic calls contribute
        nothing — a documented under-approximation.
        """
        signature: set[str] = set()
        env = graph.local_types(func, func.cls)
        targets: list[tuple[CallTarget, tuple[str, ...]]] = []
        for stmt in body:
            for node in _shallow_walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                descriptor = draw_descriptor(node)
                if descriptor is not None:
                    signature.add(descriptor)
                for target in graph.resolve_call(node, func, func.cls, env):
                    targets.append((target, ()))
        for target, _ in graph.reachable(targets).values():
            for call in graph.calls_of(target.func):
                descriptor = draw_descriptor(call)
                if descriptor is not None:
                    signature.add(descriptor)
        return frozenset(signature)
