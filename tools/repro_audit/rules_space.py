"""RA005/RA006 — space-complexity audit.

The paper's viability argument is two-sided: a bounded number of
dataset scans (RA001) *and* sublinear working memory — reservoir
centers plus accumulators, never the dataset. This module makes the
memory half a static contract.

``SpaceAnalyzer`` propagates an abstract size through each audited
entry point, over the same call-graph substrate RA001 uses. The size
lattice is the total order

    ``O(1) < O(b) < O(m) < O(chunk) < O(n) < unbounded``

where ``b`` is the requested sample/candidate budget, ``m`` the summary
size (kernels, buckets, bins, reservoir capacity), ``chunk`` one stream
chunk and ``n`` the dataset. Join is ``max``. Transfer functions cover
numpy constructors (``empty``/``zeros``/``ones``/``full``/RNG draws,
sized by classifying the extent expression), ``concatenate``-family
merges, stream materialisation (``list(stream)`` / ``.materialize()``),
masked selection, and cross-chunk accumulation (``list.append`` /
``dict[key] =`` / ``set.update`` / ``heappush`` inside a loop over a
stream).

Three *documented approximations* (DESIGN.md §11) keep the analysis
aligned with the paper's expected-case claims:

* **expected-size rule** — an accumulation whose payload is a masked
  selection (``chunk[keep]``, anything derived from ``np.nonzero``) is
  charged ``O(b)``: the paper's expected-sample-size argument, not a
  worst case.
* **windowed accumulation** — an accumulator that is ``.clear()``-ed or
  reassigned inside the same stream loop holds one window: charged
  ``O(chunk)`` joined with the payload size.
* **keyed summaries** — ``dict[key] = ...`` / ``set.add``-style
  accumulation is charged ``O(m)`` (a parameter-bounded key space, the
  grid-cell dictionary idiom), *unless* the payload is list-growth.

``RA005`` compares the per-phase result of every audited entry point
(the RA001 population) against the class's declared ``__space__`` — a
bound string or a ``{phase: bound}`` dict, mirroring ``__n_passes__`` —
and the ``Memory: O(...)`` docstring line. A dynamically-typed
``obj.fit(<stream>)`` / ``obj.evaluate(...)`` call that resolution
cannot pin down is charged the estimator ABC's declared ``__space__``
contract (default ``O(m)``).

``RA006`` flags quadratic-growth allocation patterns in library code:
``concatenate``/``vstack``/``np.append`` growing their own operand
inside a loop, any concatenate-family call inside a per-chunk stream
loop, and a concatenate-family call directly wrapping a
``parallel_map_chunks(...)`` fan-out (whose output length is known up
front — preallocate instead).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from typing import Iterator

from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import (
    CallGraph,
    CallTarget,
    ClassNode,
    FuncNode,
    attr_chain,
    is_dispatch_call,
)
from tools.repro_audit.rules_passes import (
    ESTIMATOR_BASE,
    STREAM_PARAM_NAMES,
    audited_entries,
)

__all__ = [
    "AllocSite",
    "SIZE_NAMES",
    "SpaceAnalyzer",
    "entry_space_bounds",
    "parse_bound",
]

# ----------------------------------------------------------------------
# The size lattice: a total order, join = max.

CONST = 0
B = 1
M = 2
CHUNK = 3
N = 4
UNBOUNDED = 5

SIZE_NAMES = {
    CONST: "O(1)",
    B: "O(b)",
    M: "O(m)",
    CHUNK: "O(chunk)",
    N: "O(n)",
    UNBOUNDED: "unbounded",
}

_BOUND_TOKENS = {
    "1": CONST,
    "b": B,
    "m": M,
    "chunk": CHUNK,
    "n": N,
}

_BOUND_RE = re.compile(r"^O\(\s*([^)]+?)\s*\)$")

#: ``Memory: O(...)`` docstring line (mirrors ``Dataset passes: N``).
_DOC_MEMORY_RE = re.compile(r"Memory:\s*(O\([^)]*\)|unbounded)")


def parse_bound(text: str) -> int | None:
    """``"O(b + m)"`` -> join of its component sizes; None if unknown."""
    text = text.strip()
    if text == "unbounded":
        return UNBOUNDED
    match = _BOUND_RE.match(text)
    if match is None:
        return None
    size = CONST
    for token in match.group(1).split("+"):
        component = _BOUND_TOKENS.get(token.strip())
        if component is None:
            return None
        size = max(size, component)
    return size


# ----------------------------------------------------------------------
# Extent classification vocabulary.

#: Attribute / parameter names whose magnitude is the sample budget b.
B_EXTENT_NAMES = frozenset({"sample_size", "pilot_size", "n_sample_rows"})

#: Names whose magnitude is the summary size m (kernels, bins, buckets).
M_EXTENT_NAMES = frozenset(
    {
        "n_kernels",
        "capacity",
        "n_sample",
        "n_coefficients",
        "bins_per_dim",
        "n_buckets",
        "n_clusters",
        "n_mc",
        "branching_factor",
        "n_trees",
        "max_depth",
        "n_leaves",
        "n_leaves_",
    }
)

#: Array parameters assumed budget-sized (candidate/pilot/center sets).
B_ARRAY_PARAMS = frozenset({"candidates", "centers", "pilot", "sample"})

#: Attribute loads that are summary-sized fitted state.
M_SIZED_ATTRS = frozenset({"centers_", "grid_", "cells_"})

#: Calls that reduce an array to a scalar (or O(1) value).
_REDUCTIONS = frozenset(
    {
        "sum",
        "mean",
        "max",
        "min",
        "std",
        "var",
        "prod",
        "any",
        "all",
        "len",
        "int",
        "float",
        "bool",
        "str",
        "item",
        "count",
    }
)

#: numpy constructors sized by their first (shape) argument.
_SIZED_CONSTRUCTORS = frozenset(
    {"empty", "zeros", "ones", "full", "arange", "linspace"}
)

#: RNG draws sized by their size argument.
_RNG_DRAWS = frozenset(
    {"random", "standard_normal", "normal", "uniform", "integers", "choice"}
)

#: Calls whose result is (join of) their arguments' size.
_SIZE_PRESERVING = frozenset(
    {
        "concatenate",
        "vstack",
        "hstack",
        "stack",
        "append",
        "array",
        "asarray",
        "atleast_2d",
        "copy",
        "astype",
        "ravel",
        "flatten",
        "sort",
        "sorted",
        "argsort",
        "unique",
        "clip",
        "minimum",
        "maximum",
        "abs",
        "floor",
        "ceil",
        "reshape",
        "tolist",
        "transform",
        "where",
    }
)

#: Concatenate-family reallocation targets for RA006.
_CONCAT_FAMILY = frozenset({"concatenate", "vstack", "hstack", "append", "stack"})

#: Accumulating method calls: receiver grows by the payload.
_GROW_METHODS = frozenset({"append", "extend", "add", "update", "heappush"})

#: Method attrs whose receiver is an estimator honouring the ABC
#: ``__space__`` contract when the call cannot be resolved in-project.
_CONTRACT_ATTRS = frozenset({"fit", "evaluate"})

_STREAM_FACTORY_NAMES = frozenset({"as_stream", "_as_stream"})
_STREAM_BASE = "DataStream"


@dataclass(frozen=True)
class AllocSite:
    """One statically-identified allocation/accumulation with its size."""

    path: str
    line: int
    size: int
    kind: str
    phase: str | None
    trace: tuple[str, ...] = ()


# Per-phase joined sizes: {phase or None: size}.
Bounds = dict


def _join(a: Bounds, b: Bounds) -> Bounds:
    out = dict(a)
    for key, value in b.items():
        out[key] = max(out.get(key, CONST), value)
    return out


def _rephase(bounds: Bounds, phase: str | None) -> Bounds:
    """Attribute a callee's unphased allocations to the caller's phase."""
    if phase is None or None not in bounds:
        return bounds
    out = {k: v for k, v in bounds.items() if k is not None}
    out[phase] = max(out.get(phase, CONST), bounds[None])
    return out


def _peak(bounds: Bounds) -> int:
    return max(bounds.values(), default=CONST)


@dataclass
class _State:
    """Mutable per-function analysis state (forward flow)."""

    func: FuncNode
    self_cls: ClassNode | None
    #: Variable name -> abstract size of its value / magnitude.
    sizes: dict = field(default_factory=dict)
    streams: set = field(default_factory=set)
    types: dict = field(default_factory=dict)
    #: Names bound to boolean masks (``keep = rng.random(...) < p``) —
    #: subscripting with one is an expected-size selection.
    masks: set = field(default_factory=set)
    #: Whether the statement under analysis sits in a loop over a stream.
    in_stream_loop: bool = False
    #: Whether it sits in a loop over a masked selection (np.nonzero).
    in_selection_loop: bool = False
    #: Accumulator names cleared/reassigned inside the current loop body.
    windowed: frozenset = frozenset()


class SpaceAnalyzer:
    """Memoized flow-sensitive abstract-size propagation over the graph.

    ``analyze_target`` returns ``(bounds, sites, ret_size)``: the
    per-phase joined allocation sizes, the allocation sites above
    ``O(1)`` (for "why" traces), and the abstract size of the return
    value (propagated to callers).
    """

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self._memo: dict[
            tuple[int, int], tuple[Bounds, tuple[AllocSite, ...], int]
        ] = {}
        self._active: set[tuple[int, int]] = set()
        self._contract = self._estimator_contract()

    def _estimator_contract(self) -> int:
        """Declared ``__space__`` of the estimator ABC (default O(m))."""
        for cls in self.graph.classes_by_name.get(ESTIMATOR_BASE, []):
            expr = self.graph.declared_attr(cls, "__space__")
            if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                parsed = parse_bound(expr.value)
                if parsed is not None:
                    return parsed
        return M

    # ------------------------------------------------------------------

    def analyze_target(
        self, target: CallTarget
    ) -> tuple[Bounds, tuple[AllocSite, ...], int]:
        key = target.key
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._active:
            # Recursive helper: charge the cycle O(1) (under-approx).
            return {}, (), CONST
        self._active.add(key)
        state = _State(func=target.func, self_cls=target.self_cls)
        self._seed_params(state)
        bounds, sites, ret = self._analyze_body(
            list(target.func.node.body), state, None
        )
        self._active.discard(key)
        result = (bounds, sites, ret)
        self._memo[key] = result
        return result

    def _seed_params(self, state: _State) -> None:
        args = state.func.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in STREAM_PARAM_NAMES or self._stream_annotation(
                arg.annotation
            ):
                state.streams.add(arg.arg)
            elif arg.arg in B_ARRAY_PARAMS:
                state.sizes[arg.arg] = B

    @staticmethod
    def _stream_annotation(annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        for node in ast.walk(annotation):
            name = getattr(node, "id", None) or getattr(node, "attr", None)
            if isinstance(name, str) and "Stream" in name:
                return True
        return False

    # ------------------------------------------------------------------
    # Statements

    def _analyze_body(
        self, stmts: list, state: _State, phase: str | None
    ) -> tuple[Bounds, tuple[AllocSite, ...], int]:
        bounds: Bounds = {}
        sites: list[AllocSite] = []
        ret = CONST
        for stmt in stmts:
            b, s, r = self._analyze_stmt(stmt, state, phase)
            bounds = _join(bounds, b)
            sites.extend(s)
            ret = max(ret, r)
        return bounds, tuple(sites), ret

    def _analyze_stmt(
        self, stmt: ast.stmt, state: _State, phase: str | None
    ) -> tuple[Bounds, tuple[AllocSite, ...], int]:
        no_sites: tuple[AllocSite, ...] = ()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return {}, no_sites, CONST
        if isinstance(stmt, ast.Assign):
            keyed = self._keyed_assign(stmt, state, phase)
            if keyed is not None:
                return keyed
            bounds, sites, size = self._size_of(stmt.value, state, phase)
            # A scalar whose *magnitude* is dataset-sized (``n =
            # len(source)``) must size later allocations (``zeros(n)``).
            size = max(size, self._extent_of(stmt.value, state))
            self._bind(stmt.targets, size, stmt.value, state)
            return bounds, sites, CONST
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return {}, no_sites, CONST
            bounds, sites, size = self._size_of(stmt.value, state, phase)
            size = max(size, self._extent_of(stmt.value, state))
            self._bind([stmt.target], size, stmt.value, state)
            return bounds, sites, CONST
        if isinstance(stmt, ast.AugAssign):
            bounds, sites, _size = self._size_of(stmt.value, state, phase)
            extent = self._extent_of(stmt.value, state)
            if (
                isinstance(stmt.target, ast.Name)
                and isinstance(stmt.op, ast.Add)
                and state.in_stream_loop
                and extent >= CHUNK
            ):
                # ``n += chunk.shape[0]``-style: the accumulated
                # magnitude grows to the dataset over the scan.
                state.sizes[stmt.target.id] = N
            return bounds, sites, CONST
        if isinstance(stmt, ast.If):
            bounds, sites, _ = self._size_of(stmt.test, state, phase)
            body = self._analyze_body(stmt.body, state, phase)
            orelse = self._analyze_body(stmt.orelse, state, phase)
            return (
                _join(bounds, _join(body[0], orelse[0])),
                sites + body[1] + orelse[1],
                max(body[2], orelse[2]),
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._analyze_for(stmt, state, phase)
        if isinstance(stmt, ast.While):
            bounds, sites, _ = self._size_of(stmt.test, state, phase)
            body = self._loop_body(stmt.body, stmt, state, phase, stream=False)
            return _join(bounds, body[0]), sites + body[1], body[2]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            bounds: Bounds = {}
            sites: tuple[AllocSite, ...] = ()
            inner_phase = phase
            for item in stmt.items:
                label = self._phase_label(item.context_expr)
                if label is not None:
                    inner_phase = label
                else:
                    b, s, _ = self._size_of(item.context_expr, state, phase)
                    bounds = _join(bounds, b)
                    sites = sites + s
            body = self._analyze_body(stmt.body, state, inner_phase)
            return _join(bounds, body[0]), sites + body[1], body[2]
        if isinstance(stmt, ast.Try):
            bounds, sites, ret = self._analyze_body(stmt.body, state, phase)
            for handler in stmt.handlers:
                h = self._analyze_body(handler.body, state, phase)
                bounds = _join(bounds, h[0])
                sites = sites + h[1]
                ret = max(ret, h[2])
            for extra in (stmt.orelse, stmt.finalbody):
                e = self._analyze_body(extra, state, phase)
                bounds = _join(bounds, e[0])
                sites = sites + e[1]
                ret = max(ret, e[2])
            return bounds, sites, ret
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return {}, no_sites, CONST
            bounds, sites, size = self._size_of(stmt.value, state, phase)
            return bounds, sites, size
        if isinstance(stmt, ast.Expr):
            grow = self._accumulation(stmt.value, state, phase)
            if grow is not None:
                return grow
            bounds, sites, _ = self._size_of(stmt.value, state, phase)
            return bounds, sites, CONST
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            return {}, no_sites, CONST
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.sizes.pop(target.id, None)
            return {}, no_sites, CONST
        return {}, no_sites, CONST

    def _analyze_for(
        self, stmt: ast.For, state: _State, phase: str | None
    ) -> tuple[Bounds, tuple[AllocSite, ...], int]:
        bounds, sites, _ = self._size_of(stmt.iter, state, phase)
        over_stream = self._is_stream_expr(stmt.iter, state) or (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Attribute)
            and stmt.iter.func.attr == "iter_with_offsets"
            and self._is_stream_expr(stmt.iter.func.value, state)
        )
        selection = self._is_selection_expr(stmt.iter, state)
        # The loop variable holds one stream chunk / one selected row.
        elt = CHUNK if over_stream else self._element_size(stmt.iter, state)
        for name in self._target_names(stmt.target):
            state.sizes[name] = elt
        body = self._loop_body(
            stmt.body, stmt, state, phase, stream=over_stream, selection=selection
        )
        orelse = self._analyze_body(stmt.orelse, state, phase)
        return (
            _join(_join(bounds, body[0]), orelse[0]),
            sites + body[1] + orelse[1],
            max(body[2], orelse[2]),
        )

    def _loop_body(
        self,
        body: list,
        stmt: ast.stmt,
        state: _State,
        phase: str | None,
        *,
        stream: bool,
        selection: bool = False,
    ) -> tuple[Bounds, tuple[AllocSite, ...], int]:
        outer = (
            state.in_stream_loop,
            state.in_selection_loop,
            state.windowed,
        )
        state.in_stream_loop = state.in_stream_loop or stream
        state.in_selection_loop = selection or (
            state.in_selection_loop and not stream
        )
        state.windowed = state.windowed | self._cleared_names(body)
        try:
            return self._analyze_body(body, state, phase)
        finally:
            (
                state.in_stream_loop,
                state.in_selection_loop,
                state.windowed,
            ) = outer

    def _keyed_assign(
        self, stmt: ast.Assign, state: _State, phase: str | None
    ) -> tuple[Bounds, tuple[AllocSite, ...], int] | None:
        """``d[key] = value`` accumulation into a keyed summary.

        Inside a stream loop this is charged ``O(m)`` — the grid-cell
        dictionary idiom, a parameter-bounded key space (documented
        approximation) — unless a selection loop caps it at ``O(b)``.
        """
        if len(stmt.targets) != 1:
            return None
        target = stmt.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
        ):
            return None
        if not (state.in_stream_loop or state.in_selection_loop):
            bounds, sites, _ = self._size_of(stmt.value, state, phase)
            return bounds, sites, CONST
        bounds, sites, pay = self._size_of(stmt.value, state, phase)
        size = B if state.in_selection_loop else M
        size = max(size, pay if pay < CHUNK else size)
        receiver = target.value.id
        state.sizes[receiver] = max(state.sizes.get(receiver, CONST), size)
        if size > CONST:
            sites = sites + (
                AllocSite(
                    path=state.func.module.display_path,
                    line=stmt.lineno,
                    size=size,
                    kind="keyed-summary accumulation (d[key] = ...)",
                    phase=phase,
                ),
            )
        return _join(bounds, {phase: size}), sites, CONST

    @staticmethod
    def _cleared_names(body: list) -> frozenset:
        """Accumulators reset within a loop body (windowed accumulation)."""
        cleared: set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "clear"
                    and isinstance(node.func.value, ast.Name)
                ):
                    cleared.add(node.func.value.id)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and isinstance(
                            node.value, (ast.List, ast.Dict, ast.Set)
                        ):
                            cleared.add(target.id)
        return frozenset(cleared)

    @staticmethod
    def _target_names(target: ast.expr) -> Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from SpaceAnalyzer._target_names(elt)
        elif isinstance(target, ast.Starred):
            yield from SpaceAnalyzer._target_names(target.value)

    def _bind(
        self, targets: list, size: int, value: ast.expr, state: _State
    ) -> None:
        """Forward-propagate sizes, stream-ness and constructor types."""
        names = [
            name for target in targets for name in self._target_names(target)
        ]
        for name in names:
            state.sizes[name] = size
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            name = targets[0].id
            if isinstance(value, (ast.Compare, ast.BoolOp)):
                state.masks.add(name)
            else:
                state.masks.discard(name)
            if self._is_stream_expr(value, state):
                state.streams.add(name)
                return
            state.streams.discard(name)
            constructed = self.graph._constructed_class(
                value, self.graph.scope(state.func.module)
            )
            if constructed is not None:
                state.types[name] = constructed
            else:
                state.types.pop(name, None)

    @staticmethod
    def _phase_label(expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "phase"
            and expr.args
            and isinstance(expr.args[0], ast.Constant)
            and isinstance(expr.args[0].value, str)
        ):
            return expr.args[0].value
        return None

    # ------------------------------------------------------------------
    # Accumulation

    def _accumulation(
        self, expr: ast.expr, state: _State, phase: str | None
    ) -> tuple[Bounds, tuple[AllocSite, ...], int] | None:
        """Handle a growth statement (``x.append(...)`` etc.), or None."""
        if not isinstance(expr, ast.Call):
            return None
        receiver: str | None = None
        payload: list[ast.expr] = []
        method: str | None = None
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _GROW_METHODS
            and isinstance(expr.func.value, ast.Name)
        ):
            receiver = expr.func.value.id
            method = expr.func.attr
            payload = list(expr.args)
        else:
            chain = attr_chain(expr.func)
            if (
                chain
                and chain[-1] in {"heappush", "heapreplace"}
                and expr.args
                and isinstance(expr.args[0], ast.Name)
            ):
                receiver = expr.args[0].id
                method = chain[-1]
                payload = list(expr.args[1:])
        if receiver is None or method is None:
            return None
        # A method on an in-project object (``sampler.extend(chunk)`` on
        # a constructor-typed ReservoirSampler) is that class's code,
        # not list growth — let call resolution analyse the real body.
        if self.graph.resolve_call(expr, state.func, state.self_cls, state.types):
            return None
        pay_bounds: Bounds = {}
        pay_sites: tuple[AllocSite, ...] = ()
        pay_size = CONST
        for arg in payload:
            b, s, size = self._size_of(arg, state, phase)
            pay_bounds = _join(pay_bounds, b)
            pay_sites = pay_sites + s
            pay_size = max(pay_size, size)
        size = self._accumulated_size(
            receiver, method, payload, pay_size, state
        )
        state.sizes[receiver] = max(state.sizes.get(receiver, CONST), size)
        sites = pay_sites
        if size > CONST:
            sites = sites + (
                AllocSite(
                    path=state.func.module.display_path,
                    line=expr.lineno,
                    size=size,
                    kind=f"accumulation via .{method}()",
                    phase=phase,
                ),
            )
        return _join(pay_bounds, {phase: size}), sites, CONST

    def _accumulated_size(
        self,
        receiver: str,
        method: str,
        payload: list[ast.expr],
        pay_size: int,
        state: _State,
    ) -> int:
        if method == "heapreplace":
            # Replacement: the heap does not grow.
            return state.sizes.get(receiver, CONST)
        if not state.in_stream_loop:
            if state.in_selection_loop:
                return max(B, pay_size)
            return max(state.sizes.get(receiver, CONST), pay_size)
        if receiver in state.windowed:
            # Windowed accumulation: cleared within the loop body.
            return max(CHUNK, pay_size)
        if state.in_selection_loop or any(
            self._is_masked_expr(arg, state) for arg in payload
        ):
            # Expected-size rule: masked selections accumulate to O(b).
            return max(B, pay_size if pay_size < CHUNK else B)
        if method in {"add", "update"}:
            # Keyed summary: parameter-bounded key space.
            return M
        return N

    @staticmethod
    def _is_mask_index(index: ast.expr, state: _State) -> bool:
        if isinstance(index, (ast.Compare, ast.BoolOp)):
            return True
        return isinstance(index, ast.Name) and index.id in state.masks

    def _is_masked_expr(self, expr: ast.expr, state: _State) -> bool:
        """Whether an expression is a masked/index-selected slice of a
        chunk (the expected-size rule's trigger)."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain and chain[-1] == "nonzero":
                    return True
            if isinstance(node, ast.Subscript) and not isinstance(
                node.slice, ast.Slice
            ):
                if self._is_mask_index(node.slice, state):
                    return True
                base_size = self._name_size(node.value, state)
                if base_size >= CHUNK and not isinstance(
                    node.slice, ast.Constant
                ):
                    return True
        return False

    def _is_selection_expr(self, expr: ast.expr, state: _State) -> bool:
        """``for i in np.nonzero(...)[0]``-style selection iteration."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain and chain[-1] == "nonzero":
                    return True
        return False

    # ------------------------------------------------------------------
    # Expressions

    def _is_stream_expr(self, expr: ast.expr | None, state: _State) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in state.streams
        if isinstance(expr, ast.IfExp):
            return self._is_stream_expr(expr.body, state) or self._is_stream_expr(
                expr.orelse, state
            )
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain and chain[-1] in _STREAM_FACTORY_NAMES:
                return True
            constructed = self.graph._constructed_class(
                expr, self.graph.scope(state.func.module)
            )
            if constructed is not None and (
                constructed.name == _STREAM_BASE
                or self.graph.inherits_from(constructed, _STREAM_BASE)
            ):
                return True
        return False

    def _name_size(self, expr: ast.expr, state: _State) -> int:
        if isinstance(expr, ast.Name):
            if expr.id in state.streams:
                return N
            return state.sizes.get(expr.id, CONST)
        if isinstance(expr, ast.Attribute):
            if expr.attr in M_SIZED_ATTRS:
                return M
        return CONST

    def _element_size(self, iter_expr: ast.expr, state: _State) -> int:
        """Size of one element when looping over a non-stream iterable."""
        size = self._name_size(iter_expr, state)
        if isinstance(iter_expr, ast.Call):
            chain = attr_chain(iter_expr.func)
            if chain and chain[-1] in {"zip", "enumerate"}:
                return max(
                    (
                        self._element_size(arg, state)
                        for arg in iter_expr.args
                    ),
                    default=CONST,
                )
        if size >= CHUNK:
            # Iterating a chunk-window list yields chunks.
            return CHUNK
        return CONST

    def _extent_of(self, expr: ast.expr | None, state: _State) -> int:
        """Magnitude class of a *length-like* scalar expression."""
        if expr is None:
            return CONST
        if isinstance(expr, ast.Constant):
            return CONST
        if isinstance(expr, ast.Name):
            if expr.id in B_EXTENT_NAMES:
                return B
            if expr.id in M_EXTENT_NAMES:
                return M
            return state.sizes.get(expr.id, CONST)
        if isinstance(expr, ast.Attribute):
            if expr.attr in B_EXTENT_NAMES:
                return B
            if expr.attr in M_EXTENT_NAMES:
                return M
            return CONST
        if isinstance(expr, ast.Subscript):
            # ``x.shape[0]`` — the extent of an array's leading axis is
            # that array's own size class.
            if (
                isinstance(expr.value, ast.Attribute)
                and expr.value.attr == "shape"
            ):
                return self._name_size(expr.value.value, state)
            return self._extent_of(expr.value, state)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return max(
                (self._extent_of(elt, state) for elt in expr.elts),
                default=CONST,
            )
        if isinstance(expr, ast.BinOp):
            return max(
                self._extent_of(expr.left, state),
                self._extent_of(expr.right, state),
            )
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain and chain[-1] == "len":
                return self._name_size(expr.args[0], state) if expr.args else CONST
            if chain and chain[-1] in {"min", "max", "int", "ceil", "floor", "round"}:
                return max(
                    (self._extent_of(arg, state) for arg in expr.args),
                    default=CONST,
                )
        return CONST

    def _size_of(
        self, expr: ast.expr | None, state: _State, phase: str | None
    ) -> tuple[Bounds, tuple[AllocSite, ...], int]:
        """(allocation bounds, sites, abstract size of the value)."""
        no_sites: tuple[AllocSite, ...] = ()
        if expr is None:
            return {}, no_sites, CONST
        if isinstance(expr, ast.Constant):
            return {}, no_sites, CONST
        if isinstance(expr, ast.Name):
            return {}, no_sites, self._name_size(expr, state)
        if isinstance(expr, ast.Attribute):
            bounds, sites, _ = self._size_of(expr.value, state, phase)
            return bounds, sites, self._name_size(expr, state)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            bounds: Bounds = {}
            sites = no_sites
            size = CONST
            for elt in expr.elts:
                b, s, es = self._size_of(elt, state, phase)
                bounds = _join(bounds, b)
                sites = sites + s
                size = max(size, es)
            return bounds, sites, size
        if isinstance(expr, ast.Dict):
            bounds = {}
            sites = no_sites
            size = CONST
            for value in expr.values:
                b, s, es = self._size_of(value, state, phase)
                bounds = _join(bounds, b)
                sites = sites + s
                size = max(size, es)
            return bounds, sites, size
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return self._comprehension(expr, state, phase)
        if isinstance(expr, ast.Call):
            return self._size_of_call(expr, state, phase)
        if isinstance(expr, ast.Subscript):
            return self._size_of_subscript(expr, state, phase)
        if isinstance(expr, ast.BinOp):
            lb, ls, lsize = self._size_of(expr.left, state, phase)
            rb, rs, rsize = self._size_of(expr.right, state, phase)
            return _join(lb, rb), ls + rs, max(lsize, rsize)
        if isinstance(expr, (ast.UnaryOp,)):
            return self._size_of(expr.operand, state, phase)
        if isinstance(expr, ast.Compare):
            bounds, sites, size = self._size_of(expr.left, state, phase)
            for comp in expr.comparators:
                b, s, cs = self._size_of(comp, state, phase)
                bounds = _join(bounds, b)
                sites = sites + s
                size = max(size, cs)
            return bounds, sites, size
        if isinstance(expr, ast.BoolOp):
            bounds = {}
            sites = no_sites
            size = CONST
            for value in expr.values:
                b, s, vs = self._size_of(value, state, phase)
                bounds = _join(bounds, b)
                sites = sites + s
                size = max(size, vs)
            return bounds, sites, size
        if isinstance(expr, ast.IfExp):
            tb, ts, _ = self._size_of(expr.test, state, phase)
            bb, bs, bsize = self._size_of(expr.body, state, phase)
            ob, os_, osize = self._size_of(expr.orelse, state, phase)
            return (
                _join(tb, _join(bb, ob)),
                ts + bs + os_,
                max(bsize, osize),
            )
        if isinstance(expr, ast.Starred):
            return self._size_of(expr.value, state, phase)
        if isinstance(expr, ast.NamedExpr):
            bounds, sites, size = self._size_of(expr.value, state, phase)
            if isinstance(expr.target, ast.Name):
                state.sizes[expr.target.id] = size
            return bounds, sites, size
        # Lambdas, f-strings, slices, ...: nothing sized.
        return {}, no_sites, CONST

    def _comprehension(
        self, expr: ast.expr, state: _State, phase: str | None
    ) -> tuple[Bounds, tuple[AllocSite, ...], int]:
        bounds: Bounds = {}
        sites: tuple[AllocSite, ...] = ()
        size = CONST
        selection = False
        for gen in expr.generators:
            if self._is_stream_expr(gen.iter, state) or (
                isinstance(gen.iter, ast.Call)
                and isinstance(gen.iter.func, ast.Attribute)
                and gen.iter.func.attr == "iter_with_offsets"
                and self._is_stream_expr(gen.iter.func.value, state)
            ):
                size = max(size, N)
                sites = sites + (
                    AllocSite(
                        path=state.func.module.display_path,
                        line=gen.iter.lineno,
                        size=N,
                        kind="comprehension materialises a stream",
                        phase=phase,
                    ),
                )
                for name in self._target_names(gen.target):
                    state.sizes[name] = CHUNK
                continue
            b, s, gsize = self._size_of(gen.iter, state, phase)
            bounds = _join(bounds, b)
            sites = sites + s
            selection = selection or self._is_selection_expr(gen.iter, state)
            size = max(size, gsize)
            elt = CHUNK if gsize >= CHUNK else CONST
            for name in self._target_names(gen.target):
                state.sizes[name] = elt
        if selection:
            size = max(size, B) if size < CHUNK else B
        if size > CONST:
            bounds = _join(bounds, {phase: size})
        return bounds, sites, size

    def _size_of_subscript(
        self, expr: ast.Subscript, state: _State, phase: str | None
    ) -> tuple[Bounds, tuple[AllocSite, ...], int]:
        bounds, sites, base = self._size_of(expr.value, state, phase)
        ib, is_, idx = self._size_of(expr.slice, state, phase)
        bounds = _join(bounds, ib)
        sites = sites + is_
        if isinstance(expr.slice, ast.Slice):
            # A slice view of a large array is (at most) chunk-sized in
            # the idioms this codebase uses (windowed block slicing).
            return bounds, sites, min(base, CHUNK)
        if isinstance(expr.slice, ast.Constant):
            return bounds, sites, CONST if base <= CHUNK else base
        if self._is_mask_index(expr.slice, state):
            # Boolean-mask selection: expected-size rule (a
            # Bernoulli-mask keep set is budget-sized).
            return bounds, sites, B if base > CONST or idx > CONST else CONST
        if base >= CHUNK:
            # Masked / fancy selection of a large array: expected-size
            # rule applies even without a tracked mask binding.
            return bounds, sites, B
        if idx >= CHUNK:
            # Fancy-indexing a small table with a chunk-sized indexer
            # (``counts[buckets]``) yields the indexer's shape.
            return bounds, sites, idx
        return bounds, sites, base

    def _size_of_call(
        self, call: ast.Call, state: _State, phase: str | None
    ) -> tuple[Bounds, tuple[AllocSite, ...], int]:
        bounds: Bounds = {}
        sites: tuple[AllocSite, ...] = ()
        arg_sizes: list[int] = []
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            b, s, size = self._size_of(arg, state, phase)
            bounds = _join(bounds, b)
            sites = sites + s
            arg_sizes.append(size)
        arg_join = max(arg_sizes, default=CONST)
        chain = attr_chain(call.func)
        tail = chain[-1] if chain else None

        def alloc(size: int, kind: str):
            nonlocal bounds, sites
            if size > CONST:
                bounds = _join(bounds, {phase: size})
                sites = sites + (
                    AllocSite(
                        path=state.func.module.display_path,
                        line=call.lineno,
                        size=size,
                        kind=kind,
                        phase=phase,
                    ),
                )

        # Stream materialisation.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "materialize"
            and self._is_stream_expr(call.func.value, state)
        ):
            alloc(N, ".materialize()")
            return bounds, sites, N
        if tail == "list" and call.args and (
            self._is_stream_expr(call.args[0], state)
            or (
                isinstance(call.args[0], ast.Call)
                and isinstance(call.args[0].func, ast.Attribute)
                and call.args[0].func.attr == "iter_with_offsets"
                and self._is_stream_expr(call.args[0].func.value, state)
            )
        ):
            alloc(N, "list(<stream>) materialisation")
            return bounds, sites, N

        # Parallel dispatch: result list is sized like the chunk list;
        # unresolvable workers are charged the estimator contract.
        if is_dispatch_call(call):
            worker_size = self._worker_footprint(call, state, phase)
            if worker_size > CONST:
                alloc(worker_size, "parallel worker footprint")
            ret = arg_sizes[1] if len(arg_sizes) > 1 else CONST
            return bounds, sites, ret

        # Sized numpy constructors and RNG draws.
        if tail in _SIZED_CONSTRUCTORS:
            extent = self._extent_of(call.args[0], state) if call.args else CONST
            alloc(extent, f"{tail}() allocation")
            return bounds, sites, extent
        if tail in _RNG_DRAWS and chain is not None and len(chain) >= 2:
            size_arg = call.args[0] if call.args else None
            for kw in call.keywords:
                if kw.arg == "size":
                    size_arg = kw.value
            extent = self._extent_of(size_arg, state)
            alloc(extent, f"{tail}() draw")
            return bounds, sites, extent
        if tail == "nonzero":
            # Index set of a selection: expected-size rule.
            return bounds, sites, B if arg_join >= CHUNK else arg_join
        if tail in _REDUCTIONS:
            return bounds, sites, CONST
        if tail in _SIZE_PRESERVING or tail in {
            "list",
            "tuple",
            "set",
            "dict",
            "frozenset",
            "zip",
            "enumerate",
            "reversed",
        }:
            return bounds, sites, arg_join

        # In-project resolution.
        targets = self.graph.resolve_call(
            call, state.func, state.self_cls, state.types
        )
        if targets:
            target = targets[0]
            callee_bounds, callee_sites, ret = self.analyze_target(target)
            callee_bounds = _rephase(callee_bounds, phase)
            hop = state.func.frame(call.lineno)
            for site in callee_sites:
                sites = sites + (
                    replace(
                        site,
                        phase=site.phase if site.phase is not None else phase,
                        trace=(hop,) + site.trace,
                    ),
                )
            return _join(bounds, callee_bounds), sites, ret

        # Unresolved estimator-contract call sites.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _CONTRACT_ATTRS
        ):
            alloc(
                self._contract,
                f"estimator .{call.func.attr}() contract "
                f"({ESTIMATOR_BASE}.__space__ = "
                f"{SIZE_NAMES[self._contract]})",
            )
            if call.func.attr == "evaluate":
                return bounds, sites, arg_join
            return bounds, sites, CONST

        # Unresolved call: conservatively size nothing (documented
        # under-approximation; the declared contract covers callees).
        return bounds, sites, CONST

    def _worker_footprint(
        self, call: ast.Call, state: _State, phase: str | None
    ) -> int:
        if not call.args:
            return CONST
        workers = self.graph.unwrap_callable(
            call.args[0], state.func, state.self_cls, state.types
        )
        if not workers:
            # Dynamic worker (``estimator.evaluate``): contract bound.
            return self._contract
        size = CONST
        for worker in workers:
            wb, _ws, _ret = self.analyze_target(worker)
            size = max(size, _peak(wb))
        return size


# ----------------------------------------------------------------------
# RA005

def entry_space_bounds(graph: CallGraph, class_name: str) -> Bounds:
    """Per-phase abstract memory bounds for one audited class (test
    hook, mirroring :func:`entry_pass_counts`). Values are lattice
    levels; render with ``SIZE_NAMES``."""
    analyzer = SpaceAnalyzer(graph)
    for cls, entry, _ in audited_entries(graph):
        if cls.name == class_name:
            bounds, _sites, _ret = analyzer.analyze_target(
                CallTarget(entry, cls)
            )
            return bounds
    raise KeyError(f"no audited entry point found for class {class_name!r}")


def _parse_declared(expr: ast.expr) -> int | dict | None:
    """``__space__`` value: joined size, or {phase: joined size}."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return parse_bound(expr.value)
    if isinstance(expr, ast.Dict):
        out: dict = {}
        for key, value in zip(expr.keys, expr.values):
            if not (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                return None
            parsed = parse_bound(value.value)
            if parsed is None:
                return None
            out[key.value] = parsed
        return out
    return None


def _normalise(bounds: Bounds) -> dict:
    """Drop O(1) phases and map the None phase to "unphased"."""
    return {
        (k if k is not None else "unphased"): v
        for k, v in bounds.items()
        if v > CONST
    }


def _fmt_bounds(bounds: Bounds) -> str:
    shown = _normalise(bounds)
    if not shown:
        return SIZE_NAMES[CONST]
    parts = [
        f"{phase}={SIZE_NAMES[size]}" for phase, size in sorted(shown.items())
    ]
    return f"{SIZE_NAMES[max(shown.values())]} ({', '.join(parts)})"


def _site_trace(
    sites: tuple[AllocSite, ...], *, floor: int = B, limit: int = 8
) -> tuple[str, ...]:
    picked = [s for s in sites if s.size >= floor][:limit]
    trace: list[str] = []
    for site in picked:
        trace.extend(site.trace)
        label = site.phase if site.phase is not None else "unphased"
        trace.append(
            f"{SIZE_NAMES[site.size]} {site.kind} [{label}] "
            f"at {site.path}:{site.line}"
        )
    return tuple(trace)


@register
class SpaceBoundAudit(AuditRule):
    code = "RA005"
    summary = (
        "samplers/estimators/detectors declare __space__ matching the "
        "statically propagated memory bound (and the docstring states it)"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        analyzer = SpaceAnalyzer(graph)
        for cls, entry, kind in audited_entries(graph):
            bounds, sites, _ret = analyzer.analyze_target(
                CallTarget(entry, cls)
            )
            anchor = cls.qualname
            symbol = f"{cls.name}.{entry.name}"
            computed = _normalise(bounds)
            peak = max(computed.values(), default=CONST)

            if peak >= UNBOUNDED:
                yield self.finding(
                    cls.module,
                    cls.node,
                    f"{symbol} reaches an unbounded cross-chunk "
                    f"accumulation ({_fmt_bounds(bounds)})",
                    anchor=anchor,
                    trace=_site_trace(sites, floor=UNBOUNDED),
                )
                continue

            declared_expr = graph.declared_attr(cls, "__space__")
            declared = (
                _parse_declared(declared_expr)
                if declared_expr is not None
                else None
            )
            if declared_expr is None:
                yield self.finding(
                    cls.module,
                    cls.node,
                    f"{kind} {cls.name} has no __space__ declaration "
                    f"(statically propagated bound: {_fmt_bounds(bounds)} "
                    f"from {symbol})",
                    anchor=anchor,
                    trace=_site_trace(sites),
                )
                continue
            if declared is None:
                owner = graph.own_or_inherited_attr_owner(cls, "__space__")
                yield self.finding(
                    (owner or cls).module,
                    (owner or cls).node,
                    f'{cls.name}.__space__ must be an "O(...)" bound '
                    "string or a {phase: bound} dict literal "
                    "(components: 1, b, m, chunk, n)",
                    anchor=anchor,
                )
                continue

            if isinstance(declared, int):
                declared_peak = declared
                if declared != peak:
                    yield self.finding(
                        cls.module,
                        cls.node,
                        f"{symbol} statically allocates "
                        f"{_fmt_bounds(bounds)} but __space__ declares "
                        f"{SIZE_NAMES[declared]}",
                        anchor=anchor,
                        trace=_site_trace(sites),
                    )
            else:
                declared_peak = max(declared.values(), default=CONST)
                normal_decl = {k: v for k, v in declared.items() if v > CONST}
                if normal_decl != computed:
                    yield self.finding(
                        cls.module,
                        cls.node,
                        f"{symbol} statically allocates "
                        f"{_fmt_bounds(bounds)} but __space__ declares "
                        + ", ".join(
                            f"{k}={SIZE_NAMES[v]}"
                            for k, v in sorted(declared.items())
                        ),
                        anchor=anchor,
                        trace=_site_trace(sites),
                    )

            yield from self._check_docstring(cls, declared_peak, anchor)

    def _check_docstring(
        self, cls: ClassNode, declared_peak: int, anchor: str
    ) -> Iterator[Finding]:
        doc = ast.get_docstring(cls.node)
        match = _DOC_MEMORY_RE.search(doc) if doc else None
        if match is None:
            yield self.finding(
                cls.module,
                cls.node,
                f"{cls.name} docstring must state its memory bound with "
                f'a "Memory: {SIZE_NAMES[declared_peak]}" line',
                anchor=f"{anchor}.__doc__",
            )
            return
        stated = parse_bound(match.group(1))
        if stated != declared_peak:
            yield self.finding(
                cls.module,
                cls.node,
                f'{cls.name} docstring says "Memory: {match.group(1)}" '
                f"but __space__ joins to {SIZE_NAMES[declared_peak]}",
                anchor=f"{anchor}.__doc__",
            )


# ----------------------------------------------------------------------
# RA006


@register
class QuadraticGrowthAudit(AuditRule):
    code = "RA006"
    summary = (
        "no quadratic-growth allocation patterns: concatenate-family "
        "calls must not grow their own operand in a loop, run per chunk "
        "in a stream loop, or re-collect a parallel fan-out"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        for func in graph.iter_functions():
            if not func.module.is_library:
                continue
            yield from self._check_function(graph, func)

    def _check_function(
        self, graph: CallGraph, func: FuncNode
    ) -> Iterator[Finding]:
        # (c) concatenate-family directly wrapping a parallel fan-out.
        for call in graph.calls_of(func):
            tail = self._concat_tail(call)
            if tail is None:
                continue
            if any(
                isinstance(arg, ast.Call) and is_dispatch_call(arg)
                for arg in call.args
            ):
                yield self.finding(
                    func.module,
                    call,
                    f"np.{tail}() re-collects a parallel_map_chunks() "
                    "fan-out whose output length is known up front; "
                    "preallocate the output array and fill slices "
                    f"instead (in {func.qualname})",
                    anchor=f"{func.qualname}:{tail}(dispatch)",
                    trace=(func.frame(call.lineno),),
                )
        # (a)/(b): loop-resident reallocation.
        args = func.node.args
        stream_params = {
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if a.arg in STREAM_PARAM_NAMES
        }
        yield from self._visit(
            func, func.node.body, stream_params, in_loop=False, over_stream=False
        )

    def _visit(
        self,
        func: FuncNode,
        stmts: list,
        stream_params: set,
        *,
        in_loop: bool,
        over_stream: bool,
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                stream = over_stream or self._iterates_stream(
                    stmt.iter, stream_params
                )
                yield from self._visit(
                    func,
                    stmt.body,
                    stream_params,
                    in_loop=True,
                    over_stream=stream,
                )
                yield from self._visit(
                    func,
                    stmt.orelse,
                    stream_params,
                    in_loop=in_loop,
                    over_stream=over_stream,
                )
            elif isinstance(stmt, ast.While):
                yield from self._visit(
                    func,
                    stmt.body,
                    stream_params,
                    in_loop=True,
                    over_stream=over_stream,
                )
            elif isinstance(stmt, (ast.If, ast.With, ast.AsyncWith, ast.Try)):
                bodies = [list(getattr(stmt, "body", []))]
                bodies.append(list(getattr(stmt, "orelse", [])))
                bodies.append(list(getattr(stmt, "finalbody", [])))
                for handler in getattr(stmt, "handlers", []):
                    bodies.append(list(handler.body))
                for body in bodies:
                    yield from self._visit(
                        func,
                        body,
                        stream_params,
                        in_loop=in_loop,
                        over_stream=over_stream,
                    )
            elif in_loop and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from self._check_leaf(func, stmt, over_stream)

    def _check_leaf(
        self, func: FuncNode, stmt: ast.stmt, over_stream: bool
    ) -> Iterator[Finding]:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            tail = self._concat_tail(node)
            if tail is None:
                continue
            grown = self._grows_own_operand(node, stmt)
            if grown is not None:
                yield self.finding(
                    func.module,
                    node,
                    f"np.{tail}() grows its own operand {grown!r} inside "
                    "a loop: quadratic reallocation (each iteration "
                    "copies everything accumulated so far) — collect "
                    "parts and merge once after the loop (in "
                    f"{func.qualname})",
                    anchor=f"{func.qualname}:{tail}:{grown}",
                    trace=(func.frame(node.lineno),),
                )
            elif over_stream:
                yield self.finding(
                    func.module,
                    node,
                    f"np.{tail}() runs once per chunk inside a stream "
                    "loop: repeated array reallocation in a hot path — "
                    "collect parts and merge once after the scan (in "
                    f"{func.qualname})",
                    anchor=f"{func.qualname}:{tail}:per-chunk",
                    trace=(func.frame(node.lineno),),
                )

    @staticmethod
    def _concat_tail(call: ast.Call) -> str | None:
        chain = attr_chain(call.func)
        if not chain or chain[-1] not in _CONCAT_FAMILY:
            return None
        # ``np.append(arr, values)`` reallocates; ``parts.append(x)`` is
        # the list method (one argument) handled by RA005, not a copy.
        if chain[-1] == "append" and len(call.args) < 2:
            return None
        return chain[-1]

    @staticmethod
    def _grows_own_operand(call: ast.Call, stmt: ast.stmt) -> str | None:
        """The variable a concat call both reads and reassigns in-place
        (``total = np.concatenate([total, chunk])``)."""
        if not isinstance(stmt, ast.Assign):
            return None
        if not any(node is call for node in ast.walk(stmt.value)):
            return None
        operand_names: set[str] = set()
        for arg in call.args:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name):
                    operand_names.add(node.id)
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id in operand_names:
                return target.id
        return None

    @staticmethod
    def _iterates_stream(iter_expr: ast.expr, stream_params: set) -> bool:
        if isinstance(iter_expr, ast.Name):
            return iter_expr.id in stream_params
        if isinstance(iter_expr, ast.Call):
            chain = attr_chain(iter_expr.func)
            if chain and chain[-1] in _STREAM_FACTORY_NAMES:
                return True
            if (
                isinstance(iter_expr.func, ast.Attribute)
                and iter_expr.func.attr == "iter_with_offsets"
            ):
                value = iter_expr.func.value
                return (
                    isinstance(value, ast.Name) and value.id in stream_params
                )
        return False
