"""Command-line entry point: ``python -m tools.repro_audit [paths]``.

Exit codes (stable, scripted against by CI):

* ``0`` — no findings (after baseline filtering), or ``--list-rules`` /
  ``--write-baseline`` completed;
* ``1`` — at least one new finding;
* ``2`` — usage error (unknown rule code, missing path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.repro_audit.baseline import (
    DEFAULT_BASELINE,
    filter_baselined,
    load_baseline,
    write_baseline,
)
from tools.repro_audit.core import audit_paths, iter_rules
from tools.repro_audit.reporting import (
    render_json,
    render_sarif,
    render_text,
    rule_listing,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_audit",
        description=(
            "Whole-program static audit of pass-count, parallel-"
            "determinism, exception and counter-schema contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to audit (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        default=None,
        help=(
            "baseline file of accepted findings (default: "
            "tools/repro_audit/baseline.txt when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        type=Path,
        default=None,
        help="write the report to FILE instead of stdout",
    )
    args = parser.parse_args(argv)

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]

    try:
        rules = iter_rules(select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.list_rules:
        print(rule_listing(rules))
        return 0

    for raw in args.paths:
        if not Path(raw).exists():
            print(f"error: path does not exist: {raw}", file=sys.stderr)
            return 2

    findings = audit_paths(args.paths, select=select)

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE
    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(findings, target)
        print(
            f"repro-audit: wrote {len(findings)} fingerprint(s) to {target}"
        )
        return 0
    if baseline_path is not None and not args.no_baseline:
        findings = filter_baselined(findings, load_baseline(baseline_path))

    if args.format == "json":
        report = render_json(findings)
    elif args.format == "sarif":
        report = render_sarif(findings, rules)
    else:
        report = render_text(findings)
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
