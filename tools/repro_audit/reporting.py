"""Renderers for repro-audit findings: text, JSON, SARIF 2.1.0.

The text form is for humans and CI logs (one location line per finding
plus the indented call-graph "why" trace); JSON is for scripting; SARIF
feeds GitHub code scanning, with each finding's trace encoded as a
``codeFlow`` so the UI can walk the call chain from the audited entry
point to the offending statement.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Sequence

from tools.repro_audit.core import AuditRule, Finding

__all__ = ["render_json", "render_sarif", "render_text", "rule_listing"]

SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

#: Trace frames look like ``qualname (path:line)``.
_FRAME_RE = re.compile(r"^(?P<label>.*)\((?P<path>[^()]+):(?P<line>\d+)\)\s*$")


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one block per finding."""
    if not findings:
        return "repro-audit: clean (0 findings)"
    lines = [finding.format() for finding in findings]
    lines.append(f"repro-audit: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report."""
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
        },
        indent=2,
        sort_keys=True,
    )


def _location(path: str, line: int, col: int = 0) -> dict:
    region: dict = {"startLine": max(1, line)}
    if col:
        region["startColumn"] = col + 1
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": region,
        }
    }


def _code_flow(finding: Finding) -> dict:
    """The finding's "why" trace as a SARIF codeFlow."""
    locations = []
    for frame in finding.trace:
        match = _FRAME_RE.match(frame)
        if match:
            loc = _location(
                match.group("path").strip(), int(match.group("line"))
            )
        else:
            loc = _location(finding.path, finding.line, finding.col)
        locations.append(
            {"location": {**loc, "message": {"text": frame}}}
        )
    locations.append(
        {
            "location": {
                **_location(finding.path, finding.line, finding.col),
                "message": {"text": finding.message},
            }
        }
    )
    return {"threadFlows": [{"locations": locations}]}


def render_sarif(
    findings: Sequence[Finding], rules: Iterable[AuditRule]
) -> str:
    """SARIF 2.1.0 log for GitHub code-scanning upload."""
    rule_objects = [
        {
            "id": rule.code,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.summary},
        }
        for rule in rules
    ]
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                _location(finding.path, finding.line, finding.col)
            ],
            "partialFingerprints": {
                "reproAudit/v1": finding.fingerprint()
            },
        }
        if finding.trace:
            result["codeFlows"] = [_code_flow(finding)]
        results.append(result)
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-audit",
                        "informationUri": (
                            "https://github.com/paper-repro/repro"
                        ),
                        "rules": rule_objects,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def rule_listing(rules: Iterable[AuditRule]) -> str:
    """``--list-rules`` output."""
    return "\n".join(f"{rule.code}  {rule.summary}" for rule in rules)
