"""Project call graph for repro-audit.

Builds a whole-program model on top of :class:`tools.astkit.ProjectModel`:
classes with MRO-based method lookup, module scopes with import
resolution (including relative imports and ``__init__`` re-exports),
call-target resolution inside function bodies, and a BFS reachability
engine that records a per-edge "why" trace for diagnostics.

Everything here is a *static under/over-approximation* of runtime
behaviour — the trade-offs are documented in DESIGN.md §10. The model
never imports the analysed code.

Resolution handles the idioms the repro codebase actually uses:

* ``self.method(...)`` / ``cls.method(...)`` through the receiver's MRO,
  so audits of a subclass entry point see overridden helpers;
* ``super().method(...)``;
* module-level functions and classes, directly or via ``from x import y``
  (chased through package ``__init__`` re-exports);
* ``mod.func(...)`` where ``mod`` is a scanned module;
* constructor-typed locals: after ``est = KernelDensityEstimator(...)``,
  ``est.fit(...)`` resolves through that class's MRO;
* ``functools.partial(f, ...)`` unwrapping at dispatch sites.

Dynamically-typed attribute calls that none of the above resolve (for
example ``estimator.fit(...)`` where ``estimator`` is a parameter) are
returned unresolved; rules decide whether a declared contract applies.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from tools.astkit import ControlFlowGraph, ModuleInfo, ProjectModel, build_cfg

__all__ = [
    "CallGraph",
    "CallTarget",
    "ClassNode",
    "FuncNode",
    "attr_chain",
    "call_name",
    "decorator_names",
    "is_dispatch_call",
]

#: Import-chasing depth limit (re-export chains through ``__init__``).
_MAX_IMPORT_HOPS = 6


@dataclass
class ClassNode:
    """A class definition plus the lookup tables rules need."""

    module: ModuleInfo
    node: ast.ClassDef
    #: Direct methods defined in the class body, name -> def node.
    own_methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Class-level assignments in the body, name -> value expression.
    own_attrs: dict[str, ast.expr] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        return f"{self.module.module}.{self.name}"


@dataclass(frozen=True)
class FuncNode:
    """A function or method definition in the project."""

    module: ModuleInfo
    node: ast.FunctionDef
    cls: "ClassNode | None" = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        if self.cls is not None:
            return f"{self.cls.qualname}.{self.name}"
        return f"{self.module.module}.{self.name}"

    def frame(self, line: int | None = None) -> str:
        """A "why"-trace frame string, optionally at a specific line."""
        where = self.module.display_path
        at = line if line is not None else self.node.lineno
        return f"{self.qualname} ({where}:{at})"


@dataclass(frozen=True)
class CallTarget:
    """A resolved call edge: the callee plus the receiver class, if any.

    ``self_cls`` is the *dynamic* receiver class used for further
    ``self.x`` lookups inside the callee — for an audit of
    ``OnePassBiasedSampler.sample`` it stays ``OnePassBiasedSampler``
    even while executing a method inherited from the base class.
    """

    func: FuncNode
    self_cls: ClassNode | None = None

    @property
    def key(self) -> tuple[int, int]:
        return (id(self.func.node), id(self.self_cls) if self.self_cls else 0)


def attr_chain(expr: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return list(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted textual name of a call's callee, when it is a name chain."""
    chain = attr_chain(call.func)
    return ".".join(chain) if chain else None


def decorator_names(node: ast.FunctionDef) -> set[str]:
    """Trailing identifiers of a def's decorators (``abstractmethod`` …)."""
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        chain = attr_chain(target)
        if chain:
            names.add(chain[-1])
    return names


def is_dispatch_call(call: ast.Call) -> bool:
    """Whether a call fans work out through ``repro.parallel``.

    Recognises ``parallel_map_chunks(...)`` (bare or attribute-qualified)
    and ``get_backend(...).map(...)``. Shared by every rule family that
    reasons about parallel workers (RA001/RA002/RA005/RA007).
    """
    chain = attr_chain(call.func)
    if chain and chain[-1] == "parallel_map_chunks":
        return True
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "map"
        and isinstance(call.func.value, ast.Call)
    ):
        inner = attr_chain(call.func.value.func)
        return bool(inner) and inner[-1] == "get_backend"
    return False


class CallGraph:
    """Whole-program model: classes, scopes, call resolution, reachability."""

    def __init__(self, project: ProjectModel):
        self.project = project
        self.classes: list[ClassNode] = []
        self.classes_by_name: dict[str, list[ClassNode]] = {}
        #: Module-level functions, (module name, func name) -> node.
        self._module_funcs: dict[tuple[str, str], FuncNode] = {}
        self._scopes: dict[str, dict[str, object]] = {}
        self._mro_cache: dict[int, list[ClassNode]] = {}
        # Shared per-run caches: one CallGraph serves every rule family
        # (RA001-RA007), so sub-computations that used to be re-derived
        # per rule are memoized here.
        self._local_types_cache: dict[tuple[int, int], dict[str, ClassNode]] = {}
        self._calls_cache: dict[int, tuple[ast.Call, ...]] = {}
        self._cfg_cache: dict[int, ControlFlowGraph] = {}
        self._dispatch_sites: list[tuple[FuncNode, ast.Call]] | None = None
        self._index()

    # ------------------------------------------------------------------
    # Indexing

    def _index(self) -> None:
        for info in self.project.modules:
            for stmt in info.tree.body:
                self._index_stmt(info, stmt)

    def _index_stmt(self, info: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.ClassDef):
            cls = ClassNode(module=info, node=stmt)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if isinstance(item, ast.FunctionDef):
                        cls.own_methods[item.name] = item
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            cls.own_attrs[target.id] = item.value
                elif isinstance(item, ast.AnnAssign) and item.value is not None:
                    if isinstance(item.target, ast.Name):
                        cls.own_attrs[item.target.id] = item.value
            self.classes.append(cls)
            self.classes_by_name.setdefault(cls.name, []).append(cls)
        elif isinstance(stmt, ast.FunctionDef):
            self._module_funcs[(info.module, stmt.name)] = FuncNode(
                module=info, node=stmt
            )
        elif isinstance(stmt, (ast.If, ast.Try)):
            bodies = [stmt.body, list(getattr(stmt, "orelse", []))]
            for handler in getattr(stmt, "handlers", []):
                bodies.append(handler.body)
            for body in bodies:
                for sub in body:
                    self._index_stmt(info, sub)

    # ------------------------------------------------------------------
    # Scopes and import resolution

    def scope(self, info: ModuleInfo) -> dict[str, object]:
        """Top-level name -> entity for one module.

        Entities are :class:`ClassNode`, :class:`FuncNode`,
        :class:`~tools.astkit.ModuleInfo` (for imported scanned modules)
        or ``ast.expr`` (module-level assigned value, e.g. a ContextVar
        constructor call).
        """
        cached = self._scopes.get(info.module)
        if cached is not None:
            return cached
        scope: dict[str, object] = {}
        self._scopes[info.module] = scope  # placed first: cycle-safe
        for stmt in info.tree.body:
            self._scope_stmt(info, stmt, scope)
        return scope

    def _scope_stmt(
        self, info: ModuleInfo, stmt: ast.stmt, scope: dict[str, object]
    ) -> None:
        if isinstance(stmt, ast.ClassDef):
            scope[stmt.name] = self._class_node(info, stmt)
        elif isinstance(stmt, ast.FunctionDef):
            scope[stmt.name] = self._module_funcs[(info.module, stmt.name)]
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                mod = self.project.resolve_module(alias.name)
                if mod is not None:
                    scope[alias.asname or alias.name.split(".")[0]] = mod
        elif isinstance(stmt, ast.ImportFrom):
            source = self._import_source(info, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                entity = self._resolve_in(source, alias.name) if source else None
                if entity is None and source is not None:
                    # ``from pkg import submodule``
                    sub = self.project.resolve_module(
                        f"{source}.{alias.name}"
                    )
                    entity = sub
                if entity is not None:
                    scope[bound] = entity
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    scope.setdefault(target.id, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                scope.setdefault(stmt.target.id, stmt.value)
        elif isinstance(stmt, (ast.If, ast.Try)):
            bodies = [stmt.body, list(getattr(stmt, "orelse", []))]
            for handler in getattr(stmt, "handlers", []):
                bodies.append(handler.body)
            for body in bodies:
                for sub in body:
                    self._scope_stmt(info, sub, scope)

    def _class_node(self, info: ModuleInfo, node: ast.ClassDef) -> ClassNode:
        for cls in self.classes_by_name.get(node.name, []):
            if cls.node is node:
                return cls
        # Conditionally-defined class not caught by indexing; register it.
        cls = ClassNode(module=info, node=node)
        self.classes.append(cls)
        self.classes_by_name.setdefault(node.name, []).append(cls)
        return cls

    def _import_source(self, info: ModuleInfo, stmt: ast.ImportFrom) -> str | None:
        """Absolute dotted module a ``from ... import`` pulls from."""
        if not stmt.level:
            return stmt.module
        parts = info.module.split(".")
        # ``from . import x`` in a package __init__ refers to the package
        # itself; in a plain module it refers to the containing package.
        drop = stmt.level if not info.is_init else stmt.level - 1
        if drop:
            parts = parts[:-drop]
        if stmt.module:
            parts.append(stmt.module)
        return ".".join(parts) if parts else None

    def _resolve_in(
        self, module: str, name: str, hops: int = _MAX_IMPORT_HOPS
    ) -> object | None:
        """Resolve ``module.name`` to an entity, chasing re-exports."""
        if hops <= 0:
            return None
        info = self.project.resolve_module(module)
        if info is None:
            return None
        for stmt in info.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == name:
                return self._class_node(info, stmt)
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                return self._module_funcs[(info.module, stmt.name)]
        for stmt in info.tree.body:
            if isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if (alias.asname or alias.name) == name:
                        source = self._import_source(info, stmt)
                        if source is None:
                            return None
                        found = self._resolve_in(source, alias.name, hops - 1)
                        if found is not None:
                            return found
                        return self.project.resolve_module(
                            f"{source}.{alias.name}"
                        )
        return None

    # ------------------------------------------------------------------
    # Class hierarchy

    def mro(self, cls: ClassNode) -> list[ClassNode]:
        """Approximate linearisation: depth-first over resolvable bases."""
        cached = self._mro_cache.get(id(cls))
        if cached is not None:
            return cached
        order: list[ClassNode] = []
        seen: set[int] = set()
        self._mro_cache[id(cls)] = order  # cycle-safe
        stack: list[ClassNode] = [cls]
        while stack:
            current = stack.pop(0)
            if id(current) in seen:
                continue
            seen.add(id(current))
            order.append(current)
            bases = [
                b
                for b in (self._resolve_base(current, e) for e in current.node.bases)
                if b is not None
            ]
            stack = bases + stack
        return order

    def _resolve_base(self, cls: ClassNode, expr: ast.expr) -> ClassNode | None:
        scope = self.scope(cls.module)
        if isinstance(expr, ast.Name):
            entity = scope.get(expr.id)
            return entity if isinstance(entity, ClassNode) else None
        chain = attr_chain(expr)
        if chain and len(chain) >= 2:
            entity = scope.get(chain[0])
            if isinstance(entity, ModuleInfo):
                found = self._resolve_in(entity.module, chain[-1])
                if isinstance(found, ClassNode):
                    return found
        return None

    def base_names(self, cls: ClassNode) -> set[str]:
        """Names of every class in the inheritance chain, including
        *unresolved* base identifiers (``ABC``, ``OSError`` …)."""
        names: set[str] = set()
        for node in self.mro(cls):
            names.add(node.name)
            for expr in node.node.bases:
                chain = attr_chain(expr)
                if chain:
                    names.add(chain[-1])
        return names

    def inherits_from(self, cls: ClassNode, name: str) -> bool:
        """Whether ``name`` appears in the inheritance chain above ``cls``."""
        if any(other.name == name for other in self.mro(cls)[1:]):
            return True
        for node in self.mro(cls):
            for expr in node.node.bases:
                chain = attr_chain(expr)
                if chain and chain[-1] == name:
                    return True
        return False

    def lookup_method(self, cls: ClassNode, name: str) -> FuncNode | None:
        """First definition of method ``name`` along the MRO."""
        for node in self.mro(cls):
            fn = node.own_methods.get(name)
            if fn is not None:
                return FuncNode(module=node.module, node=fn, cls=node)
        return None

    def declared_attr(self, cls: ClassNode, name: str) -> ast.expr | None:
        """First class-level assignment of ``name`` along the MRO."""
        for node in self.mro(cls):
            if name in node.own_attrs:
                return node.own_attrs[name]
        return None

    def own_or_inherited_attr_owner(
        self, cls: ClassNode, name: str
    ) -> ClassNode | None:
        """The MRO class whose body declares class attribute ``name``."""
        for node in self.mro(cls):
            if name in node.own_attrs:
                return node
        return None

    def is_abstract(self, cls: ClassNode) -> bool:
        """Whether any abstract method is left unimplemented."""
        first_def: dict[str, ast.FunctionDef] = {}
        for node in self.mro(cls):
            for name, fn in node.own_methods.items():
                first_def.setdefault(name, fn)
        return any(
            "abstractmethod" in decorator_names(fn) for fn in first_def.values()
        )

    def subclasses_of(self, name: str) -> list[ClassNode]:
        """All scanned classes with ``name`` in their inheritance chain."""
        return [cls for cls in self.classes if self.inherits_from(cls, name)]

    # ------------------------------------------------------------------
    # Per-function type environment and call resolution

    def local_types(
        self, func: FuncNode, self_cls: ClassNode | None = None
    ) -> dict[str, ClassNode]:
        """Constructor-typed locals: ``est = KernelDensityEstimator(...)``.

        Single forward scan; only direct ``Name = ClassName(...)`` and
        ``Name = mod.ClassName(...)`` shapes are tracked, plus
        conditional expressions whose branches construct the same class.
        Results are memoized per (function, receiver class) — every rule
        family queries the same environments.
        """
        key = (id(func.node), id(self_cls) if self_cls is not None else 0)
        cached = self._local_types_cache.get(key)
        if cached is not None:
            return cached
        env: dict[str, ClassNode] = {}
        scope = self.scope(func.module)
        for stmt in ast.walk(func.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            typed = self._constructed_class(stmt.value, scope)
            if typed is not None:
                env[target.id] = typed
            elif target.id in env:
                del env[target.id]
        self._local_types_cache[key] = env
        return env

    def calls_of(self, func: FuncNode) -> tuple[ast.Call, ...]:
        """Every ``ast.Call`` in a function body, cached per def node."""
        cached = self._calls_cache.get(id(func.node))
        if cached is not None:
            return cached
        calls = tuple(
            node
            for node in ast.walk(func.node)
            if isinstance(node, ast.Call)
        )
        self._calls_cache[id(func.node)] = calls
        return calls

    def cfg_of(self, func: FuncNode) -> ControlFlowGraph:
        """The per-function control-flow graph, memoized per def node.

        Flow-sensitive rules (RA011 must-release, future ordering
        proofs) share one CFG per function across the whole run.
        """
        cached = self._cfg_cache.get(id(func.node))
        if cached is None:
            cached = build_cfg(func.node)
            self._cfg_cache[id(func.node)] = cached
        return cached

    def dispatch_sites(self) -> list[tuple[FuncNode, ast.Call]]:
        """Every ``repro.parallel`` fan-out call site in the project.

        Built once per run and shared by the rule families that audit
        parallel workers (RA002 determinism, RA007 merge contracts) and
        allocation patterns around dispatch (RA006).
        """
        if self._dispatch_sites is None:
            sites: list[tuple[FuncNode, ast.Call]] = []
            for func in self.iter_functions():
                for call in self.calls_of(func):
                    if is_dispatch_call(call):
                        sites.append((func, call))
            self._dispatch_sites = sites
        return self._dispatch_sites

    def _constructed_class(
        self, expr: ast.expr, scope: dict[str, object]
    ) -> ClassNode | None:
        if isinstance(expr, ast.IfExp):
            body = self._constructed_class(expr.body, scope)
            orelse = self._constructed_class(expr.orelse, scope)
            return body if body is not None else orelse
        if not isinstance(expr, ast.Call):
            return None
        callee = expr.func
        if isinstance(callee, ast.Name):
            entity = scope.get(callee.id)
            return entity if isinstance(entity, ClassNode) else None
        chain = attr_chain(callee)
        if chain and len(chain) == 2:
            entity = scope.get(chain[0])
            if isinstance(entity, ModuleInfo):
                found = self._resolve_in(entity.module, chain[1])
                if isinstance(found, ClassNode):
                    return found
        return None

    def resolve_call(
        self,
        call: ast.Call,
        func: FuncNode,
        self_cls: ClassNode | None,
        env: dict[str, ClassNode] | None = None,
    ) -> list[CallTarget]:
        """Resolve one call site to zero or more in-project callees."""
        env = env or {}
        scope = self.scope(func.module)
        callee = call.func
        if isinstance(callee, ast.Name):
            entity = scope.get(callee.id)
            if isinstance(entity, FuncNode):
                return [CallTarget(entity)]
            if isinstance(entity, ClassNode):
                init = self.lookup_method(entity, "__init__")
                return [CallTarget(init, entity)] if init else []
            return []
        if not isinstance(callee, ast.Attribute):
            return []
        attr = callee.attr
        value = callee.value
        receiver_cls: ClassNode | None = None
        if isinstance(value, ast.Name):
            if value.id in ("self", "cls") and self_cls is not None:
                receiver_cls = self_cls
            elif value.id in env:
                receiver_cls = env[value.id]
            else:
                entity = scope.get(value.id)
                if isinstance(entity, ModuleInfo):
                    found = self._resolve_in(entity.module, attr)
                    if isinstance(found, FuncNode):
                        return [CallTarget(found)]
                    if isinstance(found, ClassNode):
                        init = self.lookup_method(found, "__init__")
                        return [CallTarget(init, found)] if init else []
                    return []
                if isinstance(entity, ClassNode):
                    method = self.lookup_method(entity, attr)
                    return [CallTarget(method, entity)] if method else []
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "super"
            and self_cls is not None
        ):
            for node in self.mro(self_cls)[1:]:
                fn = node.own_methods.get(attr)
                if fn is not None:
                    return [
                        CallTarget(
                            FuncNode(module=node.module, node=fn, cls=node),
                            self_cls,
                        )
                    ]
            return []
        if receiver_cls is not None:
            method = self.lookup_method(receiver_cls, attr)
            return [CallTarget(method, receiver_cls)] if method else []
        return []

    def unwrap_callable(
        self,
        expr: ast.expr,
        func: FuncNode,
        self_cls: ClassNode | None,
        env: dict[str, ClassNode] | None = None,
    ) -> list[CallTarget]:
        """Resolve a *callable-valued expression* (worker reference).

        Handles bare names, ``self.method``, ``obj.method`` on typed
        locals, and ``partial(f, ...)`` wrapping any of those.
        """
        env = env or {}
        scope = self.scope(func.module)
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain and chain[-1] == "partial" and expr.args:
                return self.unwrap_callable(expr.args[0], func, self_cls, env)
            return []
        if isinstance(expr, ast.Name):
            entity = scope.get(expr.id)
            if isinstance(entity, FuncNode):
                return [CallTarget(entity)]
            return []
        if isinstance(expr, ast.Attribute):
            value = expr.value
            if isinstance(value, ast.Name):
                if value.id in ("self", "cls") and self_cls is not None:
                    method = self.lookup_method(self_cls, expr.attr)
                    return [CallTarget(method, self_cls)] if method else []
                if value.id in env:
                    method = self.lookup_method(env[value.id], expr.attr)
                    return (
                        [CallTarget(method, env[value.id])] if method else []
                    )
                entity = scope.get(value.id)
                if isinstance(entity, ModuleInfo):
                    found = self._resolve_in(entity.module, expr.attr)
                    if isinstance(found, FuncNode):
                        return [CallTarget(found)]
        return []

    # ------------------------------------------------------------------
    # Reachability

    def iter_functions(self) -> Iterator[FuncNode]:
        """Every function and method in the project."""
        yield from self._module_funcs.values()
        for cls in self.classes:
            for fn in cls.own_methods.values():
                yield FuncNode(module=cls.module, node=fn, cls=cls)

    def reachable(
        self,
        roots: list[tuple[CallTarget, tuple[str, ...]]],
        prune=None,
    ) -> dict[tuple[int, int], tuple[CallTarget, tuple[str, ...]]]:
        """BFS over the call graph from ``roots``.

        Each root is a (target, initial trace) pair; the returned map
        holds, per visited (function, receiver-class) node, the target
        and the "why" trace — frames from the root to that function,
        each formatted ``qualname (path:line)``. Shortest (first-found)
        traces win. ``prune``, when given, is a predicate on
        :class:`CallTarget`: edges into matching callees are not
        followed (the callee is neither visited nor traversed).
        """
        visited: dict[tuple[int, int], tuple[CallTarget, tuple[str, ...]]] = {}
        queue: deque[tuple[CallTarget, tuple[str, ...]]] = deque(roots)
        while queue:
            target, trace = queue.popleft()
            if target.key in visited:
                continue
            visited[target.key] = (target, trace)
            env = self.local_types(target.func, target.self_cls)
            for call in self.calls_of(target.func):
                for callee in self.resolve_call(
                    call, target.func, target.self_cls, env
                ):
                    if callee.key in visited:
                        continue
                    if prune is not None and prune(callee):
                        continue
                    hop = target.func.frame(call.lineno)
                    queue.append((callee, trace + (hop,)))
        return visited
