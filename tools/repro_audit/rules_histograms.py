"""RA008 — histogram-schema audit.

Sibling of RA004: manifests carry latency/throughput histograms, and
those are only comparable across runs if the set of histogram names —
and their bucket boundaries — is a closed vocabulary.
``src/repro/obs/schema.py`` holds it as the ``HISTOGRAM_SCHEMA``
registry. This rule keeps observation sites and registry in lock-step:

* **forward** — every literal histogram name observed in the audited
  tree (``recorder.observe("name", value)`` /
  ``get_recorder().observe(...)``) must be a key of
  ``HISTOGRAM_SCHEMA`` — an unregistered observation would fall back
  to the generic default buckets and silently lose resolution;
* **reverse** — every registered histogram must be observed somewhere
  in the audited tree (a dead registry entry means dead docs or a
  silently dropped measurement).

Only literal-string first arguments are audited; the worker-merge path
in ``repro.parallel`` folds already-bucketed histogram dicts and never
re-observes by name, so it is invisible here by design. The literal
matcher is shared with RA004 (see
:mod:`tools.repro_audit.rules_counters`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.astkit import ModuleInfo
from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import CallGraph
from tools.repro_audit.rules_counters import (
    _Increment,
    _iter_increments,
    _schema_entries,
)

__all__ = ["HistogramSchemaAudit"]

#: Name of the registry binding a schema module must define.
SCHEMA_BINDING = "HISTOGRAM_SCHEMA"


@register
class HistogramSchemaAudit(AuditRule):
    code = "RA008"
    summary = (
        "every observed histogram name is registered in HISTOGRAM_SCHEMA "
        "and every registered histogram is observed somewhere"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        schema: dict[str, ast.expr] = {}
        schema_info: ModuleInfo | None = None
        observations: list[_Increment] = []
        for info in graph.project.modules:
            entries = _schema_entries(info, binding=SCHEMA_BINDING)
            if entries is not None and schema_info is None:
                schema, schema_info = entries, info
            observations.extend(_iter_increments(info, attr="observe"))

        if not observations:
            return
        if schema_info is None:
            first = observations[0]
            yield self.finding(
                first.info,
                first.node,
                f"histogram {first.name!r} is observed but the audited "
                f"tree defines no {SCHEMA_BINDING} registry "
                "(src/repro/obs/schema.py)",
                anchor="missing-schema",
            )
            return

        observed: set[str] = set()
        for obs in observations:
            observed.add(obs.name)
            if obs.name not in schema:
                yield self.finding(
                    obs.info,
                    obs.node,
                    f"histogram {obs.name!r} is observed but not "
                    f"registered in {SCHEMA_BINDING}",
                    anchor=obs.name,
                    trace=(
                        f"{obs.qualname} "
                        f"({obs.info.display_path}:{obs.node.lineno})",
                    ),
                )
        for name in sorted(set(schema) - observed):
            yield self.finding(
                schema_info,
                schema[name],
                f"histogram {name!r} is registered in {SCHEMA_BINDING} "
                "but never observed in the audited tree",
                anchor=name,
            )
