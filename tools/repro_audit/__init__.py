"""repro-audit: whole-program static contract auditing.

See :mod:`tools.repro_audit.core` for the architecture overview and
DESIGN.md §10 for rule semantics and known approximations. Public
surface: :func:`audit_paths`, :class:`Finding`, the rule registry, and
the renderers in :mod:`tools.repro_audit.reporting`.
"""

from tools.repro_audit.core import (
    RULES,
    AuditRule,
    Finding,
    audit_paths,
    iter_rules,
    register,
)

__all__ = [
    "AuditRule",
    "Finding",
    "RULES",
    "audit_paths",
    "iter_rules",
    "register",
]
