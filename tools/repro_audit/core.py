"""Core machinery for repro-audit: finding model, rule registry, runner.

repro-audit is the repo's *whole-program* static analysis. Where
repro-lint checks per-file discipline (RL001..RL008), repro-audit
parses the analysed tree into a project call graph (:mod:`.graph`) and
runs flow-sensitive contract checks on top of it:

* ``RA001`` — pass-count audit: statically count the dataset scans
  reachable from each sampler/estimator/detector entry point and check
  them against the class's declared ``__n_passes__`` contract (and its
  ``Dataset passes:`` docstring line).
* ``RA002`` — parallel-determinism audit: no RNG calls, ambient
  recorder installation or context-variable mutation reachable from
  functions dispatched through ``repro.parallel`` workers.
* ``RA003`` — exception-contract audit: the retry layer's give-up
  signal (``StreamReadError``) must stay outside the ``OSError``
  hierarchy, must never be swallowed, and ``except OSError`` handlers
  must not wrap the retry layer.
* ``RA004`` — counter-schema audit: every observability counter name
  incremented in the analysed tree must be declared in the
  ``COUNTER_SCHEMA`` registry (``src/repro/obs/schema.py``), and every
  declared counter must be incremented somewhere.
* ``RA005`` — space-complexity audit: propagate an abstract size
  lattice (``O(1) < O(b) < O(m) < O(chunk) < O(n) < unbounded``)
  through each audited entry point and check the per-phase bound
  against the class's declared ``__space__`` contract (and its
  ``Memory:`` docstring line).
* ``RA006`` — allocation-pattern audit: no quadratic-growth
  reallocation (concatenate-family calls growing their own operand in
  a loop, per-chunk concatenation in stream loops, re-collection of a
  parallel fan-out whose length is known up front).
* ``RA007`` — merge-safety audit: worker-mutated per-shard state needs
  a called merge-style combiner, and worker counters must round-trip
  through the harness's dynamic re-emission loop.
* ``RA009`` — shared-state race audit: per-function effect summaries
  prove dispatched workers never write coordinator-visible state
  (globals, closures, mutable defaults, shipped objects, read-only
  shared views) outside the RA007 merge channel.
* ``RA010`` — RNG consumption-order prover: every generator draw
  reachable from a ``fit``/``draw``/``plan``/``sample`` entry point
  executes on the coordinator, never under order-nondeterministic
  iteration, and serial/sharded branch pairs draw identically.
* ``RA011`` — must-release lifecycle audit: every shm/tempfile/file
  handle/memmap acquire is released on all CFG paths (exception edges
  included, via :func:`tools.astkit.build_cfg`) or ownership-transferred
  to a releasing owner.

Every finding carries a call-graph "why" trace: the chain of calls
from the audited entry point (or dispatch/try site) to the offending
statement. Suppression is per file (``# repro-audit: disable=RA001``)
plus an optional baseline file of accepted findings (:mod:`.baseline`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from tools.astkit import ModuleInfo, build_model, collect_python_files
from tools.repro_audit.graph import CallGraph

__all__ = [
    "AuditRule",
    "Finding",
    "RULES",
    "audit_paths",
    "iter_rules",
    "register",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One audit finding at a source location.

    Attributes
    ----------
    path:
        File path, as passed to the runner.
    line:
        1-based line number.
    col:
        0-based column offset.
    rule:
        Rule code, e.g. ``"RA001"``.
    message:
        Human-readable description of the contract violation.
    anchor:
        Stable symbol the finding is about (class/function qualname or
        counter name) — used for baseline fingerprints, which must
        survive unrelated line drift.
    trace:
        Call-graph "why" trace: frames from the audited entry point to
        the offending site, each ``"qualname (path:line)"``.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    anchor: str = ""
    trace: tuple[str, ...] = field(default_factory=tuple)

    def format(self) -> str:
        """Render as ``path:line:col: CODE message`` plus the trace."""
        lines = [f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"]
        for hop in self.trace:
            lines.append(f"    via {hop}")
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        return f"{self.rule}\t{self.path}\t{self.anchor or self.message}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "anchor": self.anchor,
            "trace": list(self.trace),
        }


class AuditRule:
    """Base class for audit rules. Subclasses set ``code``/``summary``.

    Unlike repro-lint rules (checked file by file), an audit rule runs
    once per analysis over the whole :class:`~tools.repro_audit.graph.CallGraph`
    and yields findings anywhere in the project; per-file suppression is
    applied by the runner afterwards.
    """

    code: str = "RA000"
    summary: str = ""

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        """Yield findings over the whole project. Override in subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(
        self,
        info: ModuleInfo,
        node: ast.AST | None,
        message: str,
        *,
        anchor: str = "",
        trace: tuple[str, ...] = (),
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or line 1)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=info.display_path,
            line=line,
            col=col,
            rule=self.code,
            message=message,
            anchor=anchor,
            trace=trace,
        )


#: Global registry, code -> rule instance, populated by :func:`register`.
RULES: dict[str, AuditRule] = {}


def register(cls: type[AuditRule]) -> type[AuditRule]:
    """Class decorator adding a rule to the global registry."""
    instance = cls()
    if instance.code in RULES:
        raise ValueError(f"duplicate rule code {instance.code}")
    RULES[instance.code] = instance
    return cls


def iter_rules(select: Iterable[str] | None = None) -> list[AuditRule]:
    """Registered rules, optionally restricted to ``select`` codes."""
    _load_rules()
    if select is None:
        return [RULES[c] for c in sorted(RULES)]
    unknown = sorted(set(select) - set(RULES))
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(unknown)}")
    return [RULES[c] for c in sorted(select)]


def _load_rules() -> None:
    """Import the rule modules (registers them as a side effect)."""
    from tools.repro_audit import (  # noqa: F401
        rules_counters,
        rules_exceptions,
        rules_histograms,
        rules_lifecycle,
        rules_merge,
        rules_parallel,
        rules_passes,
        rules_races,
        rules_rng,
        rules_space,
    )


def audit_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the registered audit rules over ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories to audit (directories are walked for
        ``*.py``). The call graph spans everything given, so
        cross-module reachability works across the whole argument set.
    select:
        Restrict the run to these rule codes (default: all).
    """
    rules = iter_rules(select)
    project, issues = build_model(
        collect_python_files(paths), tool="repro-audit"
    )
    findings = [
        Finding(
            path=issue.path,
            line=issue.line,
            col=issue.col,
            rule="RA000",
            message=issue.message,
        )
        for issue in issues
    ]
    graph = CallGraph(project)
    suppressed_by_path = {
        info.display_path: info.suppressed for info in project.modules
    }
    for rule in rules:
        for finding in rule.check(graph):
            if rule.code in suppressed_by_path.get(finding.path, frozenset()):
                continue
            findings.append(finding)
    return sorted(findings)
