"""RA007 — merge-safety contract audit.

ROADMAP item 1 (mergeable sharded fitting) splits a fit across
``repro.parallel`` workers and combines per-shard partial state. That
refactor is only trustworthy if the merge obligations are
machine-checked *before* anyone relies on them:

* **combiner required** — a worker-reachable method that mutates
  ``self`` state (``self.attr = ...`` / ``self.attr += ...``) produces
  partial per-shard state the caller never sees unless the owning class
  defines a merge-style combiner (``merge`` / ``merge_with`` /
  ``combine``);
* **combiner called** — a defined combiner that no code calls is a dead
  contract: the partial state is silently dropped at the join;
* **counters round-trip** — worker-local counters only survive the join
  because the harness re-emits every merged name on the main-process
  recorder. A worker-reachable increment with a *dynamic* (non-literal)
  name cannot be checked against ``COUNTER_SCHEMA`` (RA004 skips it),
  so outside the sanctioned harness it is flagged; and if the audited
  tree contains dispatch sites plus the schema registry, the harness
  itself must contain the dynamic re-emission loop
  (``ambient.count(name, merged[name])``) or every worker counter is
  lost.

Worker discovery is shared with RA002: ``graph.dispatch_sites()`` plus
``unwrap_callable`` / ``expand_dynamic`` for dynamically-typed worker
references, so the audit covers every estimator a dispatch site could
receive.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import CallGraph, ClassNode
from tools.repro_audit.rules_counters import SCHEMA_BINDING, _schema_entries
from tools.repro_audit.rules_parallel import (
    CONTEXT_INSTALLERS,
    HARNESS_PREFIX,
    worker_roots,
)

__all__ = ["MergeContractAudit", "COMBINER_NAMES"]

#: Method names accepted as a merge-style combiner of partial state.
COMBINER_NAMES = frozenset({"merge", "merge_with", "combine"})


def _self_assigned_attrs(node: ast.FunctionDef) -> list[tuple[str, ast.stmt]]:
    """``self.<attr>`` targets assigned anywhere in a method body."""
    out: list[tuple[str, ast.stmt]] = []
    for stmt in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                out.append((target.attr, stmt))
    return out


def _dynamic_count_call(call: ast.Call) -> bool:
    """A ``<recv>.count(<non-literal>, ...)`` counter re-emission shape.

    The receiver restrictions mirror RA004: literal/container receivers
    are ``str.count`` / ``list.count`` lookalikes, not counter writes.
    """
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "count"):
        return False
    if isinstance(
        func.value, (ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set)
    ):
        return False
    if not call.args:
        return False
    first = call.args[0]
    return not (isinstance(first, ast.Constant) and isinstance(first.value, str))


@register
class MergeContractAudit(AuditRule):
    code = "RA007"
    summary = (
        "parallel workers that mutate per-shard state have a called "
        "merge-style combiner, and worker counters round-trip through "
        "the harness re-emission loop"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        roots = [
            (target, trace) for _, target, trace in worker_roots(graph)
        ]
        if not roots:
            return
        # Context installers are the harness's sanctioned setup path
        # (RA002 flags calling them); don't audit their internals here.
        reached = graph.reachable(
            roots, prune=lambda t: t.func.name in CONTEXT_INSTALLERS
        )
        yield from self._check_partial_state(graph, reached)
        yield from self._check_counter_roundtrip(graph, reached)

    # ------------------------------------------------------------------
    # Partial-state combiners

    def _check_partial_state(
        self, graph: CallGraph, reached: dict
    ) -> Iterator[Finding]:
        flagged: set[int] = set()
        for target, trace in reached.values():
            func = target.func
            if func.module.module.startswith(HARNESS_PREFIX):
                continue
            owner = target.self_cls or func.cls
            if owner is None:
                continue
            # Constructing a fresh object inside the worker is
            # worker-local by definition; only post-construction
            # mutation produces partial state that outlives the task.
            if func.name in ("__init__", "__post_init__"):
                continue
            mutations = _self_assigned_attrs(func.node)
            if not mutations:
                continue
            combiner = self._combiner_of(graph, owner)
            if combiner is None:
                if id(owner) in flagged:
                    continue
                flagged.add(id(owner))
                attr, stmt = mutations[0]
                names = sorted({a for a, _ in mutations})
                yield self.finding(
                    func.module,
                    stmt,
                    f"worker-reachable {func.qualname} mutates per-shard "
                    f"state (self.{', self.'.join(names)}) but "
                    f"{owner.name} defines no merge-style combiner "
                    f"({'/'.join(sorted(COMBINER_NAMES))}) — partial "
                    "state from parallel shards cannot be recombined",
                    anchor=f"{owner.qualname}:partial-state",
                    trace=trace + (func.frame(stmt.lineno),),
                )
            else:
                combiner_cls, combiner_name = combiner
                if id(combiner_cls) in flagged:
                    continue
                flagged.add(id(combiner_cls))
                if not self._is_called(graph, combiner_name):
                    node = combiner_cls.own_methods[combiner_name]
                    yield self.finding(
                        combiner_cls.module,
                        node,
                        f"{combiner_cls.name}.{combiner_name}() is the "
                        "merge combiner for worker-mutated state but is "
                        "never called in the audited tree — per-shard "
                        "partial state is dropped at the join",
                        anchor=f"{combiner_cls.qualname}.{combiner_name}:uncalled",
                        trace=trace,
                    )

    @staticmethod
    def _combiner_of(
        graph: CallGraph, cls: ClassNode
    ) -> tuple[ClassNode, str] | None:
        for node in graph.mro(cls):
            for name in sorted(COMBINER_NAMES):
                if name in node.own_methods:
                    return node, name
        return None

    @staticmethod
    def _is_called(graph: CallGraph, method_name: str) -> bool:
        for func in graph.iter_functions():
            if func.name == method_name:
                continue
            for call in graph.calls_of(func):
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == method_name
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    # Counter round-trip

    def _check_counter_roundtrip(
        self, graph: CallGraph, reached: dict
    ) -> Iterator[Finding]:
        # Dynamic-name increments reachable from workers, outside the
        # sanctioned harness, cannot round-trip through COUNTER_SCHEMA.
        for target, trace in reached.values():
            func = target.func
            if func.module.module.startswith(HARNESS_PREFIX):
                continue
            for call in graph.calls_of(func):
                if _dynamic_count_call(call):
                    yield self.finding(
                        func.module,
                        call,
                        "worker-reachable counter increment with a "
                        "dynamic name (in "
                        f"{func.qualname}) cannot be checked against "
                        f"{SCHEMA_BINDING}; count under a literal name "
                        "or move the re-emission into the harness",
                        anchor=f"{func.qualname}:dynamic-count",
                        trace=trace + (func.frame(call.lineno),),
                    )

        # The harness itself must re-emit merged worker counters.
        harness_mods = [
            info
            for info in graph.project.modules
            if info.module.startswith(HARNESS_PREFIX)
        ]
        has_schema = any(
            _schema_entries(info) is not None
            for info in graph.project.modules
        )
        if not harness_mods or not has_schema:
            return
        for info in harness_mods:
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Call) and _dynamic_count_call(node):
                    return
        site_func, site_call = graph.dispatch_sites()[0]
        yield self.finding(
            harness_mods[0],
            None,
            f"the {HARNESS_PREFIX} harness never re-emits merged worker "
            "counters (no dynamic <recorder>.count(name, ...) loop) — "
            "worker-local counters are dropped at the join (first "
            f"dispatch site: {site_func.frame(site_call.lineno)})",
            anchor=f"{HARNESS_PREFIX}:no-counter-reemission",
        )
