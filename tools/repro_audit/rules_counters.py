"""RA004 — counter-schema audit.

Run manifests are only comparable across machines and versions if the
set of counter names is a closed vocabulary. ``src/repro/obs/schema.py``
holds that vocabulary as the ``COUNTER_SCHEMA`` registry — the single
source of truth the manifest docs and the README counter table derive
from. This rule keeps code and registry in lock-step:

* **forward** — every literal counter name incremented in the audited
  tree (``recorder.count("name", ...)`` / ``get_recorder().count(...)``)
  must be a key of ``COUNTER_SCHEMA``;
* **reverse** — every registered counter must be incremented somewhere
  in the audited tree (a dead registry entry either means dead docs or
  a silently dropped measurement).

Only literal-string first arguments are audited; dynamic re-emission
(e.g. the worker-merge loop in ``repro.parallel``) is invisible here by
design — workers re-count names that were counted literally at the
original site. ``str.count`` / ``list.count`` lookalikes are excluded
by requiring a non-literal receiver and a counter-shaped name.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from tools.astkit import ModuleInfo
from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import CallGraph

__all__ = ["CounterSchemaAudit"]

#: Counter names are snake_case identifiers.
_COUNTER_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Name of the registry binding a schema module must define.
SCHEMA_BINDING = "COUNTER_SCHEMA"


@dataclass(frozen=True)
class _Increment:
    info: ModuleInfo
    node: ast.Call
    name: str
    qualname: str


def _schema_entries(
    info: ModuleInfo, binding: str = SCHEMA_BINDING
) -> dict[str, ast.expr] | None:
    """Registry keys of a module, if it defines the ``binding`` dict.

    Shared by RA004 (``COUNTER_SCHEMA``) and RA008
    (``HISTOGRAM_SCHEMA``): both registries are audited statically, so
    their keys must be string literals.
    """
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == binding
            for t in targets
        ):
            continue
        if not isinstance(stmt.value, ast.Dict):
            return {}
        entries: dict[str, ast.expr] = {}
        for key in stmt.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                entries[key.value] = key
        return entries
    return None


def _iter_increments(
    info: ModuleInfo, attr: str = "count"
) -> Iterator[_Increment]:
    """Literal-name ``.count(...)`` (or ``.observe(...)``) write sites."""
    stack: list[str] = [info.module]

    def visit(node: ast.AST) -> Iterator[_Increment]:
        scoped = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        if scoped:
            stack.append(node.name)
        if isinstance(node, ast.Call):
            found = _as_increment(node, attr)
            if found is not None:
                yield _Increment(
                    info=info,
                    node=node,
                    name=found,
                    qualname=".".join(stack),
                )
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        if scoped:
            stack.pop()

    yield from visit(info.tree)


def _as_increment(call: ast.Call, attr: str = "count") -> str | None:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == attr):
        return None
    # ``"abc".count("a")`` and ``[..].count(x)`` are not counter writes.
    if isinstance(func.value, (ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set)):
        return None
    if not call.args:
        return None
    first = call.args[0]
    if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
        return None
    if not _COUNTER_NAME_RE.match(first.value):
        return None
    return first.value


@register
class CounterSchemaAudit(AuditRule):
    code = "RA004"
    summary = (
        "every incremented counter name is registered in COUNTER_SCHEMA "
        "and every registered counter is incremented somewhere"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        schema: dict[str, ast.expr] = {}
        schema_info: ModuleInfo | None = None
        increments: list[_Increment] = []
        for info in graph.project.modules:
            entries = _schema_entries(info)
            if entries is not None and schema_info is None:
                schema, schema_info = entries, info
            increments.extend(_iter_increments(info))

        if not increments:
            return
        if schema_info is None:
            first = increments[0]
            yield self.finding(
                first.info,
                first.node,
                f"counter {first.name!r} is incremented but the audited "
                f"tree defines no {SCHEMA_BINDING} registry "
                "(src/repro/obs/schema.py)",
                anchor="missing-schema",
            )
            return

        incremented: set[str] = set()
        for inc in increments:
            incremented.add(inc.name)
            if inc.name not in schema:
                yield self.finding(
                    inc.info,
                    inc.node,
                    f"counter {inc.name!r} is incremented but not "
                    f"registered in {SCHEMA_BINDING}",
                    anchor=inc.name,
                    trace=(
                        f"{inc.qualname} "
                        f"({inc.info.display_path}:{inc.node.lineno})",
                    ),
                )
        for name in sorted(set(schema) - incremented):
            yield self.finding(
                schema_info,
                schema[name],
                f"counter {name!r} is registered in {SCHEMA_BINDING} but "
                "never incremented in the audited tree",
                anchor=name,
            )
