"""RA003 — exception-contract audit.

``StreamReadError`` is the retry layer's *give-up* signal: raised by
``RetryPolicy.call`` after exhausting its budget, it means the data is
unreadable and the run must stop with a located error. The contract has
three clauses, each checked statically over the whole call graph:

* **hierarchy** — ``StreamReadError`` must never (transitively) subclass
  ``OSError``/``IOError``: the moment it does, every generic
  ``except OSError`` between the stream layer and the caller silently
  converts "retries exhausted" into "transient error, carry on";
* **no wrapping** — an ``except OSError`` (or ``IOError`` /
  ``EnvironmentError`` / a scanned subclass of those) handler whose try
  body can reach the retry layer (a ``*retry*.call(...)`` site or a
  ``raise StreamReadError``) is flagged: even with the hierarchy intact,
  such a handler shows the code path treats exhaustion territory as
  retryable I/O;
* **re-raise** — an ``except StreamReadError`` handler that contains no
  ``raise`` swallows exhaustion and is flagged.

Reachability for the wrapping clause follows resolved calls from the
try body transitively (with the "why" trace in the diagnostic).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import (
    CallGraph,
    CallTarget,
    FuncNode,
    attr_chain,
)

__all__ = ["ExceptionContractAudit"]

#: The give-up exception the contract is about.
GIVE_UP = "StreamReadError"

#: The OSError family that generic I/O handlers catch.
OS_FAMILY = frozenset({"OSError", "IOError", "EnvironmentError"})


def _handler_type_names(handler: ast.ExceptHandler) -> list[str]:
    """Trailing identifiers of the exception types a handler catches."""
    node = handler.type
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names: list[str] = []
    for expr in exprs:
        chain = attr_chain(expr)
        if chain:
            names.append(chain[-1])
    return names


def _raises_give_up(node: ast.AST) -> ast.Raise | None:
    """First ``raise StreamReadError...`` statement under ``node``."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Raise) or sub.exc is None:
            continue
        exc = sub.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        chain = attr_chain(target)
        if chain and chain[-1] == GIVE_UP:
            return sub
    return None


def _retry_call_site(node: ast.AST) -> ast.Call | None:
    """First ``<something retry-ish>.call(...)`` site under ``node``."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        chain = attr_chain(sub.func)
        if (
            chain
            and chain[-1] == "call"
            and any("retry" in part.lower() for part in chain[:-1])
        ):
            return sub
    return None


@register
class ExceptionContractAudit(AuditRule):
    code = "RA003"
    summary = (
        "StreamReadError stays outside the OSError hierarchy, is never "
        "swallowed, and except-OSError handlers cannot wrap the retry layer"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        yield from self._check_hierarchy(graph)
        catchers = self._os_subclasses(graph)
        for func in graph.iter_functions():
            for stmt in ast.walk(func.node):
                if isinstance(stmt, ast.Try):
                    yield from self._check_try(graph, func, stmt, catchers)

    # ------------------------------------------------------------------

    def _check_hierarchy(self, graph: CallGraph) -> Iterator[Finding]:
        for cls in graph.classes_by_name.get(GIVE_UP, []):
            for family in OS_FAMILY:
                if graph.inherits_from(cls, family):
                    yield self.finding(
                        cls.module,
                        cls.node,
                        f"{GIVE_UP} subclasses {family}: generic "
                        "except-OSError handlers would silently catch "
                        "retry exhaustion",
                        anchor=cls.qualname,
                    )
                    break

    def _os_subclasses(self, graph: CallGraph) -> frozenset[str]:
        """OS_FAMILY plus every scanned class inheriting from it."""
        names = set(OS_FAMILY)
        for cls in graph.classes:
            if cls.name == GIVE_UP:
                continue
            if any(graph.inherits_from(cls, family) for family in OS_FAMILY):
                names.add(cls.name)
        return frozenset(names)

    # ------------------------------------------------------------------

    def _check_try(
        self,
        graph: CallGraph,
        func: FuncNode,
        stmt: ast.Try,
        catchers: frozenset[str],
    ) -> Iterator[Finding]:
        for handler in stmt.handlers:
            caught = _handler_type_names(handler)
            if GIVE_UP in caught:
                if not any(
                    isinstance(sub, ast.Raise)
                    for sub in ast.walk(
                        ast.Module(body=handler.body, type_ignores=[])
                    )
                ):
                    yield self.finding(
                        func.module,
                        handler,
                        f"except {GIVE_UP} handler in {func.qualname} "
                        "contains no raise: retry exhaustion is swallowed "
                        "instead of propagating",
                        anchor=f"{func.qualname}:swallow",
                        trace=(func.frame(handler.lineno),),
                    )
                continue
            if not any(name in catchers for name in caught):
                continue
            hit = self._find_give_up_path(graph, func, stmt)
            if hit is not None:
                message, trace = hit
                caught_name = next(n for n in caught if n in catchers)
                yield self.finding(
                    func.module,
                    handler,
                    f"except {caught_name} handler in {func.qualname} wraps "
                    f"a code path that {message}: the OSError family must "
                    f"not shadow {GIVE_UP} territory",
                    anchor=f"{func.qualname}:wrap",
                    trace=trace,
                )

    def _find_give_up_path(
        self, graph: CallGraph, func: FuncNode, stmt: ast.Try
    ) -> tuple[str, tuple[str, ...]] | None:
        """Does the try body (transitively) reach StreamReadError ground?"""
        body = ast.Module(body=stmt.body, type_ignores=[])
        raised = _raises_give_up(body)
        if raised is not None:
            return (
                f"raises {GIVE_UP} (line {raised.lineno})",
                (func.frame(raised.lineno),),
            )
        retry = _retry_call_site(body)
        if retry is not None:
            return (
                f"enters the retry layer (line {retry.lineno})",
                (func.frame(retry.lineno),),
            )
        roots: list[tuple[CallTarget, tuple[str, ...]]] = []
        env = graph.local_types(func, func.cls)
        for call in ast.walk(body):
            if isinstance(call, ast.Call):
                for callee in graph.resolve_call(call, func, func.cls, env):
                    roots.append((callee, (func.frame(call.lineno),)))
        for target, trace in graph.reachable(roots).values():
            raised = _raises_give_up(target.func.node)
            if raised is not None:
                return (
                    f"raises {GIVE_UP} in {target.func.qualname}",
                    trace + (target.func.frame(raised.lineno),),
                )
            retry = _retry_call_site(target.func.node)
            if retry is not None:
                return (
                    f"enters the retry layer in {target.func.qualname}",
                    trace + (target.func.frame(retry.lineno),),
                )
        return None
