"""RA009 — shared-state race audit.

``repro.parallel`` promises that worker count is unobservable: the
thread backend runs tasks concurrently in one address space, the
process backend runs them in copies. Either way a worker that *writes*
state the coordinator (or a sibling task) can see breaks the promise —
as a data race under threads, as silently-dropped mutation under
processes. This rule computes a per-function *effect summary* for every
function reachable from a dispatch site (worker discovery shared with
RA002/RA007 via :func:`~tools.repro_audit.rules_parallel.worker_roots`)
and flags coordinator-visible write effects:

* ``global``/``nonlocal`` rebinding — the write lands in module or
  closure scope, which workers share (threads) or shadow (processes);
* mutation of a *module-level* container (``CACHE.append(...)``,
  ``REGISTRY[key] = ...`` on a name assigned at module scope);
* mutation through a *mutable default argument* — one shared object
  per process, invisible partial state across tasks;
* attribute writes on a *shipped object* (a parameter of the worker) —
  mutated copies die with the process backend's worker, unless the
  parameter is annotated with a class declaring an RA007 merge-style
  combiner (``merge``/``merge_with``/``combine``), the sanctioned
  partial-state channel;
* element writes into a shared read-only view — a local obtained from
  ``resolve_chunk(...)`` / ``SharedArray.open(...)`` maps the
  coordinator's segment ``mode="r"``; writing through it faults at
  runtime and is flagged here statically.

``self``/``cls`` attribute mutation is deliberately *not* flagged: that
is per-shard partial state, owned by RA007's combiner contract. The
``repro.parallel`` harness itself is exempt (it installs worker-local
context on purpose) but is still traversed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_audit.core import AuditRule, Finding, register
from tools.repro_audit.graph import (
    CallGraph,
    CallTarget,
    ClassNode,
    FuncNode,
    attr_chain,
)
from tools.repro_audit.rules_merge import COMBINER_NAMES
from tools.repro_audit.rules_parallel import (
    CONTEXT_INSTALLERS,
    HARNESS_PREFIX,
    worker_roots,
)

__all__ = ["SharedStateRaceAudit", "MUTATOR_METHODS"]

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "insert",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
    }
)

#: Call tails yielding a read-only shared-memory view of a chunk.
_SHARED_VIEW_TAILS = frozenset({"resolve_chunk"})


def _shallow_walk(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs/lambdas."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _param_names(node: ast.FunctionDef) -> set[str]:
    args = node.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _local_bindings(node: ast.FunctionDef) -> set[str]:
    """Names bound inside the function body (assignments, loops, withs)."""
    bound: set[str] = set(_param_names(node))
    for sub in _shallow_walk(node):
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            targets = [sub.target]
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            targets = [sub.target]
        elif isinstance(sub, ast.comprehension):
            targets = [sub.target]
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            targets = [
                item.optional_vars
                for item in sub.items
                if item.optional_vars is not None
            ]
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
    return bound


def _mutable_default(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(expr, ast.Call):
        chain = attr_chain(expr.func)
        return bool(chain) and chain[-1] in (
            "list",
            "dict",
            "set",
            "defaultdict",
            "deque",
            "bytearray",
        )
    return False


def _defaulted_params(node: ast.FunctionDef) -> dict[str, ast.expr]:
    """Parameter name -> default expression, for mutable defaults only."""
    args = node.args
    positional = args.posonlyargs + args.args
    out: dict[str, ast.expr] = {}
    for arg, default in zip(positional[-len(args.defaults):], args.defaults):
        if _mutable_default(default):
            out[arg.arg] = default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None and _mutable_default(default):
            out[arg.arg] = default
    return out


def _write_targets(stmt: ast.AST) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        return [stmt.target]
    return []


@register
class SharedStateRaceAudit(AuditRule):
    code = "RA009"
    summary = (
        "parallel workers never write coordinator-visible state (globals, "
        "closures, mutable defaults, shipped objects, shared read-only "
        "views) outside a declared merge contract"
    )

    def check(self, graph: CallGraph) -> Iterator[Finding]:
        roots = [
            (target, trace) for _, target, trace in worker_roots(graph)
        ]
        if not roots:
            return
        reached = graph.reachable(
            roots, prune=lambda t: t.func.name in CONTEXT_INSTALLERS
        )
        seen: set[tuple[str, int, str]] = set()
        for target, trace in reached.values():
            func = target.func
            if func.module.module.startswith(HARNESS_PREFIX):
                continue
            for finding in self._effects(graph, target, trace):
                key = (finding.path, finding.line, finding.anchor)
                if key not in seen:
                    seen.add(key)
                    yield finding

    # ------------------------------------------------------------------
    # Per-function effect summary

    def _effects(
        self, graph: CallGraph, target: CallTarget, trace: tuple[str, ...]
    ) -> Iterator[Finding]:
        func = target.func
        yield from self._scope_rebindings(func, trace)
        yield from self._module_container_mutations(graph, func, trace)
        yield from self._mutable_default_mutations(func, trace)
        yield from self._shipped_object_writes(graph, func, trace)
        yield from self._shared_view_writes(func, trace)

    def _scope_rebindings(
        self, func: FuncNode, trace: tuple[str, ...]
    ) -> Iterator[Finding]:
        declared: dict[str, ast.stmt] = {}
        for node in _shallow_walk(func.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                for name in node.names:
                    declared.setdefault(name, node)
        if not declared:
            return
        for node in _shallow_walk(func.node):
            for target_expr in _write_targets(node):
                for leaf in ast.walk(target_expr):
                    if isinstance(leaf, ast.Name) and leaf.id in declared:
                        decl = declared.pop(leaf.id)
                        kind = (
                            "module-global"
                            if isinstance(decl, ast.Global)
                            else "closure"
                        )
                        yield self.finding(
                            func.module,
                            node,
                            f"worker-reachable {func.qualname} writes "
                            f"{kind} state ({leaf.id}) — coordinator-"
                            "visible under the thread backend, silently "
                            "dropped under the process backend",
                            anchor=f"{func.qualname}:scope-write:{leaf.id}",
                            trace=trace + (func.frame(node.lineno),),
                        )

    def _module_container_mutations(
        self, graph: CallGraph, func: FuncNode, trace: tuple[str, ...]
    ) -> Iterator[Finding]:
        scope = graph.scope(func.module)
        local = _local_bindings(func.node)

        def module_container(name: str) -> bool:
            if name in local or name in ("self", "cls"):
                return False
            entity = scope.get(name)
            # Only names whose module-level binding is a plain assigned
            # value (a container literal / constructor) count; classes,
            # functions and imported modules are not shared mutable
            # state in the sense of this rule.
            return isinstance(entity, ast.expr)

        for node in _shallow_walk(func.node):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if (
                    chain
                    and len(chain) == 2
                    and chain[1] in MUTATOR_METHODS
                    and module_container(chain[0])
                ):
                    yield self.finding(
                        func.module,
                        node,
                        f"worker-reachable {func.qualname} mutates the "
                        f"module-level container {chain[0]} "
                        f"(.{chain[1]}()) — a data race under the thread "
                        "backend, dropped state under the process backend",
                        anchor=f"{func.qualname}:module-mutation:{chain[0]}",
                        trace=trace + (func.frame(node.lineno),),
                    )
            for target_expr in _write_targets(node):
                if (
                    isinstance(target_expr, ast.Subscript)
                    and isinstance(target_expr.value, ast.Name)
                    and module_container(target_expr.value.id)
                ):
                    name = target_expr.value.id
                    yield self.finding(
                        func.module,
                        node,
                        f"worker-reachable {func.qualname} writes into the "
                        f"module-level container {name}[...] — a data "
                        "race under the thread backend, dropped state "
                        "under the process backend",
                        anchor=f"{func.qualname}:module-mutation:{name}",
                        trace=trace + (func.frame(node.lineno),),
                    )

    def _mutable_default_mutations(
        self, func: FuncNode, trace: tuple[str, ...]
    ) -> Iterator[Finding]:
        defaulted = _defaulted_params(func.node)
        if not defaulted:
            return
        flagged: set[str] = set()

        def flag(name: str, node: ast.AST) -> Finding:
            flagged.add(name)
            return self.finding(
                func.module,
                node,
                f"worker-reachable {func.qualname} mutates its mutable "
                f"default argument {name} — one shared object per "
                "process, so tasks observe each other's writes",
                anchor=f"{func.qualname}:default-mutation:{name}",
                trace=trace + (func.frame(getattr(node, "lineno", 1)),),
            )

        for node in _shallow_walk(func.node):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if (
                    chain
                    and len(chain) == 2
                    and chain[1] in MUTATOR_METHODS
                    and chain[0] in defaulted
                    and chain[0] not in flagged
                ):
                    yield flag(chain[0], node)
            for target_expr in _write_targets(node):
                if (
                    isinstance(target_expr, ast.Subscript)
                    and isinstance(target_expr.value, ast.Name)
                    and target_expr.value.id in defaulted
                    and target_expr.value.id not in flagged
                ):
                    yield flag(target_expr.value.id, node)

    def _shipped_object_writes(
        self, graph: CallGraph, func: FuncNode, trace: tuple[str, ...]
    ) -> Iterator[Finding]:
        if func.name in COMBINER_NAMES:
            # A combiner folding its argument into self is the merge
            # contract itself; RA007 audits that channel.
            return
        params = _param_names(func.node) - {"self", "cls"}
        if not params:
            return
        exempt = self._combiner_typed_params(graph, func)
        for node in _shallow_walk(func.node):
            for target_expr in _write_targets(node):
                if (
                    isinstance(target_expr, ast.Attribute)
                    and isinstance(target_expr.value, ast.Name)
                    and target_expr.value.id in params
                    and target_expr.value.id not in exempt
                ):
                    name = target_expr.value.id
                    yield self.finding(
                        func.module,
                        node,
                        f"worker-reachable {func.qualname} writes "
                        f"attribute {name}.{target_expr.attr} on a "
                        "shipped object — the mutation dies with the "
                        "process-backend worker (annotate the parameter "
                        "with a merge-contract class or return the "
                        "partial state instead)",
                        anchor=(
                            f"{func.qualname}:shipped-write:"
                            f"{name}.{target_expr.attr}"
                        ),
                        trace=trace + (func.frame(node.lineno),),
                    )

    def _combiner_typed_params(
        self, graph: CallGraph, func: FuncNode
    ) -> set[str]:
        """Parameters annotated with a class declaring a combiner."""
        scope = graph.scope(func.module)
        exempt: set[str] = set()
        args = func.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            ann = arg.annotation
            if ann is None:
                continue
            name: str | None = None
            if isinstance(ann, ast.Name):
                name = ann.id
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                name = ann.value.strip().strip('"').strip("'")
            if name is None:
                continue
            entity = scope.get(name)
            if isinstance(entity, ClassNode) and any(
                combiner in node.own_methods
                for node in graph.mro(entity)
                for combiner in COMBINER_NAMES
            ):
                exempt.add(arg.arg)
        return exempt

    def _shared_view_writes(
        self, func: FuncNode, trace: tuple[str, ...]
    ) -> Iterator[Finding]:
        views: set[str] = set()
        for node in _shallow_walk(func.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                chain = attr_chain(node.value.func)
                if chain and (
                    chain[-1] in _SHARED_VIEW_TAILS
                    or (len(chain) >= 2 and chain[-2:] == ["SharedArray", "open"])
                ):
                    for target_expr in node.targets:
                        if isinstance(target_expr, ast.Name):
                            views.add(target_expr.id)
        if not views:
            return
        for node in _shallow_walk(func.node):
            for target_expr in _write_targets(node):
                if (
                    isinstance(target_expr, ast.Subscript)
                    and isinstance(target_expr.value, ast.Name)
                    and target_expr.value.id in views
                ):
                    name = target_expr.value.id
                    yield self.finding(
                        func.module,
                        node,
                        f"worker-reachable {func.qualname} writes into "
                        f"{name}[...], a read-only shared-memory view "
                        "(resolve_chunk / SharedArray.open maps the "
                        "coordinator's segment mode='r')",
                        anchor=f"{func.qualname}:shared-view-write:{name}",
                        trace=trace + (func.frame(node.lineno),),
                    )
