"""Regenerate the README metric tables from ``repro.obs`` registries.

The registries in ``src/repro/obs/schema.py`` are the single source of
truth for the observability vocabulary — ``COUNTER_SCHEMA`` (see RA004
in ``tools/repro_audit``) and ``HISTOGRAM_SCHEMA`` (RA008). This script
rewrites the markdown tables between the
``<!-- counter-table:begin -->`` / ``<!-- counter-table:end -->`` and
``<!-- histogram-table:begin -->`` / ``<!-- histogram-table:end -->``
markers in README.md so docs can never drift from the code:

    python tools/gen_counter_docs.py           # rewrite in place
    python tools/gen_counter_docs.py --check   # CI: exit 1 on drift
"""

# CLI entry point: stdout IS the user interface here.
# repro-lint: disable=RL007

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

__all__ = ["main", "render_histogram_table", "render_table"]

REPO_ROOT = Path(__file__).resolve().parent.parent
BEGIN = "<!-- counter-table:begin -->"
END = "<!-- counter-table:end -->"
HIST_BEGIN = "<!-- histogram-table:begin -->"
HIST_END = "<!-- histogram-table:end -->"


def _region(begin: str, end: str) -> re.Pattern[str]:
    return re.compile(
        re.escape(begin) + r".*?" + re.escape(end), flags=re.DOTALL
    )


_REGION = _region(BEGIN, END)
_HIST_REGION = _region(HIST_BEGIN, HIST_END)


def _import_schema():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro import obs

    return obs


def render_table() -> str:
    obs = _import_schema()
    lines = [
        BEGIN,
        "| Counter | Incremented by | Meaning |",
        "| --- | --- | --- |",
    ]
    for spec in obs.COUNTER_SCHEMA.values():
        lines.append(
            f"| `{spec.name}` | {spec.incremented_by} | {spec.meaning} |"
        )
    lines.append(END)
    return "\n".join(lines)


def render_histogram_table() -> str:
    obs = _import_schema()
    lines = [
        HIST_BEGIN,
        "| Histogram | Unit | Observed by | Meaning |",
        "| --- | --- | --- | --- |",
    ]
    for spec in obs.HISTOGRAM_SCHEMA.values():
        lines.append(
            f"| `{spec.name}` | {spec.unit} | {spec.observed_by} "
            f"| {spec.meaning} |"
        )
    lines.append(HIST_END)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the README tables match the registries; do not write",
    )
    parser.add_argument(
        "--readme",
        type=Path,
        default=REPO_ROOT / "README.md",
        help="markdown file holding the marker-delimited tables",
    )
    args = parser.parse_args(argv)

    source = args.readme.read_text(encoding="utf-8")
    regions = (
        (BEGIN, END, _REGION, render_table),
        (HIST_BEGIN, HIST_END, _HIST_REGION, render_histogram_table),
    )
    updated = source
    for begin, end, region, render in regions:
        if begin not in source or end not in source:
            print(
                f"gen_counter_docs: {args.readme} has no {begin} / {end} "
                "markers",
                file=sys.stderr,
            )
            return 2
        updated = region.sub(lambda _m: render(), updated, count=1)

    if updated == source:
        print(f"gen_counter_docs: {args.readme} is up to date")
        return 0
    if args.check:
        print(
            f"gen_counter_docs: {args.readme} metric tables are stale; "
            "run `python tools/gen_counter_docs.py`",
            file=sys.stderr,
        )
        return 1
    args.readme.write_text(updated, encoding="utf-8")
    print(f"gen_counter_docs: rewrote metric tables in {args.readme}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
