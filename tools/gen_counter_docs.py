"""Regenerate the README counter table from ``repro.obs.COUNTER_SCHEMA``.

The registry in ``src/repro/obs/schema.py`` is the single source of
truth for the observability counter vocabulary (see RA004 in
``tools/repro_audit``). This script rewrites the markdown table between
the ``<!-- counter-table:begin -->`` / ``<!-- counter-table:end -->``
markers in README.md so docs can never drift from the code:

    python tools/gen_counter_docs.py           # rewrite in place
    python tools/gen_counter_docs.py --check   # CI: exit 1 on drift
"""

# CLI entry point: stdout IS the user interface here.
# repro-lint: disable=RL007

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

__all__ = ["main", "render_table"]

REPO_ROOT = Path(__file__).resolve().parent.parent
BEGIN = "<!-- counter-table:begin -->"
END = "<!-- counter-table:end -->"
_REGION = re.compile(
    re.escape(BEGIN) + r".*?" + re.escape(END), flags=re.DOTALL
)


def render_table() -> str:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs import COUNTER_SCHEMA

    lines = [
        BEGIN,
        "| Counter | Incremented by | Meaning |",
        "| --- | --- | --- |",
    ]
    for spec in COUNTER_SCHEMA.values():
        lines.append(
            f"| `{spec.name}` | {spec.incremented_by} | {spec.meaning} |"
        )
    lines.append(END)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the README table matches the registry; do not write",
    )
    parser.add_argument(
        "--readme",
        type=Path,
        default=REPO_ROOT / "README.md",
        help="markdown file holding the marker-delimited table",
    )
    args = parser.parse_args(argv)

    source = args.readme.read_text(encoding="utf-8")
    if BEGIN not in source or END not in source:
        print(
            f"gen_counter_docs: {args.readme} has no {BEGIN} / {END} "
            "markers",
            file=sys.stderr,
        )
        return 2

    updated = _REGION.sub(lambda _m: render_table(), source, count=1)
    if updated == source:
        print(f"gen_counter_docs: {args.readme} is up to date")
        return 0
    if args.check:
        print(
            f"gen_counter_docs: {args.readme} counter table is stale; "
            "run `python tools/gen_counter_docs.py`",
            file=sys.stderr,
        )
        return 1
    args.readme.write_text(updated, encoding="utf-8")
    print(f"gen_counter_docs: rewrote counter table in {args.readme}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
