"""Shared AST toolkit for the repo's static-analysis passes.

Both in-house analysers — ``tools/repro_lint`` (per-file rule lint) and
``tools/repro_audit`` (whole-program call-graph audit) — need the same
substrate: walk paths for Python files, parse them without importing
anything, name each file as a dotted module, collect per-file
suppression comments, and address sibling modules through a light
project model. This module is that substrate; the tools layer their
rule machinery on top.

The whole kit is import-free with respect to the analysed code: files
are only ever read and parsed, so broken or dependency-missing trees
can still be analysed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "LIBRARY_EXCLUDED_PARTS",
    "ModuleInfo",
    "ProjectModel",
    "SyntaxIssue",
    "bindings_of",
    "build_model",
    "collect_python_files",
    "display_path",
    "module_name",
    "parse_suppressions",
]

#: Directory names whose files are not "library code" (rules that only
#: apply to the shipped library, like RL001, skip them).
LIBRARY_EXCLUDED_PARTS = frozenset({"tests", "benchmarks", "examples"})


def _suppress_re(tool: str) -> re.Pattern:
    """Suppression-comment pattern for ``tool`` (e.g. ``repro-lint``).

    Matches ``# <tool>: disable=XX001,XX004`` where the rule prefix is
    any run of capital letters.
    """
    return re.compile(
        rf"#\s*{re.escape(tool)}\s*:\s*disable\s*=\s*"
        r"(?P<codes>[A-Z]+\d{3}(?:\s*,\s*[A-Z]+\d{3})*)"
    )


def parse_suppressions(source: str, tool: str = "repro-lint") -> frozenset[str]:
    """Rule codes disabled for a file via ``# <tool>: disable=...``."""
    codes: set[str] = set()
    for match in _suppress_re(tool).finditer(source):
        codes.update(c.strip() for c in match.group("codes").split(","))
    return frozenset(codes)


@dataclass
class ModuleInfo:
    """A parsed source file plus the metadata rules need.

    Attributes
    ----------
    path:
        Filesystem path of the file.
    display_path:
        Path string used in reports (relative when possible).
    module:
        Dotted module name (``repro.density.kde``) when the file sits in
        a package; the bare stem otherwise.
    tree:
        Parsed :class:`ast.Module`.
    source:
        Raw file contents.
    suppressed:
        Rule codes disabled for this file.
    is_library:
        False for files under ``tests/``, ``benchmarks/`` or
        ``examples/`` directories.
    """

    path: Path
    display_path: str
    module: str
    tree: ast.Module
    source: str
    suppressed: frozenset[str] = frozenset()
    is_library: bool = True

    @property
    def is_init(self) -> bool:
        return self.path.name == "__init__.py"

    @property
    def is_main(self) -> bool:
        return self.path.name == "__main__.py"

    def top_level_bindings(self) -> set[str]:
        """Names bound at module top level (defs, classes, imports, assigns)."""
        bound: set[str] = set()
        for node in self.tree.body:
            bound.update(bindings_of(node))
        return bound


#: Nodes that open a new scope — walruses inside them bind there, not
#: in the enclosing module namespace.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _target_names(target: ast.expr) -> Iterator[str]:
    """Names one assignment target *binds*. Attribute and subscript
    stores (``self.x += 1``, ``d[k] = v``) mutate an existing object
    rather than bind a name, so they yield nothing."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


def _walrus_names(node: ast.AST) -> Iterator[str]:
    """Module-scope names bound by ``:=`` anywhere in a statement.

    PEP 572: a walrus inside a comprehension binds in the *containing*
    scope, so a top-level comprehension's walrus lands in the module
    namespace — the recursion therefore descends through comprehension
    nodes. Walruses inside a nested function/class/lambda bind in that
    scope and are skipped, except for the parts of such a definition
    that are evaluated in the enclosing scope (decorators, parameter
    defaults, base-class expressions).
    """
    if isinstance(node, _SCOPE_NODES):
        outer: list[ast.AST] = list(getattr(node, "decorator_list", []))
        args = getattr(node, "args", None)
        if args is not None:
            outer += list(args.defaults)
            outer += [d for d in args.kw_defaults if d is not None]
        if isinstance(node, ast.ClassDef):
            outer += list(node.bases)
            outer += [kw.value for kw in node.keywords]
        for sub in outer:
            yield from _walrus_names(sub)
        return
    if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
        yield node.target.id
    for child in ast.iter_child_nodes(node):
        yield from _walrus_names(child)


def bindings_of(node: ast.stmt) -> Iterator[str]:
    """Names a single top-level statement binds in the module namespace."""
    yield from _walrus_names(node)
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield node.name
    elif isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.asname or alias.name.split(".")[0]
    elif isinstance(node, ast.ImportFrom):
        for alias in node.names:
            if alias.name == "*":
                continue
            yield alias.asname or alias.name
    elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            yield from _target_names(target)
    elif isinstance(node, (ast.If, ast.Try)):
        # Conditional definitions (version gates, optional imports).
        bodies = [node.body, getattr(node, "orelse", [])]
        for handler in getattr(node, "handlers", []):
            bodies.append(handler.body)
        bodies.append(getattr(node, "finalbody", []))
        for body in bodies:
            for sub in body:
                yield from bindings_of(sub)


class ProjectModel:
    """All parsed modules of one analysis run, addressable by dotted name.

    Cross-module rules (re-export resolution, base-class conformance,
    call-graph construction) use this to look at sibling files without
    importing anything.
    """

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.modules: list[ModuleInfo] = list(modules)
        self.by_name: dict[str, ModuleInfo] = {}
        for info in self.modules:
            self.by_name.setdefault(info.module, info)

    def resolve_module(self, dotted: str) -> ModuleInfo | None:
        """The scanned module with dotted name ``dotted``, if any."""
        return self.by_name.get(dotted)

    def has_submodule(self, package: str, name: str) -> bool:
        """Whether ``package.name`` is a scanned module or package."""
        dotted = f"{package}.{name}"
        return dotted in self.by_name or any(
            m.startswith(dotted + ".") for m in self.by_name
        )

    def class_def(self, module: str, name: str) -> tuple[ModuleInfo, ast.ClassDef] | None:
        """Find class ``name`` in ``module``, following its imports once.

        Returns the (module, ClassDef) pair where the class body actually
        lives, chasing ``from x import name`` links through the project.
        """
        seen: set[tuple[str, str]] = set()
        current = module
        target = name
        while (current, target) not in seen:
            seen.add((current, target))
            info = self.by_name.get(current)
            if info is None:
                return None
            for node in info.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == target:
                    return info, node
            # Not defined here: is it imported from a sibling?
            for node in info.tree.body:
                if isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        if (alias.asname or alias.name) == target:
                            current, target = node.module, alias.name
                            break
                    else:
                        continue
                    break
            else:
                return None
        return None


def collect_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def module_name(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` packages."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def display_path(path: Path) -> str:
    """Path string for reports: relative to the cwd when possible."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


@dataclass(frozen=True)
class SyntaxIssue:
    """A file that failed to parse (reported instead of aborting)."""

    path: str
    line: int
    col: int
    message: str


def build_model(
    files: Iterable[Path], tool: str = "repro-lint"
) -> tuple[ProjectModel, list[SyntaxIssue]]:
    """Parse ``files`` into a :class:`ProjectModel`.

    Syntax errors become :class:`SyntaxIssue` records rather than
    aborting the run; ``tool`` selects which suppression comments
    (``# <tool>: disable=...``) are honoured.
    """
    infos: list[ModuleInfo] = []
    errors: list[SyntaxIssue] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                SyntaxIssue(
                    path=display_path(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        infos.append(
            ModuleInfo(
                path=path,
                display_path=display_path(path),
                module=module_name(path),
                tree=tree,
                source=source,
                suppressed=parse_suppressions(source, tool),
                is_library=not (
                    LIBRARY_EXCLUDED_PARTS & set(path.resolve().parts)
                ),
            )
        )
    return ProjectModel(infos), errors
