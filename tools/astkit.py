"""Shared AST toolkit for the repo's static-analysis passes.

Both in-house analysers — ``tools/repro_lint`` (per-file rule lint) and
``tools/repro_audit`` (whole-program call-graph audit) — need the same
substrate: walk paths for Python files, parse them without importing
anything, name each file as a dotted module, collect per-file
suppression comments, and address sibling modules through a light
project model. This module is that substrate; the tools layer their
rule machinery on top.

The whole kit is import-free with respect to the analysed code: files
are only ever read and parsed, so broken or dependency-missing trees
can still be analysed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "LIBRARY_EXCLUDED_PARTS",
    "BasicBlock",
    "ControlFlowGraph",
    "ModuleInfo",
    "ProjectModel",
    "SyntaxIssue",
    "bindings_of",
    "build_cfg",
    "build_model",
    "collect_python_files",
    "display_path",
    "module_name",
    "parse_suppressions",
]

#: Directory names whose files are not "library code" (rules that only
#: apply to the shipped library, like RL001, skip them).
LIBRARY_EXCLUDED_PARTS = frozenset({"tests", "benchmarks", "examples"})


def _suppress_re(tool: str) -> re.Pattern:
    """Suppression-comment pattern for ``tool`` (e.g. ``repro-lint``).

    Matches ``# <tool>: disable=XX001,XX004`` where the rule prefix is
    any run of capital letters.
    """
    return re.compile(
        rf"#\s*{re.escape(tool)}\s*:\s*disable\s*=\s*"
        r"(?P<codes>[A-Z]+\d{3}(?:\s*,\s*[A-Z]+\d{3})*)"
    )


def parse_suppressions(source: str, tool: str = "repro-lint") -> frozenset[str]:
    """Rule codes disabled for a file via ``# <tool>: disable=...``."""
    codes: set[str] = set()
    for match in _suppress_re(tool).finditer(source):
        codes.update(c.strip() for c in match.group("codes").split(","))
    return frozenset(codes)


@dataclass
class ModuleInfo:
    """A parsed source file plus the metadata rules need.

    Attributes
    ----------
    path:
        Filesystem path of the file.
    display_path:
        Path string used in reports (relative when possible).
    module:
        Dotted module name (``repro.density.kde``) when the file sits in
        a package; the bare stem otherwise.
    tree:
        Parsed :class:`ast.Module`.
    source:
        Raw file contents.
    suppressed:
        Rule codes disabled for this file.
    is_library:
        False for files under ``tests/``, ``benchmarks/`` or
        ``examples/`` directories.
    """

    path: Path
    display_path: str
    module: str
    tree: ast.Module
    source: str
    suppressed: frozenset[str] = frozenset()
    is_library: bool = True

    @property
    def is_init(self) -> bool:
        return self.path.name == "__init__.py"

    @property
    def is_main(self) -> bool:
        return self.path.name == "__main__.py"

    def top_level_bindings(self) -> set[str]:
        """Names bound at module top level (defs, classes, imports, assigns)."""
        bound: set[str] = set()
        for node in self.tree.body:
            bound.update(bindings_of(node))
        return bound


#: Nodes that open a new scope — walruses inside them bind there, not
#: in the enclosing module namespace.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _target_names(target: ast.expr) -> Iterator[str]:
    """Names one assignment target *binds*. Attribute and subscript
    stores (``self.x += 1``, ``d[k] = v``) mutate an existing object
    rather than bind a name, so they yield nothing."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


def _walrus_names(node: ast.AST) -> Iterator[str]:
    """Module-scope names bound by ``:=`` anywhere in a statement.

    PEP 572: a walrus inside a comprehension binds in the *containing*
    scope, so a top-level comprehension's walrus lands in the module
    namespace — the recursion therefore descends through comprehension
    nodes. Walruses inside a nested function/class/lambda bind in that
    scope and are skipped, except for the parts of such a definition
    that are evaluated in the enclosing scope (decorators, parameter
    defaults, base-class expressions).
    """
    if isinstance(node, _SCOPE_NODES):
        outer: list[ast.AST] = list(getattr(node, "decorator_list", []))
        args = getattr(node, "args", None)
        if args is not None:
            outer += list(args.defaults)
            outer += [d for d in args.kw_defaults if d is not None]
        if isinstance(node, ast.ClassDef):
            outer += list(node.bases)
            outer += [kw.value for kw in node.keywords]
        for sub in outer:
            yield from _walrus_names(sub)
        return
    if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
        yield node.target.id
    for child in ast.iter_child_nodes(node):
        yield from _walrus_names(child)


def bindings_of(node: ast.stmt) -> Iterator[str]:
    """Names a single top-level statement binds in the module namespace."""
    yield from _walrus_names(node)
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield node.name
    elif isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.asname or alias.name.split(".")[0]
    elif isinstance(node, ast.ImportFrom):
        for alias in node.names:
            if alias.name == "*":
                continue
            yield alias.asname or alias.name
    elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            yield from _target_names(target)
    elif isinstance(node, (ast.If, ast.Try)):
        # Conditional definitions (version gates, optional imports).
        bodies = [node.body, getattr(node, "orelse", [])]
        for handler in getattr(node, "handlers", []):
            bodies.append(handler.body)
        bodies.append(getattr(node, "finalbody", []))
        for body in bodies:
            for sub in body:
                yield from bindings_of(sub)


class ProjectModel:
    """All parsed modules of one analysis run, addressable by dotted name.

    Cross-module rules (re-export resolution, base-class conformance,
    call-graph construction) use this to look at sibling files without
    importing anything.
    """

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.modules: list[ModuleInfo] = list(modules)
        self.by_name: dict[str, ModuleInfo] = {}
        for info in self.modules:
            self.by_name.setdefault(info.module, info)

    def resolve_module(self, dotted: str) -> ModuleInfo | None:
        """The scanned module with dotted name ``dotted``, if any."""
        return self.by_name.get(dotted)

    def has_submodule(self, package: str, name: str) -> bool:
        """Whether ``package.name`` is a scanned module or package."""
        dotted = f"{package}.{name}"
        return dotted in self.by_name or any(
            m.startswith(dotted + ".") for m in self.by_name
        )

    def class_def(self, module: str, name: str) -> tuple[ModuleInfo, ast.ClassDef] | None:
        """Find class ``name`` in ``module``, following its imports once.

        Returns the (module, ClassDef) pair where the class body actually
        lives, chasing ``from x import name`` links through the project.
        """
        seen: set[tuple[str, str]] = set()
        current = module
        target = name
        while (current, target) not in seen:
            seen.add((current, target))
            info = self.by_name.get(current)
            if info is None:
                return None
            for node in info.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == target:
                    return info, node
            # Not defined here: is it imported from a sibling?
            for node in info.tree.body:
                if isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        if (alias.asname or alias.name) == target:
                            current, target = node.module, alias.name
                            break
                    else:
                        continue
                    break
            else:
                return None
        return None


def collect_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def module_name(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` packages."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def display_path(path: Path) -> str:
    """Path string for reports: relative to the cwd when possible."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


# ---------------------------------------------------------------------------
# Per-function control-flow graphs
#
# Flow-sensitive audit rules (must-release lifecycles, dominance-based
# ordering proofs) need more than the call graph: they need to know, for
# one function body, which statements can follow which — including the
# paths an exception takes. ``build_cfg`` lowers a function body into
# basic blocks with two edge kinds:
#
# * *normal* edges — fallthrough, branches, loop back/exit edges;
# * *exception* edges — from any block whose last statement may raise
#   (contains a call, an ``assert``, or an explicit ``raise``) to the
#   innermost enclosing handler entries, or to the synthetic exit block
#   when the exception would escape the function.
#
# Deliberate approximations (documented in DESIGN.md §15):
#
# * A statement "may raise" iff it contains a call / assert / raise /
#   await; attribute access, subscripts and arithmetic are assumed
#   non-raising. Every may-raise statement terminates its block, so an
#   exception edge always describes raising *at* the block's final
#   statement — queries can therefore distinguish "raised at the
#   acquire" from "raised after it".
# * ``except`` clauses are not type-matched: an exception edge goes to
#   every handler entry, and additionally escapes past the handlers
#   unless some clause is a catch-all (bare ``except``, ``except
#   BaseException``/``Exception``).
# * A ``finally`` body is built once; its exits conservatively edge to
#   the normal continuation, the enclosing exception target and the
#   function exit (covering completion, propagation and return paths).
# * ``with`` bodies propagate exceptions to the enclosing target —
#   ``__exit__`` is treated as transparent.
# * ``return``/``break``/``continue`` route through the innermost
#   enclosing ``finally`` when one is active.
# * Nested ``def``/``lambda`` bodies are opaque single statements; their
#   statements belong to their own CFG, never the enclosing one.


@dataclass
class BasicBlock:
    """A straight-line run of statements with typed successor edges.

    ``succs`` are normal control-flow successors; ``exc_succs`` are the
    blocks an exception raised at this block's final statement can
    reach. A block holds at most one may-raise statement, always last.
    """

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)
    exc_succs: set[int] = field(default_factory=set)


@dataclass
class _CfgContext:
    """Builder state: where exceptions, breaks and continues go.

    ``finally_entry`` intercepts ``return`` (any enclosing ``finally``
    runs before the function exits); ``loop_finally`` intercepts
    ``break``/``continue`` and is only set when the ``try`` sits
    *inside* the loop — breaking out of a loop that encloses no ``try``
    never runs a ``finally`` outside it.
    """

    exc_targets: tuple[int, ...]
    loop_header: int | None = None
    loop_exit: int | None = None
    finally_entry: int | None = None
    loop_finally: int | None = None


class ControlFlowGraph:
    """Basic blocks of one function body plus dominance queries.

    Block 0 is the entry; :attr:`exit_index` is a synthetic exit that
    every ``return``, escaped exception and normal completion reaches.
    Use :meth:`block_index` to map a statement to its block and
    :meth:`dominates` / :meth:`postdominates` /
    :meth:`reaches_exit_avoiding` for path queries.
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.blocks: list[BasicBlock] = []
        self._block_of: dict[int, int] = {}
        self._doms: dict[int, set[int]] | None = None
        self._postdoms: dict[int, set[int]] | None = None
        self.entry_index = self._new_block()
        self.exit_index = self._new_block()
        ctx = _CfgContext(exc_targets=(self.exit_index,))
        last = self._build_body(func.body, self.entry_index, ctx)
        if last is not None:
            self.blocks[last].succs.add(self.exit_index)

    # -- construction ------------------------------------------------------

    def _new_block(self) -> int:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _place(self, stmt: ast.stmt, block: int) -> None:
        self.blocks[block].statements.append(stmt)
        self._block_of[id(stmt)] = block

    @staticmethod
    def _walk_same_frame(root: ast.AST) -> Iterator[ast.AST]:
        """``ast.walk`` pruned at nested defs/lambdas.

        A nested def's body runs later, in its own CFG; its statements
        must not make the enclosing ``def`` statement may-raise. Only
        decorators and default expressions execute in this frame.
        """
        stack: list[ast.AST] = [root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.extend(getattr(node, "decorator_list", []))
                args = node.args
                stack.extend(d for d in args.defaults if d is not None)
                stack.extend(d for d in args.kw_defaults if d is not None)
            else:
                stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _may_raise(cls, stmt: ast.stmt) -> bool:
        return any(
            isinstance(node, (ast.Call, ast.Raise, ast.Assert, ast.Await))
            for node in cls._walk_same_frame(stmt)
        )

    @classmethod
    def _expr_may_raise(cls, expr: ast.expr | None) -> bool:
        if expr is None:
            return False
        return any(
            isinstance(node, (ast.Call, ast.Await))
            for node in cls._walk_same_frame(expr)
        )

    def _build_body(
        self, body: list[ast.stmt], current: int | None, ctx: _CfgContext
    ) -> int | None:
        """Lower ``body`` starting in block ``current``.

        Returns the block normal control falls out of, or ``None`` when
        every path through the body diverts (returns, raises, breaks).
        Statements after a divert land in a fresh unreachable block so
        they still have a :meth:`block_index`.
        """
        for stmt in body:
            if current is None:
                current = self._new_block()
            current = self._build_stmt(stmt, current, ctx)
        return current

    def _build_stmt(
        self, stmt: ast.stmt, current: int, ctx: _CfgContext
    ) -> int | None:
        if isinstance(stmt, ast.Return):
            self._place(stmt, current)
            if self._expr_may_raise(stmt.value):
                self.blocks[current].exc_succs.update(ctx.exc_targets)
            target = (
                ctx.finally_entry
                if ctx.finally_entry is not None
                else self.exit_index
            )
            self.blocks[current].succs.add(target)
            return None
        if isinstance(stmt, ast.Raise):
            self._place(stmt, current)
            self.blocks[current].exc_succs.update(ctx.exc_targets)
            return None
        if isinstance(stmt, ast.Break):
            self._place(stmt, current)
            target = (
                ctx.loop_finally
                if ctx.loop_finally is not None
                else ctx.loop_exit
            )
            self.blocks[current].succs.add(
                target if target is not None else self.exit_index
            )
            return None
        if isinstance(stmt, ast.Continue):
            self._place(stmt, current)
            target = (
                ctx.loop_finally
                if ctx.loop_finally is not None
                else ctx.loop_header
            )
            self.blocks[current].succs.add(
                target if target is not None else self.exit_index
            )
            return None
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, current, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, current, ctx)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, current, ctx)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, current, ctx)
        # Simple statement (incl. nested defs, which stay opaque).
        self._place(stmt, current)
        if self._may_raise(stmt):
            self.blocks[current].exc_succs.update(ctx.exc_targets)
            nxt = self._new_block()
            self.blocks[current].succs.add(nxt)
            return nxt
        return current

    def _header(self, stmt: ast.stmt, current: int, ctx: _CfgContext) -> int:
        """A compound statement's header gets its own block; evaluating
        the test/iterable/context expression may itself raise."""
        header = self._new_block()
        self.blocks[current].succs.add(header)
        self._place(stmt, header)
        test = getattr(stmt, "test", None) or getattr(stmt, "iter", None)
        items = getattr(stmt, "items", None)
        exprs = [test] if test is not None else []
        if items:
            exprs.extend(item.context_expr for item in items)
        if getattr(stmt, "subject", None) is not None:
            exprs.append(stmt.subject)
        if any(self._expr_may_raise(e) for e in exprs):
            self.blocks[header].exc_succs.update(ctx.exc_targets)
        return header

    def _build_if(self, stmt: ast.If, current: int, ctx: _CfgContext) -> int | None:
        header = self._header(stmt, current, ctx)
        after = self._new_block()
        body_entry = self._new_block()
        self.blocks[header].succs.add(body_entry)
        body_exit = self._build_body(stmt.body, body_entry, ctx)
        if body_exit is not None:
            self.blocks[body_exit].succs.add(after)
        if stmt.orelse:
            else_entry = self._new_block()
            self.blocks[header].succs.add(else_entry)
            else_exit = self._build_body(stmt.orelse, else_entry, ctx)
            if else_exit is not None:
                self.blocks[else_exit].succs.add(after)
        else:
            self.blocks[header].succs.add(after)
        return after

    def _build_loop(self, stmt, current: int, ctx: _CfgContext) -> int:
        header = self._header(stmt, current, ctx)
        after = self._new_block()
        body_entry = self._new_block()
        self.blocks[header].succs.update({body_entry, after})
        loop_ctx = _CfgContext(
            exc_targets=ctx.exc_targets,
            loop_header=header,
            loop_exit=after,
            finally_entry=ctx.finally_entry,
            loop_finally=None,
        )
        body_exit = self._build_body(stmt.body, body_entry, loop_ctx)
        if body_exit is not None:
            self.blocks[body_exit].succs.add(header)
        if stmt.orelse:
            else_exit = self._build_body(stmt.orelse, self._new_block(), ctx)
            entry = self._block_of[id(stmt.orelse[0])]
            self.blocks[header].succs.add(entry)
            if else_exit is not None:
                self.blocks[else_exit].succs.add(after)
        return after

    def _build_with(self, stmt, current: int, ctx: _CfgContext) -> int | None:
        header = self._header(stmt, current, ctx)
        body_exit = self._build_body(stmt.body, header, ctx)
        if body_exit is None:
            return None
        if body_exit == header:
            # Empty-ish body folded into the header: still start a fresh
            # block so the with's scope boundary is visible.
            after = self._new_block()
            self.blocks[header].succs.add(after)
            return after
        return body_exit

    def _build_match(self, stmt, current: int, ctx: _CfgContext) -> int:
        header = self._header(stmt, current, ctx)
        after = self._new_block()
        self.blocks[header].succs.add(after)
        for case in stmt.cases:
            entry = self._new_block()
            self.blocks[header].succs.add(entry)
            case_exit = self._build_body(case.body, entry, ctx)
            if case_exit is not None:
                self.blocks[case_exit].succs.add(after)
        return after

    def _build_try(self, stmt: ast.Try, current: int, ctx: _CfgContext) -> int | None:
        after = self._new_block()
        self._block_of.setdefault(id(stmt), current)

        fin_entry: int | None = None
        fin_exit: int | None = None
        if stmt.finalbody:
            fin_entry = self._new_block()
            fin_exit = self._build_body(stmt.finalbody, fin_entry, ctx)

        handler_entries: list[int] = []
        catch_all = False
        for handler in stmt.handlers:
            handler_entries.append(self._new_block())
            catch_all = catch_all or self._handler_catches_all(handler)

        # Exception targets inside the try body: every handler entry,
        # plus escape (through finally, then outward) unless a clause
        # catches everything.
        escape: tuple[int, ...] = (
            (fin_entry,) if fin_entry is not None else ctx.exc_targets
        )
        body_targets = tuple(handler_entries) + (() if stmt.handlers and catch_all else escape)
        loop_finally = ctx.loop_finally
        if fin_entry is not None and ctx.loop_header is not None:
            loop_finally = fin_entry
        body_ctx = _CfgContext(
            exc_targets=body_targets or escape,
            loop_header=ctx.loop_header,
            loop_exit=ctx.loop_exit,
            finally_entry=fin_entry if fin_entry is not None else ctx.finally_entry,
            loop_finally=loop_finally,
        )
        body_entry = self._new_block()
        self.blocks[current].succs.add(body_entry)
        body_exit = self._build_body(stmt.body, body_entry, body_ctx)

        # Handler and else bodies: exceptions propagate outward (through
        # the finally when present).
        inner_targets = (
            (fin_entry,) if fin_entry is not None else ctx.exc_targets
        )
        inner_ctx = _CfgContext(
            exc_targets=inner_targets,
            loop_header=ctx.loop_header,
            loop_exit=ctx.loop_exit,
            finally_entry=fin_entry if fin_entry is not None else ctx.finally_entry,
            loop_finally=loop_finally,
        )
        join = fin_entry if fin_entry is not None else after
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_exit = self._build_body(handler.body, entry, inner_ctx)
            if handler_exit is not None:
                self.blocks[handler_exit].succs.add(join)
        if body_exit is not None:
            if stmt.orelse:
                else_exit = self._build_body(
                    stmt.orelse, body_exit, inner_ctx
                )
                if else_exit is not None:
                    self.blocks[else_exit].succs.add(join)
            else:
                self.blocks[body_exit].succs.add(join)

        if fin_entry is not None and fin_exit is not None:
            # Completion, propagation, return and loop-control paths
            # all traverse the finally; over-approximate its exits.
            self.blocks[fin_exit].succs.add(after)
            self.blocks[fin_exit].succs.add(self.exit_index)
            self.blocks[fin_exit].exc_succs.update(ctx.exc_targets)
            if ctx.loop_exit is not None:
                self.blocks[fin_exit].succs.add(ctx.loop_exit)
            if ctx.loop_header is not None:
                self.blocks[fin_exit].succs.add(ctx.loop_header)
        return after

    @staticmethod
    def _handler_catches_all(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names: list[ast.expr] = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for expr in names:
            tail = expr.attr if isinstance(expr, ast.Attribute) else None
            if isinstance(expr, ast.Name):
                tail = expr.id
            if tail in ("BaseException", "Exception"):
                return True
        return False

    # -- queries -----------------------------------------------------------

    def block_index(self, stmt: ast.stmt) -> int | None:
        """The block holding ``stmt`` (header block for compounds)."""
        return self._block_of.get(id(stmt))

    def successors(self, index: int) -> set[int]:
        block = self.blocks[index]
        return block.succs | block.exc_succs

    def predecessors(self) -> dict[int, set[int]]:
        preds: dict[int, set[int]] = {b.index: set() for b in self.blocks}
        for block in self.blocks:
            for succ in self.successors(block.index):
                preds[succ].add(block.index)
        return preds

    def _reachable_from_entry(self) -> set[int]:
        seen = {self.entry_index}
        stack = [self.entry_index]
        while stack:
            for succ in self.successors(stack.pop()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def dominators(self) -> dict[int, set[int]]:
        """Iterative dominator sets over normal + exception edges.

        Blocks unreachable from the entry are reported as dominated by
        everything (the conventional bottom value).
        """
        if self._doms is not None:
            return self._doms
        reachable = self._reachable_from_entry()
        preds = self.predecessors()
        everything = {b.index for b in self.blocks}
        doms = {b.index: set(everything) for b in self.blocks}
        doms[self.entry_index] = {self.entry_index}
        changed = True
        while changed:
            changed = False
            for index in sorted(reachable - {self.entry_index}):
                incoming = [doms[p] for p in preds[index] if p in reachable]
                new = set.intersection(*incoming) if incoming else set()
                new = new | {index}
                if new != doms[index]:
                    doms[index] = new
                    changed = True
        self._doms = doms
        return doms

    def postdominators(self) -> dict[int, set[int]]:
        """Postdominator sets: blocks every path to the exit crosses."""
        if self._postdoms is not None:
            return self._postdoms
        preds = self.predecessors()  # reversed-graph successors
        everything = {b.index for b in self.blocks}
        post = {b.index: set(everything) for b in self.blocks}
        post[self.exit_index] = {self.exit_index}
        changed = True
        while changed:
            changed = False
            for block in self.blocks:
                index = block.index
                if index == self.exit_index:
                    continue
                outgoing = [post[s] for s in self.successors(index)]
                new = set.intersection(*outgoing) if outgoing else set()
                new = new | {index}
                if new != post[index]:
                    post[index] = new
                    changed = True
        self._postdoms = post
        return post

    def dominates(self, a: int, b: int) -> bool:
        """Whether every path from the entry to ``b`` crosses ``a``."""
        return a in self.dominators()[b]

    def postdominates(self, a: int, b: int) -> bool:
        """Whether every path from ``b`` to the exit crosses ``a``."""
        return a in self.postdominators()[b]

    def reaches_exit_avoiding(self, start: int, barriers: set[int]) -> bool:
        """Whether some path from ``start`` reaches the exit without
        entering any barrier block. ``start`` itself is not a barrier."""
        if start == self.exit_index:
            return True
        seen = {start}
        stack = [start]
        while stack:
            for succ in self.successors(stack.pop()):
                if succ in barriers or succ in seen:
                    continue
                if succ == self.exit_index:
                    return True
                seen.add(succ)
                stack.append(succ)
        return False


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """Build the per-function control-flow graph for ``func``."""
    return ControlFlowGraph(func)


@dataclass(frozen=True)
class SyntaxIssue:
    """A file that failed to parse (reported instead of aborting)."""

    path: str
    line: int
    col: int
    message: str


def build_model(
    files: Iterable[Path], tool: str = "repro-lint"
) -> tuple[ProjectModel, list[SyntaxIssue]]:
    """Parse ``files`` into a :class:`ProjectModel`.

    Syntax errors become :class:`SyntaxIssue` records rather than
    aborting the run; ``tool`` selects which suppression comments
    (``# <tool>: disable=...``) are honoured.
    """
    infos: list[ModuleInfo] = []
    errors: list[SyntaxIssue] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                SyntaxIssue(
                    path=display_path(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        infos.append(
            ModuleInfo(
                path=path,
                display_path=display_path(path),
                module=module_name(path),
                tree=tree,
                source=source,
                suppressed=parse_suppressions(source, tool),
                is_library=not (
                    LIBRARY_EXCLUDED_PARTS & set(path.resolve().parts)
                ),
            )
        )
    return ProjectModel(infos), errors
