"""Coverage regression gate for CI.

Reads a ``coverage.xml`` (Cobertura format, as produced by
``pytest --cov=repro --cov-report=xml``) and compares the measured line
coverage against the committed baseline in
``tools/coverage_baseline.txt``.

The gate fails when coverage drops more than ``MAX_REGRESSION``
percentage points below the baseline. It never fails for *improving*
coverage; when the measured value beats the baseline by more than the
regression budget, it prints a reminder to ratchet the baseline up.

Bootstrap mode: until a numeric baseline is committed the baseline file
holds the sentinel ``bootstrap``. The gate then prints the measured
percentage (the number to commit) and passes, so wiring the gate into
CI is a two-step, no-flag-day change.

Usage::

    python tools/coverage_gate.py coverage.xml
    python tools/coverage_gate.py coverage.xml --baseline tools/coverage_baseline.txt
"""

# CLI entry point: stdout IS the user interface here.
# repro-lint: disable=RL007

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from pathlib import Path

__all__ = ["main", "measure_coverage", "read_baseline"]

#: Allowed drop below the baseline, in percentage points.
MAX_REGRESSION = 1.0

_DEFAULT_BASELINE = Path(__file__).resolve().parent / "coverage_baseline.txt"


def measure_coverage(xml_path: Path) -> float:
    """Line coverage percentage from a Cobertura ``coverage.xml``."""
    root = ET.parse(xml_path).getroot()
    rate = root.get("line-rate")
    if rate is None:
        raise SystemExit(
            f"error: {xml_path} has no line-rate attribute; is it a "
            "Cobertura coverage report?"
        )
    return 100.0 * float(rate)


def read_baseline(path: Path) -> float | None:
    """The committed baseline percentage, or None in bootstrap mode."""
    text = path.read_text(encoding="utf-8").strip()
    if text.lower() == "bootstrap":
        return None
    try:
        return float(text)
    except ValueError:
        raise SystemExit(
            f"error: {path} must hold a number or the word 'bootstrap'; "
            f"got {text!r}."
        ) from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("coverage_xml", type=Path)
    parser.add_argument(
        "--baseline", type=Path, default=_DEFAULT_BASELINE,
        help="baseline file (default: tools/coverage_baseline.txt)",
    )
    args = parser.parse_args(argv)

    measured = measure_coverage(args.coverage_xml)
    baseline = read_baseline(args.baseline)
    if baseline is None:
        print(
            f"coverage gate: bootstrap mode — measured {measured:.2f}%. "
            f"Commit this number to {args.baseline} to arm the gate."
        )
        return 0
    floor = baseline - MAX_REGRESSION
    if measured < floor:
        print(
            f"coverage gate: FAIL — measured {measured:.2f}% is below the "
            f"floor {floor:.2f}% (baseline {baseline:.2f}% - "
            f"{MAX_REGRESSION} pt budget)."
        )
        return 1
    print(
        f"coverage gate: OK — measured {measured:.2f}% vs baseline "
        f"{baseline:.2f}% (floor {floor:.2f}%)."
    )
    if measured > baseline + MAX_REGRESSION:
        print(
            f"coverage gate: consider ratcheting the baseline up to "
            f"{measured:.2f}% in {args.baseline}."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
