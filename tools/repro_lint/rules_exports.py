"""RL004 — explicit, resolvable public module surfaces.

Every library module must declare ``__all__``, every name in it must
actually be bound in the module, and package ``__init__`` re-exports
must resolve against the scanned tree. This keeps ``from repro import
*`` stable, makes the public API diffable in review, and catches the
classic refactoring bug where a function is renamed but the package
``__init__`` (or ``__all__``) still advertises the old name — an error
that otherwise only surfaces at import time on a user's machine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import (
    ModuleInfo,
    ProjectModel,
    Rule,
    Violation,
    register,
)

__all__ = ["ExplicitExports"]


def _find_all(tree: ast.Module) -> tuple[ast.stmt | None, list[str] | None]:
    """Locate the top-level ``__all__`` assignment and its string items.

    Returns ``(node, names)``; ``names`` is None when ``__all__`` is not
    a static list/tuple of string literals.
    """
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        value = node.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return node, None
        names: list[str] = []
        for element in value.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return node, None
            names.append(element.value)
        return node, names
    return None, None


@register
class ExplicitExports(Rule):
    """RL004: ``__all__`` must exist, be static, and resolve.

    Checks, for every library module (``conftest.py``, ``setup.py`` and
    ``__main__.py`` entry points are exempt):

    * a top-level ``__all__`` assignment exists;
    * it is a list/tuple of string literals (machine-readable);
    * it contains no duplicates;
    * every listed name is bound at module top level (defined or
      imported);
    * every ``from <scanned package> import name`` statement resolves:
      the source module is in the scanned tree and binds ``name`` (or
      ``name`` is one of its submodules). This is what keeps package
      ``__init__`` re-export hubs honest.
    """

    code = "RL004"
    summary = "__all__ must exist and list only names bound in the module"

    _EXEMPT_FILES = frozenset({"__main__.py", "conftest.py", "setup.py"})

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        if not info.is_library or info.path.name in self._EXEMPT_FILES:
            return

        node, names = _find_all(info.tree)
        if node is None:
            yield self.violation(
                info,
                None,
                f"module '{info.module}' does not declare __all__; list its "
                f"public API explicitly",
            )
        elif names is None:
            yield self.violation(
                info,
                node,
                "__all__ must be a static list/tuple of string literals",
            )
        else:
            bound = info.top_level_bindings()
            seen: set[str] = set()
            for name in names:
                if name in seen:
                    yield self.violation(
                        info, node, f"duplicate name '{name}' in __all__"
                    )
                seen.add(name)
                if name not in bound:
                    yield self.violation(
                        info,
                        node,
                        f"__all__ lists '{name}' which is not defined or "
                        f"imported in '{info.module}'",
                    )

        # Re-export resolution for imports within the scanned tree.
        for stmt in info.tree.body:
            if not isinstance(stmt, ast.ImportFrom) or stmt.level:
                continue
            source = stmt.module
            if source is None:
                continue
            source_info = project.resolve_module(source)
            if source_info is None:
                if not any(
                    m == source or m.startswith(source + ".")
                    for m in project.by_name
                ):
                    continue  # outside the scanned tree (stdlib, numpy, ...)
                yield self.violation(
                    info,
                    stmt,
                    f"import from '{source}' cannot resolve: package has no "
                    f"such module in the scanned tree",
                )
                continue
            source_bound = source_info.top_level_bindings()
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                if alias.name in source_bound:
                    continue
                if project.has_submodule(source, alias.name):
                    continue
                yield self.violation(
                    info,
                    stmt,
                    f"'from {source} import {alias.name}' does not resolve: "
                    f"'{alias.name}' is not bound in '{source}'",
                )
