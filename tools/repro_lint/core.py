"""Core machinery for repro-lint: rule registry and runner.

repro-lint is a repo-specific static-analysis pass. Reproducing the
paper's figures hinges on invariants that ordinary linters do not check
— determinism of every sampler and estimator, a uniform randomness API,
explicit public module surfaces, and conformance to the estimator base
classes. Each invariant is an AST rule (``RL001``..``RL008``) registered
here; the runner parses every file once, builds a light project model so
cross-module rules (re-export resolution, base-class conformance) can
see sibling modules, and reports violations sorted by location.

The file model, project model and path walking live in
:mod:`tools.astkit`, shared with the whole-program auditor
(``tools/repro_audit``); this module re-exports them so rule modules
and tests keep a single import site.

Suppression is per file: a comment anywhere in the file of the form
``# repro-lint: disable=RL001,RL004`` disables those rules for that
file only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from tools.astkit import (
    LIBRARY_EXCLUDED_PARTS,
    ModuleInfo,
    ProjectModel,
    build_model as _build_model,
    collect_python_files,
)
from tools.astkit import parse_suppressions as _parse_suppressions

__all__ = [
    "LIBRARY_EXCLUDED_PARTS",
    "ModuleInfo",
    "ProjectModel",
    "Rule",
    "RULES",
    "Violation",
    "build_model",
    "collect_python_files",
    "iter_rules",
    "lint_paths",
    "parse_suppressions",
    "register",
]


def parse_suppressions(source: str) -> frozenset[str]:
    """Rule codes disabled for a file via ``# repro-lint: disable=...``."""
    return _parse_suppressions(source, tool="repro-lint")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location.

    Attributes
    ----------
    path:
        File path, as passed to the runner.
    line:
        1-based line number.
    col:
        0-based column offset.
    rule:
        Rule code, e.g. ``"RL003"``.
    message:
        Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CODE message`` (clickable in IDEs)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules. Subclasses set ``code``/``summary``."""

    code: str = "RL000"
    summary: str = ""

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        """Yield violations for one file. Override in subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover

    def violation(
        self, info: ModuleInfo, node: ast.AST | None, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node`` (or line 1)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Violation(
            path=info.display_path,
            line=line,
            col=col,
            rule=self.code,
            message=message,
        )


#: Global registry, code -> rule instance, populated by :func:`register`.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    instance = cls()
    if instance.code in RULES:
        raise ValueError(f"duplicate rule code {instance.code}")
    RULES[instance.code] = instance
    return cls


def iter_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Registered rules, optionally restricted to ``select`` codes."""
    _load_rules()
    if select is None:
        return [RULES[c] for c in sorted(RULES)]
    unknown = sorted(set(select) - set(RULES))
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(unknown)}")
    return [RULES[c] for c in sorted(select)]


def _load_rules() -> None:
    """Import the rule modules (registers them as a side effect)."""
    from tools.repro_lint import (  # noqa: F401
        rules_defaults,
        rules_docstrings,
        rules_estimator,
        rules_exports,
        rules_observability,
        rules_parallel,
        rules_randomness,
    )


def build_model(files: Iterable[Path]) -> tuple[ProjectModel, list[Violation]]:
    """Parse ``files`` into a :class:`ProjectModel`; syntax errors become
    violations (code ``RL000``) rather than aborting the run."""
    project, issues = _build_model(files, tool="repro-lint")
    errors = [
        Violation(
            path=issue.path,
            line=issue.line,
            col=issue.col,
            rule="RL000",
            message=issue.message,
        )
        for issue in issues
    ]
    return project, errors


def lint_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
) -> list[Violation]:
    """Run the registered rules over ``paths`` and return all violations.

    Parameters
    ----------
    paths:
        Files and/or directories to lint (directories are walked for
        ``*.py``).
    select:
        Restrict the run to these rule codes (default: all).
    """
    rules = iter_rules(select)
    project, violations = build_model(collect_python_files(paths))
    for info in project.modules:
        for rule in rules:
            if rule.code in info.suppressed:
                continue
            violations.extend(rule.check(info, project))
    return sorted(violations)
