"""Core machinery for repro-lint: file model, rule registry, runner.

repro-lint is a repo-specific static-analysis pass. Reproducing the
paper's figures hinges on invariants that ordinary linters do not check
— determinism of every sampler and estimator, a uniform randomness API,
explicit public module surfaces, and conformance to the estimator base
classes. Each invariant is an AST rule (``RL001``..``RL008``) registered
here; the runner parses every file once, builds a light project model so
cross-module rules (re-export resolution, base-class conformance) can
see sibling modules, and reports violations sorted by location.

Suppression is per file: a comment anywhere in the file of the form
``# repro-lint: disable=RL001,RL004`` disables those rules for that
file only.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "LIBRARY_EXCLUDED_PARTS",
    "ModuleInfo",
    "ProjectModel",
    "Rule",
    "RULES",
    "Violation",
    "collect_python_files",
    "iter_rules",
    "lint_paths",
    "parse_suppressions",
    "register",
]

#: Directory names whose files are not "library code" (rules that only
#: apply to the shipped library, like RL001, skip them).
LIBRARY_EXCLUDED_PARTS = frozenset({"tests", "benchmarks", "examples"})

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint\s*:\s*disable\s*=\s*(?P<codes>RL\d{3}(?:\s*,\s*RL\d{3})*)"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location.

    Attributes
    ----------
    path:
        File path, as passed to the runner.
    line:
        1-based line number.
    col:
        0-based column offset.
    rule:
        Rule code, e.g. ``"RL003"``.
    message:
        Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CODE message`` (clickable in IDEs)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def parse_suppressions(source: str) -> frozenset[str]:
    """Rule codes disabled for a file via ``# repro-lint: disable=...``."""
    codes: set[str] = set()
    for match in _SUPPRESS_RE.finditer(source):
        codes.update(c.strip() for c in match.group("codes").split(","))
    return frozenset(codes)


@dataclass
class ModuleInfo:
    """A parsed source file plus the metadata rules need.

    Attributes
    ----------
    path:
        Filesystem path of the file.
    display_path:
        Path string used in reports (relative when possible).
    module:
        Dotted module name (``repro.density.kde``) when the file sits in
        a package; the bare stem otherwise.
    tree:
        Parsed :class:`ast.Module`.
    source:
        Raw file contents.
    suppressed:
        Rule codes disabled for this file.
    is_library:
        False for files under ``tests/``, ``benchmarks/`` or
        ``examples/`` directories.
    """

    path: Path
    display_path: str
    module: str
    tree: ast.Module
    source: str
    suppressed: frozenset[str] = frozenset()
    is_library: bool = True

    @property
    def is_init(self) -> bool:
        return self.path.name == "__init__.py"

    @property
    def is_main(self) -> bool:
        return self.path.name == "__main__.py"

    def top_level_bindings(self) -> set[str]:
        """Names bound at module top level (defs, classes, imports, assigns)."""
        bound: set[str] = set()
        for node in self.tree.body:
            bound.update(_bindings_of(node))
        return bound


def _bindings_of(node: ast.stmt) -> Iterator[str]:
    """Names a single top-level statement binds in the module namespace."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield node.name
    elif isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.asname or alias.name.split(".")[0]
    elif isinstance(node, ast.ImportFrom):
        for alias in node.names:
            if alias.name == "*":
                continue
            yield alias.asname or alias.name
    elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    yield leaf.id
    elif isinstance(node, (ast.If, ast.Try)):
        # Conditional definitions (version gates, optional imports).
        bodies = [node.body, getattr(node, "orelse", [])]
        for handler in getattr(node, "handlers", []):
            bodies.append(handler.body)
        for body in bodies:
            for sub in body:
                yield from _bindings_of(sub)


class ProjectModel:
    """All parsed modules of one lint run, addressable by dotted name.

    Cross-module rules (RL004 re-export resolution, RL005 base-class
    conformance) use this to look at sibling files without importing
    anything — the whole pass is import-free so it can run on broken or
    dependency-missing trees.
    """

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.modules: list[ModuleInfo] = list(modules)
        self.by_name: dict[str, ModuleInfo] = {}
        for info in self.modules:
            self.by_name.setdefault(info.module, info)

    def resolve_module(self, dotted: str) -> ModuleInfo | None:
        """The scanned module with dotted name ``dotted``, if any."""
        return self.by_name.get(dotted)

    def has_submodule(self, package: str, name: str) -> bool:
        """Whether ``package.name`` is a scanned module or package."""
        dotted = f"{package}.{name}"
        return dotted in self.by_name or any(
            m.startswith(dotted + ".") for m in self.by_name
        )

    def class_def(self, module: str, name: str) -> tuple[ModuleInfo, ast.ClassDef] | None:
        """Find class ``name`` in ``module``, following its imports once.

        Returns the (module, ClassDef) pair where the class body actually
        lives, chasing ``from x import name`` links through the project.
        """
        seen: set[tuple[str, str]] = set()
        current = module
        target = name
        while (current, target) not in seen:
            seen.add((current, target))
            info = self.by_name.get(current)
            if info is None:
                return None
            for node in info.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == target:
                    return info, node
            # Not defined here: is it imported from a sibling?
            for node in info.tree.body:
                if isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        if (alias.asname or alias.name) == target:
                            current, target = node.module, alias.name
                            break
                    else:
                        continue
                    break
            else:
                return None
        return None


class Rule:
    """Base class for lint rules. Subclasses set ``code``/``summary``."""

    code: str = "RL000"
    summary: str = ""

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        """Yield violations for one file. Override in subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover

    def violation(
        self, info: ModuleInfo, node: ast.AST | None, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node`` (or line 1)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Violation(
            path=info.display_path,
            line=line,
            col=col,
            rule=self.code,
            message=message,
        )


#: Global registry, code -> rule instance, populated by :func:`register`.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    instance = cls()
    if instance.code in RULES:
        raise ValueError(f"duplicate rule code {instance.code}")
    RULES[instance.code] = instance
    return cls


def iter_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Registered rules, optionally restricted to ``select`` codes."""
    _load_rules()
    if select is None:
        return [RULES[c] for c in sorted(RULES)]
    unknown = sorted(set(select) - set(RULES))
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(unknown)}")
    return [RULES[c] for c in sorted(select)]


def _load_rules() -> None:
    """Import the rule modules (registers them as a side effect)."""
    from tools.repro_lint import (  # noqa: F401
        rules_defaults,
        rules_docstrings,
        rules_estimator,
        rules_exports,
        rules_observability,
        rules_parallel,
        rules_randomness,
    )


def collect_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _module_name(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` packages."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def build_model(files: Iterable[Path]) -> tuple[ProjectModel, list[Violation]]:
    """Parse ``files`` into a :class:`ProjectModel`; syntax errors become
    violations (code ``RL000``) rather than aborting the run."""
    infos: list[ModuleInfo] = []
    errors: list[Violation] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Violation(
                    path=_display_path(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule="RL000",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        infos.append(
            ModuleInfo(
                path=path,
                display_path=_display_path(path),
                module=_module_name(path),
                tree=tree,
                source=source,
                suppressed=parse_suppressions(source),
                is_library=not (
                    LIBRARY_EXCLUDED_PARTS & set(path.resolve().parts)
                ),
            )
        )
    return ProjectModel(infos), errors


def lint_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
) -> list[Violation]:
    """Run the registered rules over ``paths`` and return all violations.

    Parameters
    ----------
    paths:
        Files and/or directories to lint (directories are walked for
        ``*.py``).
    select:
        Restrict the run to these rule codes (default: all).
    """
    rules = iter_rules(select)
    project, violations = build_model(collect_python_files(paths))
    for info in project.modules:
        for rule in rules:
            if rule.code in info.suppressed:
                continue
            violations.extend(rule.check(info, project))
    return sorted(violations)
