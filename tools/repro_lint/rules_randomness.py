"""RL001/RL002 — determinism of every randomness source.

The paper's comparisons (Figures 3–7: biased vs uniform sampling at
equal sample size) are only meaningful when both samplers consume
randomness from an explicitly threaded generator. A single call into
numpy's *global* RandomState, or a generator constructed without a seed
argument, silently decouples two "identical" runs and invalidates the
figure. These two rules machine-check the repo convention:

* library code never touches ``np.random.<legacy fn>`` or constructs an
  unseeded generator (RL001);
* every public callable that accepts randomness takes a
  ``random_state``/``rng`` parameter and routes it through
  :func:`repro.utils.validation.check_random_state` (RL002).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import (
    ModuleInfo,
    ProjectModel,
    Rule,
    Violation,
    register,
)

__all__ = ["NoGlobalRandomness", "RandomStateContract"]

#: numpy.random attributes that are NOT the legacy global-state API.
_NEW_STYLE_API = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Parameter names recognised as "this callable accepts randomness".
RNG_PARAM_NAMES = frozenset({"random_state", "rng"})


def _numpy_random_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names bound in this module that refer to numpy / numpy.random."""
    numpy_aliases: set[str] = set()
    random_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "numpy.random" and alias.asname:
                    random_aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
    return numpy_aliases, random_aliases


def _is_np_random(node: ast.expr, numpy_aliases: set[str], random_aliases: set[str]) -> bool:
    """Whether ``node`` is an expression referring to the numpy.random module."""
    if isinstance(node, ast.Name):
        return node.id in random_aliases
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in numpy_aliases
    )


def _is_unseeded(call: ast.Call) -> bool:
    """``default_rng()`` / ``RandomState()`` with no (or None) seed."""
    if not call.args and not call.keywords:
        return True
    first = call.args[0] if call.args else None
    if first is None:
        for kw in call.keywords:
            if kw.arg in (None, "seed"):
                first = kw.value
                break
    return isinstance(first, ast.Constant) and first.value is None


@register
class NoGlobalRandomness(Rule):
    """RL001: no global-state or unseeded randomness in library code.

    Flags, outside ``tests/``/``benchmarks/``/``examples/``:

    * calls to the legacy module-level API (``np.random.seed``,
      ``np.random.rand``, ``np.random.choice``, ...), which mutate or
      read numpy's hidden global RandomState;
    * ``np.random.default_rng()`` / ``np.random.RandomState()`` with no
      seed argument (fresh OS entropy — unreproducible by construction);
    * ``from numpy.random import <legacy fn>`` imports.
    """

    code = "RL001"
    summary = "no global-state or unseeded numpy randomness in library code"

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        if not info.is_library:
            return
        numpy_aliases, random_aliases = _numpy_random_aliases(info.tree)
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _NEW_STYLE_API and alias.name != "*":
                        yield self.violation(
                            info,
                            node,
                            f"import of legacy global-state RNG function "
                            f"'numpy.random.{alias.name}'; use a seeded "
                            f"Generator via check_random_state instead",
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not _is_np_random(func.value, numpy_aliases, random_aliases):
                continue
            if func.attr not in _NEW_STYLE_API:
                yield self.violation(
                    info,
                    node,
                    f"call to 'np.random.{func.attr}' uses numpy's global "
                    f"RandomState; thread a Generator through "
                    f"check_random_state instead",
                )
            elif func.attr in ("default_rng", "RandomState") and _is_unseeded(node):
                yield self.violation(
                    info,
                    node,
                    f"'np.random.{func.attr}()' without a seed draws fresh "
                    f"OS entropy in library code; accept a random_state "
                    f"parameter and seed explicitly",
                )


def _is_abstract(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in func.decorator_list:
        name = dec.attr if isinstance(dec, ast.Attribute) else getattr(dec, "id", "")
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _is_stub_body(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Body is only a docstring / ``pass`` / ``...`` / ``raise``."""
    for stmt in func.body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        return False
    return True


def iter_public_callables(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    """(function node, qualified display name) for the module's public API.

    Covers top-level functions and methods of top-level public classes.
    ``__init__``/``__call__``/``__new__`` count as public methods.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node, node.name
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    public = not sub.name.startswith("_") or sub.name in (
                        "__init__",
                        "__call__",
                        "__new__",
                    )
                    if public:
                        yield sub, f"{node.name}.{sub.name}"


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]


def _calls_check_random_state(body: list[ast.stmt], param: str) -> bool:
    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name != "check_random_state":
            continue
        candidates = list(node.args) + [kw.value for kw in node.keywords]
        if any(isinstance(a, ast.Name) and a.id == param for a in candidates):
            return True
    return False


def _routes_param(body: list[ast.stmt], param: str) -> bool:
    """Whether ``param`` is stored, forwarded, or otherwise consumed."""
    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if isinstance(value, ast.Name) and value.id == param:
                return True
        elif isinstance(node, ast.Call):
            candidates = list(node.args) + [kw.value for kw in node.keywords]
            if any(isinstance(a, ast.Name) and a.id == param for a in candidates):
                return True
    return False


def _direct_rng_use(
    body: list[ast.stmt], param: str
) -> ast.Attribute | None:
    """First ``param.<attr>`` access (using the raw value as a Generator)."""
    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
        ):
            return node
    return None


@register
class RandomStateContract(Rule):
    """RL002: randomness parameters must route through check_random_state.

    For every public callable with a ``random_state``/``rng`` parameter:

    * calling methods on the raw parameter (``rng.choice(...)``) without
      first normalising it via ``check_random_state`` rejects ints/None
      and breaks the uniform seeding API — violation;
    * a randomness parameter that is never stored, forwarded, or
      normalised is dead API surface — violation.

    Additionally, any library callable that builds a generator from a
    hardcoded literal seed (``np.random.default_rng(42)``) hides the
    randomness from callers — it must expose the seed as a parameter.
    """

    code = "RL002"
    summary = "randomness parameters must route through check_random_state"

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        if not info.is_library:
            return
        numpy_aliases, random_aliases = _numpy_random_aliases(info.tree)

        for func, display in iter_public_callables(info.tree):
            if _is_abstract(func) or _is_stub_body(func):
                continue
            rng_params = [p for p in _param_names(func) if p in RNG_PARAM_NAMES]
            for param in rng_params:
                direct = _direct_rng_use(func.body, param)
                if direct is not None and not _calls_check_random_state(
                    func.body, param
                ):
                    yield self.violation(
                        info,
                        direct,
                        f"'{display}' uses parameter '{param}' as a raw RNG "
                        f"without normalising it via check_random_state() "
                        f"(ints and None would break)",
                    )
                elif direct is None and not _routes_param(func.body, param):
                    yield self.violation(
                        info,
                        func,
                        f"'{display}' accepts randomness parameter '{param}' "
                        f"but never stores, forwards, or normalises it",
                    )

        # Hardcoded literal seeds anywhere in library code.
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func_expr = node.func
            is_default_rng = (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "default_rng"
                and _is_np_random(func_expr.value, numpy_aliases, random_aliases)
            ) or (
                isinstance(func_expr, ast.Name) and func_expr.id == "default_rng"
            )
            if not is_default_rng or not node.args:
                continue
            seed = node.args[0]
            if isinstance(seed, ast.Constant) and isinstance(seed.value, int):
                yield self.violation(
                    info,
                    node,
                    f"hardcoded seed default_rng({seed.value}) hides the "
                    f"randomness source; expose a random_state parameter "
                    f"and route it through check_random_state",
                )
