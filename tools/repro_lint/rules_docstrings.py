"""RL006 — numpydoc ``Parameters`` sections must match signatures.

Most of this library's reproducibility knobs (``exponent``,
``density_floor_fraction``, ``random_state``, ...) reach users through
docstrings. A ``Parameters`` section that documents a renamed or removed
parameter, or silently omits a new one, is how "I passed the tuning knob
from the paper and nothing changed" bugs are born. When a public
callable carries a numpydoc ``Parameters`` section, this rule checks it
against the real signature: every documented name must exist, every
signature parameter must be documented, and the order must agree.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.repro_lint.core import (
    ModuleInfo,
    ProjectModel,
    Rule,
    Violation,
    register,
)
from tools.repro_lint.rules_randomness import iter_public_callables

__all__ = ["DocstringSignatureMatch", "documented_parameters"]

_ENTRY_RE = re.compile(
    r"^(?P<names>\*{0,2}[A-Za-z_]\w*(?:\s*,\s*\*{0,2}[A-Za-z_]\w*)*)\s*(?::.*)?$"
)
_DASHES_RE = re.compile(r"^-{3,}\s*$")


def documented_parameters(docstring: str) -> list[str] | None:
    """Parameter names listed in a numpydoc ``Parameters`` section.

    Returns None when the docstring has no such section; star prefixes
    (``*args`` / ``**kwargs``) are preserved.
    """
    lines = docstring.expandtabs().splitlines()
    if not lines:
        return None
    # Normalise indentation the way inspect.cleandoc does.
    body = lines[1:]
    margin = min(
        (len(ln) - len(ln.lstrip()) for ln in body if ln.strip()), default=0
    )
    lines = [lines[0].strip()] + [ln[margin:] for ln in body]

    start = None
    for i in range(len(lines) - 1):
        if lines[i].strip() == "Parameters" and _DASHES_RE.match(
            lines[i + 1].strip()
        ):
            start = i + 2
            break
    if start is None:
        return None

    base_indent = len(lines[start - 2]) - len(lines[start - 2].lstrip())
    names: list[str] = []
    i = start
    while i < len(lines):
        line = lines[i]
        if not line.strip():
            i += 1
            continue
        indent = len(line) - len(line.lstrip())
        if indent < base_indent:
            break
        if indent == base_indent:
            # A new section header ("Returns" + dashes) ends the scan.
            if i + 1 < len(lines) and _DASHES_RE.match(lines[i + 1].strip()):
                break
            match = _ENTRY_RE.match(line.strip())
            if match is None:
                break
            names.extend(
                n.strip() for n in match.group("names").split(",")
            )
        i += 1
    return names


def _signature_parameters(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[list[str], set[str]]:
    """(ordered required-documentation names, all acceptable names)."""
    args = func.args
    ordered = [
        a.arg
        for a in args.posonlyargs + args.args + args.kwonlyargs
        if a.arg not in ("self", "cls")
    ]
    acceptable = set(ordered)
    if args.vararg is not None:
        acceptable.add(args.vararg.arg)
    if args.kwarg is not None:
        acceptable.add(args.kwarg.arg)
    return ordered, acceptable


@register
class DocstringSignatureMatch(Rule):
    """RL006: when a ``Parameters`` section exists, it must be exact.

    For public callables (and public classes, whose docstring documents
    ``__init__``) that carry a numpydoc ``Parameters`` section:

    * every documented name must be a parameter of the signature;
    * every signature parameter must appear in the section
      (``*args``/``**kwargs`` are optional to document);
    * documented names must follow signature order.

    Callables without a ``Parameters`` section are not flagged — the
    rule enforces accuracy, not coverage.
    """

    code = "RL006"
    summary = "numpydoc Parameters sections must match the signature"

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        if not info.is_library:
            return

        targets: list[tuple[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef, str]] = []
        for func, display in iter_public_callables(info.tree):
            doc = ast.get_docstring(func, clean=False)
            if doc:
                targets.append((func, func, display))
        for node in info.tree.body:
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                doc = ast.get_docstring(node, clean=False)
                init = next(
                    (
                        m
                        for m in node.body
                        if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and m.name == "__init__"
                    ),
                    None,
                )
                if doc and init is not None:
                    targets.append((node, init, node.name))

        for anchor, func, display in targets:
            doc = ast.get_docstring(anchor, clean=False)  # type: ignore[arg-type]
            documented = documented_parameters(doc or "")
            if documented is None:
                continue
            ordered, acceptable = _signature_parameters(func)
            yield from self._compare(
                info, anchor, display, documented, ordered, acceptable
            )

    def _compare(
        self,
        info: ModuleInfo,
        anchor: ast.AST,
        display: str,
        documented: list[str],
        ordered: list[str],
        acceptable: set[str],
    ) -> Iterator[Violation]:
        stripped = [n.lstrip("*") for n in documented]
        for name in stripped:
            if name not in acceptable:
                yield self.violation(
                    info,
                    anchor,
                    f"'{display}' documents parameter '{name}' which is not "
                    f"in the signature",
                )
        documented_set = set(stripped)
        for name in ordered:
            if name not in documented_set:
                yield self.violation(
                    info,
                    anchor,
                    f"'{display}' has a Parameters section but omits "
                    f"parameter '{name}'",
                )
        in_sig_order = [n for n in stripped if n in set(ordered)]
        expected = [n for n in ordered if n in documented_set]
        if in_sig_order != expected:
            yield self.violation(
                info,
                anchor,
                f"'{display}' documents parameters out of signature order "
                f"(documented {in_sig_order}, signature {expected})",
            )
