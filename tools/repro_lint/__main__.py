"""Command-line entry point: ``python -m tools.repro_lint [paths...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from tools.repro_lint.core import lint_paths
from tools.repro_lint.reporting import (
    render_json,
    render_sarif,
    render_text,
    rule_listing,
)

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    """Lint ``paths`` and print a report; exit 1 on any violation."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=(
            "Repo-specific static analysis enforcing determinism, "
            "observability and estimator-API contracts (rules "
            "RL001-RL007)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        type=Path,
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="RLxxx[,RLxxx...]",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(rule_listing())
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        # A typo'd path must not look like a clean lint run.
        print(
            "repro-lint: no such file or directory: "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return 2

    select = (
        [c.strip() for c in args.select.split(",") if c.strip()]
        if args.select
        else None
    )
    try:
        violations = lint_paths(args.paths, select=select)
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.format == "json":
        report = render_json(violations)
    elif args.format == "sarif":
        report = render_sarif(violations)
    else:
        report = render_text(violations)
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
