"""RL007 — observability discipline: no stray stdout or wall-clock reads.

Library code that calls bare ``print()`` writes to whatever stdout
happens to be at call time — reports become un-capturable, benchmarks
get polluted, and parallel runs interleave. Library code that reads
``time.time()`` bakes an ambient, non-monotonic clock into results.
Both have sanctioned routes: user-facing text goes through an explicit
stream (``print(..., file=stream)`` or the reporting renderers) and
durations go through ``repro.obs`` (:class:`repro.obs.Stopwatch` or a
recorder phase). This rule machine-checks the convention.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import (
    ModuleInfo,
    ProjectModel,
    Rule,
    Violation,
    register,
)

__all__ = ["ObservabilityDiscipline"]


def _time_aliases(tree: ast.Module) -> set[str]:
    """Names bound in this module that refer to the ``time`` module."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


@register
class ObservabilityDiscipline(Rule):
    """RL007: no bare ``print()`` and no ``time.time()`` in library code.

    Flags, outside ``tests/``/``benchmarks/``/``examples/`` and
    ``__main__.py`` files:

    * ``print(...)`` calls without an explicit ``file=`` argument —
      they write to the global stdout; route reports through an
      explicit stream or the reporting/obs layers;
    * ``time.time()`` calls and ``from time import time`` imports —
      wall-clock reads belong in ``repro.obs`` (``Stopwatch`` /
      recorder phases), which uses the monotonic clock.
    """

    code = "RL007"
    summary = "no bare print() or time.time() in library code"

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        if not info.is_library or info.is_main:
            return
        time_aliases = _time_aliases(info.tree)
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        yield self.violation(
                            info,
                            node,
                            "import of 'time.time' in library code; use "
                            "repro.obs (Stopwatch / recorder phases) for "
                            "durations",
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                if not any(kw.arg == "file" for kw in node.keywords):
                    yield self.violation(
                        info,
                        node,
                        "bare print() writes to global stdout in library "
                        "code; pass an explicit file= stream or route "
                        "through the reporting/obs layers",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ):
                yield self.violation(
                    info,
                    node,
                    "time.time() reads the ambient wall clock in library "
                    "code; use repro.obs (Stopwatch / recorder phases) "
                    "instead",
                )
