"""RL008 — parallelism discipline: workers only via ``repro.parallel``.

The parallel backend owns three contracts that ad-hoc worker pools
silently break: results must be byte-identical for any worker count
(random draws stay on the caller's single generator), every worker's
``repro.obs`` counters must be merged back into the ambient recorder
(manifests stay accurate under parallelism), and worker policy
(``n_jobs`` resolution, ``REPRO_N_JOBS``, backend kind) must live in
one place. Library code that imports ``multiprocessing`` or
``concurrent.futures`` directly bypasses all three; this rule pins
those imports to ``repro.parallel`` itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import (
    ModuleInfo,
    ProjectModel,
    Rule,
    Violation,
    register,
)

__all__ = ["ParallelismDiscipline"]

#: Module roots whose import marks a hand-rolled worker pool.
_FORBIDDEN_ROOTS = ("multiprocessing", "concurrent")


def _root(name: str) -> str:
    return name.split(".", 1)[0]


@register
class ParallelismDiscipline(Rule):
    """RL008: no direct ``multiprocessing`` / ``concurrent.futures`` use.

    Flags, in library code outside the ``repro.parallel`` package:

    * ``import multiprocessing`` / ``import concurrent.futures``
      (and aliased forms);
    * ``from multiprocessing import ...`` / ``from concurrent import
      futures`` / ``from concurrent.futures import ...``.

    Parallel execution goes through :mod:`repro.parallel`
    (``parallel_map_chunks`` or an execution backend), which preserves
    the determinism contract and recorder aggregation.
    """

    code = "RL008"
    summary = (
        "multiprocessing/concurrent.futures only inside repro.parallel"
    )

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        if not info.is_library:
            return
        if info.module == "repro.parallel" or info.module.startswith(
            "repro.parallel."
        ):
            return
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _root(alias.name) in _FORBIDDEN_ROOTS:
                        yield self.violation(
                            info,
                            node,
                            f"direct import of {alias.name!r}; route "
                            "parallel execution through repro.parallel "
                            "(parallel_map_chunks / get_backend) so "
                            "determinism and recorder aggregation hold",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and _root(node.module) in _FORBIDDEN_ROOTS:
                    yield self.violation(
                        info,
                        node,
                        f"direct import from {node.module!r}; route "
                        "parallel execution through repro.parallel "
                        "(parallel_map_chunks / get_backend) so "
                        "determinism and recorder aggregation hold",
                    )
