"""Violation reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from tools.repro_lint.core import RULES, Violation, iter_rules

__all__ = ["render_json", "render_text", "rule_listing"]


def render_text(violations: Iterable[Violation]) -> str:
    """``path:line:col: CODE message`` lines plus a per-rule summary."""
    violations = list(violations)
    if not violations:
        return "repro-lint: clean (0 violations)."
    lines = [v.format() for v in violations]
    counts = Counter(v.rule for v in violations)
    summary = ", ".join(f"{code} x{n}" for code, n in sorted(counts.items()))
    lines.append(
        f"repro-lint: {len(violations)} violation(s) [{summary}]."
    )
    return "\n".join(lines)


def render_json(violations: Iterable[Violation]) -> str:
    """JSON document with violation records and per-rule counts."""
    violations = list(violations)
    counts = Counter(v.rule for v in violations)
    return json.dumps(
        {
            "violations": [v.to_dict() for v in violations],
            "counts": dict(sorted(counts.items())),
            "total": len(violations),
        },
        indent=2,
    )


def rule_listing() -> str:
    """One line per registered rule: code and summary."""
    iter_rules()  # ensure rule modules are imported
    return "\n".join(
        f"{code}  {RULES[code].summary}" for code in sorted(RULES)
    )
