"""Violation reporters: text, JSON and SARIF 2.1.0.

The SARIF form feeds GitHub code scanning. CI merges this log with
repro-audit's into a single upload; the two stay distinguishable there
by driver name (``repro-lint`` vs ``repro-audit``), so the renderer
must keep that name stable.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from tools.repro_lint.core import RULES, Violation, iter_rules

__all__ = ["render_json", "render_sarif", "render_text", "rule_listing"]

SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def render_text(violations: Iterable[Violation]) -> str:
    """``path:line:col: CODE message`` lines plus a per-rule summary."""
    violations = list(violations)
    if not violations:
        return "repro-lint: clean (0 violations)."
    lines = [v.format() for v in violations]
    counts = Counter(v.rule for v in violations)
    summary = ", ".join(f"{code} x{n}" for code, n in sorted(counts.items()))
    lines.append(
        f"repro-lint: {len(violations)} violation(s) [{summary}]."
    )
    return "\n".join(lines)


def render_json(violations: Iterable[Violation]) -> str:
    """JSON document with violation records and per-rule counts."""
    violations = list(violations)
    counts = Counter(v.rule for v in violations)
    return json.dumps(
        {
            "violations": [v.to_dict() for v in violations],
            "counts": dict(sorted(counts.items())),
            "total": len(violations),
        },
        indent=2,
    )


def render_sarif(violations: Iterable[Violation]) -> str:
    """SARIF 2.1.0 log for GitHub code-scanning upload."""
    violations = list(violations)
    iter_rules()  # ensure rule modules are imported
    rule_objects = [
        {
            "id": code,
            "name": type(RULES[code]).__name__,
            "shortDescription": {"text": RULES[code].summary},
        }
        for code in sorted(RULES)
    ]
    results = []
    for violation in violations:
        region: dict = {"startLine": max(1, violation.line)}
        if violation.col:
            region["startColumn"] = violation.col + 1
        results.append(
            {
                "ruleId": violation.rule,
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": violation.path},
                            "region": region,
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproLint/v1": (
                        f"{violation.rule}\t{violation.path}\t"
                        f"{violation.message}"
                    )
                },
            }
        )
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/paper-repro/repro"
                        ),
                        "rules": rule_objects,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def rule_listing() -> str:
    """One line per registered rule: code and summary."""
    iter_rules()  # ensure rule modules are imported
    return "\n".join(
        f"{code}  {RULES[code].summary}" for code in sorted(RULES)
    )
