"""RL005 — static conformance to the estimator base-class contracts.

The sampling pipeline treats density estimators, clusterers, and outlier
detectors as interchangeable behind their base classes
(:class:`repro.density.base.DensityEstimator`,
:class:`repro.clustering.base.Clusterer`,
:class:`repro.outliers.base.OutlierDetector`, kernel functions behind
:class:`repro.density.kernels.Kernel`). Python only enforces the
abstract surface at *instantiation* time and never checks signatures, so
a subclass with a misspelt override or an incompatible ``fit`` signature
imports cleanly and fails deep inside an experiment run. This rule
checks both statically, without importing anything: every concrete
subclass of an in-tree ABC must define each abstract method, and the
override's signature must accept everything the base signature does.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import (
    ModuleInfo,
    ProjectModel,
    Rule,
    Violation,
    register,
)

__all__ = ["EstimatorConformance"]

_ABC_NAMES = frozenset({"ABC", "ABCMeta"})
_MAX_DEPTH = 20


def _decorator_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in func.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _is_abstract_method(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return bool(
        _decorator_names(func) & {"abstractmethod", "abstractproperty"}
    )


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _ancestors(
    info: ModuleInfo, cls: ast.ClassDef, project: ProjectModel
) -> list[tuple[ModuleInfo, ast.ClassDef]]:
    """In-tree ancestor classes, nearest first (DFS over resolvable bases)."""
    out: list[tuple[ModuleInfo, ast.ClassDef]] = []
    seen: set[tuple[str, str]] = {(info.module, cls.name)}
    stack: list[tuple[ModuleInfo, ast.ClassDef, int]] = [(info, cls, 0)]
    while stack:
        owner, node, depth = stack.pop(0)
        if depth >= _MAX_DEPTH:
            continue
        for base in node.bases:
            name = _base_name(base)
            if name is None or name in _ABC_NAMES:
                continue
            resolved = project.class_def(owner.module, name)
            if resolved is None:
                continue
            key = (resolved[0].module, resolved[1].name)
            if key in seen:
                continue
            seen.add(key)
            out.append(resolved)
            stack.append((resolved[0], resolved[1], depth + 1))
    return out


def _declares_abc(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        if _base_name(base) in _ABC_NAMES:
            return True
    for kw in cls.keywords:
        if kw.arg == "metaclass" and _base_name(kw.value) in _ABC_NAMES:
            return True
    return False


def _positional_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    return [a.arg for a in func.args.posonlyargs + func.args.args]


def _signature_problems(
    abstract: ast.FunctionDef | ast.AsyncFunctionDef,
    impl: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    """Ways ``impl`` fails to accept what ``abstract`` promises."""
    problems: list[str] = []
    pos_a = _positional_names(abstract)
    pos_i = _positional_names(impl)
    impl_all = set(pos_i) | {a.arg for a in impl.args.kwonlyargs}

    for idx, name in enumerate(pos_a):
        if idx < len(pos_i):
            if pos_i[idx] != name:
                problems.append(
                    f"positional parameter {idx} is '{pos_i[idx]}', base "
                    f"declares '{name}'"
                )
        elif impl.args.vararg is None:
            problems.append(
                f"missing positional parameter '{name}' declared by the base"
            )

    extra = len(pos_i) - len(pos_a)
    if extra > 0 and extra > len(impl.args.defaults):
        problems.append(
            "adds required positional parameters beyond the base signature"
        )

    for kw in abstract.args.kwonlyargs:
        if kw.arg not in impl_all and impl.args.kwarg is None:
            problems.append(
                f"missing keyword-only parameter '{kw.arg}' declared by the base"
            )

    abstract_names = set(pos_a) | {a.arg for a in abstract.args.kwonlyargs}
    for kw, default in zip(impl.args.kwonlyargs, impl.args.kw_defaults):
        if kw.arg not in abstract_names and default is None:
            problems.append(
                f"adds required keyword-only parameter '{kw.arg}' not in the "
                f"base signature"
            )
    return problems


@register
class EstimatorConformance(Rule):
    """RL005: concrete subclasses must satisfy their ABC, compatibly.

    For every top-level class whose (transitively resolved, in-tree)
    ancestors declare ``@abstractmethod`` methods, unless the class is
    itself abstract (subclasses ``abc.ABC`` directly or declares new
    abstract methods):

    * each abstract method must be overridden somewhere at or below the
      declaring base;
    * each override's signature must be call-compatible with the
      abstract signature — same positional names in the same order, any
      added parameters optional, every base keyword-only parameter
      accepted.
    """

    code = "RL005"
    summary = "subclasses must implement base abstract methods compatibly"

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        if not info.is_library:
            return
        for cls in info.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            own_methods = _methods(cls)
            is_abstract = _declares_abc(cls) or any(
                _is_abstract_method(m) for m in own_methods.values()
            )
            if is_abstract:
                continue
            ancestors = _ancestors(info, cls, project)
            if not ancestors:
                continue

            # Abstract surface: nearest declaration of each name wins.
            required: dict[str, tuple[ast.ClassDef, ast.FunctionDef]] = {}
            resolved_chain = [(info, cls)] + ancestors
            for owner_info, ancestor in ancestors:
                for name, method in _methods(ancestor).items():
                    if name not in required and _is_abstract_method(method):
                        required[name] = (ancestor, method)

            for name, (base_cls, base_method) in sorted(required.items()):
                impl = None
                for owner_info, candidate in resolved_chain:
                    if candidate is base_cls:
                        break
                    method = _methods(candidate).get(name)
                    if method is not None and not _is_abstract_method(method):
                        impl = method
                        break
                if impl is None:
                    yield self.violation(
                        info,
                        cls,
                        f"class '{cls.name}' subclasses '{base_cls.name}' but "
                        f"does not implement abstract method '{name}'",
                    )
                    continue
                for problem in _signature_problems(base_method, impl):
                    yield self.violation(
                        info,
                        impl,
                        f"'{cls.name}.{name}' is incompatible with "
                        f"'{base_cls.name}.{name}': {problem}",
                    )
