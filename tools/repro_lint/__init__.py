"""repro-lint: repo-specific static analysis for reproducibility contracts.

Run over the library tree::

    python -m tools.repro_lint src/

Rules
-----
RL001
    No global-state or unseeded numpy randomness in library code.
RL002
    Randomness parameters must route through ``check_random_state``;
    no hardcoded seeds.
RL003
    No mutable default argument values.
RL004
    ``__all__`` must exist in every library module and resolve;
    package re-exports must resolve.
RL005
    Concrete subclasses of in-tree ABCs must implement the abstract
    surface with call-compatible signatures.
RL006
    numpydoc ``Parameters`` sections must match the actual signature.
RL007
    No bare ``print()`` (without ``file=``) and no ``time.time()`` in
    library code; route output through explicit streams / reporting and
    durations through ``repro.obs``.
RL008
    No direct ``multiprocessing`` / ``concurrent.futures`` use outside
    ``repro.parallel``; parallel execution goes through the execution
    backend (``parallel_map_chunks``) so results stay byte-identical
    for any worker count and recorder counters aggregate correctly.

Suppress a rule for one file with a comment anywhere in it::

    # repro-lint: disable=RL001,RL004
"""

from tools.repro_lint.core import (
    RULES,
    Rule,
    Violation,
    iter_rules,
    lint_paths,
    parse_suppressions,
)
from tools.repro_lint.reporting import (
    render_json,
    render_sarif,
    render_text,
    rule_listing,
)

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "iter_rules",
    "lint_paths",
    "parse_suppressions",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_listing",
]
