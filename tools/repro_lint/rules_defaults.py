"""RL003 — no mutable default arguments.

A mutable default (``def f(x, acc=[])``) is created once at function
definition time and shared across calls. In an estimator library this is
a determinism hazard of the same family as global RNG state: results
come to depend on call history rather than on arguments, so a figure
regenerated in a fresh process differs from one produced mid-session.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import (
    ModuleInfo,
    ProjectModel,
    Rule,
    Violation,
    register,
)

__all__ = ["NoMutableDefaults"]

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        return name in _MUTABLE_CONSTRUCTORS
    return False


@register
class NoMutableDefaults(Rule):
    """RL003: default argument values must not be mutable containers.

    Flags list/dict/set/comprehension literals and bare
    ``list()``/``dict()``/``set()``/``bytearray()`` calls used as
    defaults, in every function and method (nested ones included).
    Use ``None`` and materialise inside the body instead.
    """

    code = "RL003"
    summary = "no mutable default argument values"

    def check(self, info: ModuleInfo, project: ProjectModel) -> Iterator[Violation]:
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            named = args.posonlyargs + args.args
            positional = named[len(named) - len(args.defaults):] if args.defaults else []
            names = [a.arg for a in positional] + [
                a.arg
                for a, d in zip(args.kwonlyargs, args.kw_defaults)
                if d is not None
            ]
            label = getattr(node, "name", "<lambda>")
            for param, default in zip(names, defaults):
                if _is_mutable_default(default):
                    yield self.violation(
                        info,
                        default,
                        f"mutable default for parameter '{param}' of "
                        f"'{label}' is shared across calls; default to None "
                        f"and create the container in the body",
                    )
