"""Benchmark regression gate for CI.

Compares a fresh pytest-benchmark JSON run of
``benchmarks/bench_micro_primitives.py`` against the committed baseline
``benchmarks/BENCH_micro.json``. Wall time is machine-dependent, so the
comparison is *calibration-normalised*: both the baseline (at
``--write-baseline`` time) and the gate (at check time) time the same
fixed numpy workload, and each benchmark's budget is scaled by the
ratio of the two calibrations before comparing medians (robust to a
stray slow round in a way the mean is not). A benchmark fails the
gate when its normalised median exceeds ``BUDGET`` (2x) of the
baseline — generous enough to absorb scheduler noise, tight enough to
catch an accidental quadratic (the RA006 pathologies are 10x+ at these
sizes).

Bootstrap mode mirrors ``tools/coverage_gate.py``: until the baseline
file carries a ``calibration_seconds`` key (injected by
``--write-baseline``), the gate prints what it measured and passes, so
CI wiring is a no-flag-day change.

Usage::

    python tools/bench_gate.py current.json
    python tools/bench_gate.py current.json --baseline benchmarks/BENCH_micro.json
    python tools/bench_gate.py benchmarks/BENCH_micro.json --write-baseline
"""

# CLI entry point: stdout IS the user interface here, and the
# calibration workload is deliberately pinned to a fixed seed — it is
# a timing probe, not a statistical draw.
# repro-lint: disable=RL007,RL002

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["calibrate", "load_medians", "main"]

#: Allowed slowdown factor per benchmark after calibration scaling.
BUDGET = 2.0

#: Benchmarks faster than this are dominated by fixed overhead and are
#: compared only against the absolute floor, not the ratio budget.
MIN_COMPARABLE_SECONDS = 0.005

_DEFAULT_BASELINE = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_micro.json"
)


def calibrate(rounds: int = 5) -> float:
    """Seconds for a fixed numpy workload; best of ``rounds``.

    The workload mixes the primitives the microbenchmarks lean on —
    dense matmul, elementwise transcendentals and a sort — so its
    timing tracks the machine's effective speed for this suite better
    than a single-kernel probe would.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(320, 320))
    v = rng.normal(size=250_000)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        b = a @ a
        np.exp(0.001 * b)
        np.sort(v)
        best = min(best, time.perf_counter() - start)
    return best


def load_medians(path: Path) -> dict[str, float]:
    """``{benchmark name: median seconds}`` from a pytest-benchmark JSON."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        bench["name"]: float(bench["stats"]["median"])
        for bench in payload.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current_json", type=Path)
    parser.add_argument(
        "--baseline", type=Path, default=_DEFAULT_BASELINE,
        help="baseline file (default: benchmarks/BENCH_micro.json)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="inject this machine's calibration into current_json, "
        "arming it as the committed baseline",
    )
    args = parser.parse_args(argv)

    if args.write_baseline:
        payload = json.loads(args.current_json.read_text(encoding="utf-8"))
        payload["calibration_seconds"] = calibrate()
        args.current_json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(
            f"bench gate: wrote calibration "
            f"{payload['calibration_seconds']:.4f}s into {args.current_json}."
        )
        return 0

    if not args.baseline.exists():
        print(
            f"bench gate: bootstrap mode — no baseline at {args.baseline}; "
            "run with --write-baseline to arm the gate."
        )
        return 0
    baseline_payload = json.loads(args.baseline.read_text(encoding="utf-8"))
    base_cal = baseline_payload.get("calibration_seconds")
    if base_cal is None:
        print(
            f"bench gate: bootstrap mode — {args.baseline} has no "
            "calibration_seconds key; re-arm it with --write-baseline."
        )
        return 0

    now_cal = calibrate()
    # >1 means this machine is slower than the recording machine, so
    # budgets stretch proportionally.
    speed = now_cal / float(base_cal)
    baseline_medians = load_medians(args.baseline)
    current_medians = load_medians(args.current_json)

    failures: list[str] = []
    for name, base_median in sorted(baseline_medians.items()):
        current = current_medians.get(name)
        if current is None:
            print(f"bench gate: FAIL {name}: missing from the current run")
            failures.append(f"{name}: missing from the current run")
            continue
        budget = max(
            base_median * speed * BUDGET, MIN_COMPARABLE_SECONDS
        )
        verdict = "FAIL" if current > budget else "ok"
        print(
            f"bench gate: {verdict} {name}: {current:.4f}s vs budget "
            f"{budget:.4f}s (baseline {base_median:.4f}s x speed "
            f"{speed:.2f} x {BUDGET})"
        )
        if current > budget:
            failures.append(
                f"{name}: {current:.4f}s exceeds budget {budget:.4f}s"
            )
    if failures:
        print(f"bench gate: FAIL — {len(failures)} regression(s).")
        return 1
    print(
        f"bench gate: OK — {len(baseline_medians)} benchmark(s) within "
        f"the {BUDGET}x calibrated budget."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
