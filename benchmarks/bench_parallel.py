"""Benchmarks for the parallel backend and the vectorised reservoir.

Two claims are guarded here:

* the Algorithm-L reservoir (geometric skips, chunk-vectorised fill)
  beats a per-row Algorithm-R loop by an order of magnitude on a
  200k-row stream;
* chunked density evaluation through ``parallel_map_chunks`` is
  byte-identical to the serial path for any worker count, and — on
  machines that actually have the cores — faster at ``n_jobs=4``.

The speedup assertions are gated on ``os.cpu_count()``: a single-core
container can demonstrate the determinism contract but not the
parallelism, and a wall-time assertion there would only measure
scheduler noise.
"""

import os
import time

import numpy as np
import pytest

from repro.density import KernelDensityEstimator
from repro.density.reservoir import ReservoirSampler

N_ROWS = 200_000
CHUNK = 8_192


@pytest.fixture(scope="module")
def stream_chunks():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(N_ROWS, 2))
    return [data[start : start + CHUNK] for start in range(0, N_ROWS, CHUNK)]


def _per_row_algorithm_r(chunks, capacity, seed):
    """Reference implementation: the classic one-draw-per-row loop the
    vectorised sampler replaced."""
    rng = np.random.default_rng(seed)
    reservoir = []
    seen = 0
    for chunk in chunks:
        for row in chunk:
            if seen < capacity:
                reservoir.append(row)
            else:
                slot = int(rng.integers(0, seen + 1))
                if slot < capacity:
                    reservoir[slot] = row
            seen += 1
    return np.asarray(reservoir)


def test_reservoir_vectorised_200k(benchmark, stream_chunks):
    def run():
        sampler = ReservoirSampler(1000, random_state=0)
        for chunk in stream_chunks:
            sampler.extend(chunk)
        return sampler.sample

    result = benchmark(run)
    assert result.shape == (1000, 2)


def test_reservoir_beats_per_row_loop(stream_chunks):
    """The acceptance bound: >= 10x over the per-row loop on 200k rows."""

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def vectorised():
        sampler = ReservoirSampler(1000, random_state=0)
        for chunk in stream_chunks:
            sampler.extend(chunk)
        return sampler.sample

    vectorised()  # warm-up: first call pays numpy dispatch setup
    loop_time = timed(lambda: _per_row_algorithm_r(stream_chunks, 1000, 0))
    vec_time = max(min(timed(vectorised) for _ in range(3)), 1e-9)
    assert loop_time / vec_time >= 10.0, (
        f"vectorised reservoir only {loop_time / vec_time:.1f}x faster "
        f"({vec_time:.3f}s vs {loop_time:.3f}s loop)"
    )


@pytest.fixture(scope="module")
def fitted_kde(stream_chunks):
    data = np.vstack(stream_chunks)
    return KernelDensityEstimator(n_kernels=1000, random_state=0).fit(data)


def test_kde_parallel_matches_serial(fitted_kde, stream_chunks):
    """Determinism contract: identical densities for any n_jobs."""
    queries = np.vstack(stream_chunks[:8])
    serial = KernelDensityEstimator(n_kernels=1000, random_state=0)
    serial.__dict__.update(fitted_kde.__dict__)
    serial.n_jobs = 1
    parallel = KernelDensityEstimator(n_kernels=1000, random_state=0)
    parallel.__dict__.update(fitted_kde.__dict__)
    parallel.n_jobs = 4
    np.testing.assert_array_equal(
        serial.evaluate(queries), parallel.evaluate(queries)
    )


def test_kde_evaluate_parallel_4_jobs(benchmark, fitted_kde, stream_chunks):
    queries = np.vstack(stream_chunks[:8])
    fitted_kde.n_jobs = 4
    try:
        result = benchmark(lambda: fitted_kde.evaluate(queries))
    finally:
        fitted_kde.n_jobs = None
    assert result.shape == (queries.shape[0],)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 cores; this machine cannot show it",
)
def test_kde_parallel_speedup(fitted_kde, stream_chunks):
    """On a real multicore machine, 4 workers must halve the wall time."""
    queries = np.vstack(stream_chunks[:8])

    def timed(n_jobs):
        fitted_kde.n_jobs = n_jobs
        try:
            fitted_kde.evaluate(queries)  # warm-up
            start = time.perf_counter()
            fitted_kde.evaluate(queries)
            return time.perf_counter() - start
        finally:
            fitted_kde.n_jobs = None

    serial_time = timed(1)
    parallel_time = timed(4)
    assert serial_time / parallel_time >= 2.0, (
        f"n_jobs=4 only {serial_time / parallel_time:.2f}x faster "
        f"({parallel_time:.3f}s vs {serial_time:.3f}s serial)"
    )
