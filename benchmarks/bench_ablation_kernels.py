"""Ablation bench: kernel family sweep."""


def test_ablation_kernels(run_once, bench_scale):
    result = run_once("ablation-kernels", scale=max(bench_scale, 0.15))
    table = result.table("kernel profiles (a=-0.25, 1% sample, 1000 kernels)")
    found = dict(zip(table.column("kernel"), table.column("found_of_10")))
    # Every kernel profile keeps the sampler functional...
    assert all(value >= 4 for value in found.values()), found
    # ...and the paper's Epanechnikov choice is competitive with the best.
    assert found["epanechnikov"] >= max(found.values()) - 2.5
