"""Bench for Figure 2: pipeline running time vs sample size."""


def test_fig2_runtime(run_once, bench_scale):
    result = run_once("fig2", scale=bench_scale)
    table = result.table("running time vs sample size")

    sizes = table.column("sample_size")
    cure = table.column("cure_s")
    sweeps = table.column("cure_distance_sweeps")
    sampling = table.column("bs_sampling_s")

    # Hardware-independent: the clusterer's distance-sweep count grows
    # at least linearly with the sample size (each sweep is itself
    # O(live pool), so total work is the paper's quadratic).
    size_ratio = sizes[-1] / sizes[0]
    assert sweeps[-1] / max(sweeps[0], 1) > 0.8 * size_ratio
    # Wall time agrees in direction: the largest sample's clustering
    # clearly costs more than the smallest's.
    assert cure[-1] > 2.0 * cure[0]

    # The biased pipeline's sampling overhead is an additive constant in
    # the sample size: flat across the sweep (dominated by the density
    # evaluation over the full dataset).
    assert max(sampling) < 3.0 * min(sampling)
