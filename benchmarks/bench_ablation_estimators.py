"""Ablation bench: density back-ends feeding the same biased sampler."""


def test_ablation_estimators(run_once, bench_scale):
    result = run_once("ablation-estimator", scale=max(bench_scale, 0.15))
    table = result.table("estimator back-ends (a=-0.5, 1% sample)")
    found = dict(zip(table.column("estimator"), table.column("found_of_10")))
    sizes = dict(zip(table.column("estimator"), table.column("sample_size")))
    # Every back-end must produce a usable sample near the budget...
    for name, size in sizes.items():
        assert size > 0, name
    # ...and real cluster recovery (the framework is back-end agnostic).
    assert found["kde_1000"] >= 5
    assert found["grid_32"] >= 3
    assert found["knn_k10"] >= 3
