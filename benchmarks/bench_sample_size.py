"""Bench for section 4.3 "Varying The Sample Size": saturation points."""


def test_sample_size(run_once, bench_scale):
    result = run_once("samplesize", scale=max(bench_scale, 0.15))

    saturation = result.table("first size reaching the method's plateau")
    points = dict(
        zip(saturation.column("method"),
            saturation.column("saturation_sample_size"))
    )
    # The paper: biased sampling saturates no later than uniform
    # (~1k vs ~2k points on the 100k workload).
    assert points["biased a=-0.25"] <= points["uniform"]

    sweep = result.table("found clusters vs sample size")
    biased = sweep.column("biased_a-0.25")
    # Quality is monotone-ish: the largest samples do at least as well
    # as the smallest.
    assert biased[-1] >= biased[0]
