"""Bench for Figure 5: variable-density clusters vs sample size."""


def test_fig5_density(run_once, bench_scale):
    # Small absolute samples lose the signal entirely; keep a floor.
    result = run_once("fig5", scale=max(bench_scale, 0.2))

    for title in ("2 dims, 10% noise", "2 dims, 20% noise"):
        table = result.table(title)
        biased = table.column("biased_a-0.25")
        uniform = table.column("uniform_cure")
        # At the small-sample end the negative-exponent bias finds more
        # of the small sparse clusters than uniform sampling.
        assert sum(biased[:3]) > sum(uniform[:3]), title
        # Uniform sampling converges once samples are large (paper).
        assert uniform[-1] >= uniform[0], title

    table5 = result.table("5 dims, 10% noise (with grid-based baseline)")
    # In 5-D the kernel-based sampler must stay competitive: at least
    # matching the grid baseline on average across the sweep.
    biased5 = table5.column("biased_a-0.5")
    grid5 = table5.column("grid_e-0.5")
    assert sum(biased5) >= sum(grid5) - len(grid5)  # within 1 cluster/row
