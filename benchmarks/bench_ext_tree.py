"""Extension bench: decision trees on weighted biased samples."""


def test_ext_tree(run_once, bench_scale):
    result = run_once("ext-tree", scale=max(bench_scale, 0.15))
    table = result.table("test accuracy vs training-sample size")
    full = table.column("full_data")[0]
    biased = table.column("biased_a0.5_weighted")
    # A 10% weighted biased sample lands close to full-data accuracy.
    assert biased[-1] >= full - 0.08
    # More sample helps (weak monotonicity across the sweep ends).
    assert biased[-1] >= biased[0] - 0.02
