"""Bench for the section-2 analysis (Theorem 1 / Guha bound)."""


def test_theorem1(run_once, bench_scale):
    result = run_once("theorem1", scale=bench_scale)

    example = result.table("the paper's motivating example")
    fraction = dict(zip(example.column("quantity"), example.column("value")))
    # The paper's "25% of the dataset" example.
    assert 0.20 <= fraction["as fraction of dataset"] <= 0.25

    crossover = result.table("biased sample size under rule R")
    # Theorem 1's iff: prediction and outcome agree on every row.
    assert crossover.column("beats_uniform") == crossover.column(
        "theorem1_predicts"
    )
    # s_R decreases monotonically in p.
    ratios = crossover.column("s_R_over_s")
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    mc = result.table("Monte-Carlo check of the guarantee")
    assert all(v >= 0.9 for v in mc.column("empirical_success"))
