"""Ablation bench: two-pass exact vs integrated one-pass sampling."""


def test_ablation_onepass(run_once, bench_scale):
    result = run_once("ablation-onepass", scale=max(bench_scale, 0.15))
    table = result.table("two-pass vs one-pass (a=-0.5)")
    rows = dict(zip(table.column("sampler"), table.rows))
    two_pass = rows["two-pass (exact k)"]
    one_pass = rows["one-pass (estimated k)"]
    headers = table.headers

    def field(row, name):
        return row[headers.index(name)]

    # The exact normaliser keeps the achieved size tight.
    assert field(two_pass, "size_error_pct") < 15
    # The one-pass estimate drifts but stays usable.
    assert field(one_pass, "size_error_pct") < 60
    # Cluster recovery survives the approximation.
    assert field(one_pass, "found_of_10") >= field(two_pass, "found_of_10") - 3
