"""Bench for section 4.3 "Real Datasets": the geospatial stand-ins."""


def test_geo(run_once, bench_scale):
    result = run_once("geo", scale=bench_scale)
    table = result.table("found metro clusters")
    for row_name, metros, biased, uniform in zip(
        table.column("dataset"),
        table.column("metros"),
        table.column("biased_a1"),
        table.column("uniform_cure"),
    ):
        # Biased sampling must recover the metro cores at least as well
        # as uniform sampling, and find most of them.
        assert biased >= uniform, row_name
        assert biased >= metros - 1, row_name
