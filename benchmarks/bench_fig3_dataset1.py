"""Bench for Figure 3: the CURE dataset1 case study."""


def test_fig3_dataset1(run_once, bench_scale):
    # Figure 3 needs a non-trivial absolute sample; keep a floor.
    result = run_once("fig3", scale=max(bench_scale, 0.2))

    head = result.table("found clusters at equal sample size")
    by_method = dict(zip(head.column("method"), head.column("found_of_5")))
    # The biased sample must beat the uniform one at equal size.
    assert by_method["biased a=0.5"] >= by_method["uniform"]
    assert by_method["biased a=0.5"] >= 4

    sweep = result.table("uniform sample size needed to catch up")
    # Uniform sampling eventually catches up when given a larger sample
    # (the paper: about twice the biased size).
    assert max(sweep.column("found_of_5")) >= by_method["biased a=0.5"]
