"""Bench for Lemma 1: relative-density preservation vs the exponent."""


def test_lemma1(run_once, bench_scale):
    result = run_once("lemma1", scale=bench_scale)
    table = result.table("density-order preservation vs exponent")
    preserved = dict(
        zip(table.column("exponent"),
            table.column("preserved_pair_fraction"))
    )
    # Inside the lemma's regime (a > -1) order survives strongly.
    for a in (1.0, 0.5, 0.0, -0.25, -0.5):
        assert preserved[a] >= 0.7, a
    # Outside the regime it degrades relative to the safe zone.
    assert preserved[-2.0] <= preserved[-0.25]
    assert preserved[-1.5] <= preserved[0.0]
