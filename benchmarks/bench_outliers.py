"""Bench for section 4.5: approximate DB(p, k) outlier detection."""


def test_outliers(run_once, bench_scale):
    result = run_once("outliers", scale=bench_scale)

    table = result.table("planted-outlier workloads")
    # The paper's claim: all outliers found within the pass budget.
    assert all(r == 1.0 for r in table.column("recall"))
    assert all(p <= 3 for p in table.column("passes"))
    # Screening must actually screen: candidates far below n.
    for n, candidates in zip(
        table.column("n_points"), table.column("candidates")
    ):
        assert candidates <= 0.05 * n

    geo = result.table(
        "geospatial stand-in (NorthEast), agreement with exact detection"
    )
    # Verification is exact, so precision is always 1.
    assert all(p == 1.0 for p in geo.column("precision"))
    assert all(r >= 0.8 for r in geo.column("recall"))
