"""Bench for Figure 7: quality vs number of kernels."""


def test_fig7_kernels(run_once, bench_scale):
    result = run_once("fig7", scale=max(bench_scale, 0.15))
    table = result.table("found clusters vs kernels")

    for column in ("ds1_50pct_noise_a1", "ds2_20pct_noise_a-0.25"):
        found = table.column(column)
        # Many kernels must beat very few: the tail of the sweep
        # averages above the 100-kernel start.
        tail = sum(found[-3:]) / 3
        assert tail >= found[0], column
        # The recommended operating region reaches a healthy score.
        assert max(found[-3:]) >= 6, column
