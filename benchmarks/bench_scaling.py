"""Bench for section 4.3's running-time scaling claims."""

import statistics


def test_scaling(run_once, bench_scale):
    result = run_once("scaling", scale=bench_scale)

    by_size = result.table("varying dataset size (1000 kernels)")
    ratios = by_size.column("ratio_to_prev")[1:]
    # Doubling the dataset should roughly double the time (linear).
    # Wall-clock ratios are noisy under machine load, so judge the
    # trend: the typical ratio must sit near 2, far from quadratic (~4),
    # and even the worst single ratio must not look quadratic-squared.
    assert statistics.median(ratios) < 3.0, ratios
    assert max(ratios) < 6.0, ratios
    assert min(ratios) > 1.05, ratios

    by_kernels = result.table("varying kernel count (fixed dataset)")
    kernel_ratios = by_kernels.column("ratio_to_prev")[1:]
    # Kernel count doubles each row; density evaluation dominates, so
    # growth is at most linear-ish in the kernel count.
    assert statistics.median(kernel_ratios) < 3.0, kernel_ratios
    assert max(kernel_ratios) < 6.0, kernel_ratios
