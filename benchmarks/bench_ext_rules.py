"""Extension bench: sampled association-rule mining (future work)."""


def test_ext_rules(run_once, bench_scale):
    result = run_once("ext-rules", scale=max(bench_scale, 0.15))
    table = result.table("sample size sweep (min_support=6%)")
    recalls = table.column("recall")
    passes = table.column("full_passes")
    # Sampling keeps most of the frequent itemsets even at 2% samples,
    # and the verification budget is always a single full pass.
    assert min(recalls) >= 0.8
    assert all(p == 1 for p in passes)
    # The largest samples should essentially nail the answer.
    assert max(recalls) >= 0.95
