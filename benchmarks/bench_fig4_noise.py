"""Bench for Figure 4: found clusters vs noise (a = 1)."""


def test_fig4_noise(run_once, bench_scale):
    result = run_once("fig4", scale=bench_scale)

    for title in ("2 dims, sample 2%", "2 dims, sample 4%",
                  "3 dims, sample 2%"):
        table = result.table(title)
        biased = table.column("biased_a1")
        uniform = table.column("uniform_cure")
        # Heavy-noise regime (the last rows, fn >= 60%): biased sampling
        # must hold up dramatically better than uniform.
        assert sum(biased[-2:]) > sum(uniform[-2:]), title
        # Biased sampling stays effective throughout the sweep.
        assert min(biased) >= 5, title

    # Low-noise 2-D: both sampling methods are healthy (>= 8 of 10).
    first_rows = result.table("2 dims, sample 2%")
    assert first_rows.column("biased_a1")[0] >= 8
    assert first_rows.column("uniform_cure")[0] >= 8
