"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact via the experiment
harness at a reduced scale (the ``BENCH_SCALE`` environment variable
overrides it; ``1.0`` reproduces paper-sized workloads). Experiments
run once per benchmark — they are seconds-long pipelines, not
microbenchmarks — and attach their result tables to
``benchmark.extra_info`` so the saved JSON carries the regenerated
numbers alongside the timings.

Each run also records a :class:`repro.obs.RunManifest` (dataset passes,
kernel evaluations, sample sizes, phase timings). The manifest lands in
``benchmark.extra_info["metrics"]`` and, additionally, as one JSON file
per benchmark under ``BENCH_METRICS_DIR`` (default
``results/bench_metrics``), giving the BENCH_*.json trajectory
structured numbers rather than wall time alone.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

DEFAULT_SCALE = 0.1
DEFAULT_METRICS_DIR = os.path.join("results", "bench_metrics")


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def bench_metrics_dir() -> Path:
    path = Path(os.environ.get("BENCH_METRICS_DIR", DEFAULT_METRICS_DIR))
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture
def run_once(benchmark, bench_metrics_dir):
    """Run an experiment exactly once under the benchmark timer, attach
    its tables and recorded metrics to the benchmark record, and write
    the run manifest as per-bench JSON."""

    def runner(name: str, scale: float, seed: int = 0):
        from repro.experiments import run_experiment

        result = benchmark.pedantic(
            lambda: run_experiment(name, scale=scale, seed=seed,
                                   verbose=False, record=True),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["experiment"] = name
        benchmark.extra_info["scale"] = scale
        benchmark.extra_info["tables"] = {
            table.title: {"headers": table.headers, "rows": table.rows}
            for table in result.tables
        }
        if result.manifest is not None:
            metrics = result.manifest.to_dict()
            benchmark.extra_info["metrics"] = metrics
            out = bench_metrics_dir / f"{name}_scale{scale}_seed{seed}.json"
            out.write_text(json.dumps(metrics, indent=2, sort_keys=True))
        return result

    return runner
