"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact via the experiment
harness at a reduced scale (the ``BENCH_SCALE`` environment variable
overrides it; ``1.0`` reproduces paper-sized workloads). Experiments
run once per benchmark — they are seconds-long pipelines, not
microbenchmarks — and attach their result tables to
``benchmark.extra_info`` so the saved JSON carries the regenerated
numbers alongside the timings.
"""

from __future__ import annotations

import os

import pytest

DEFAULT_SCALE = 0.1


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer and
    attach its tables to the benchmark record."""

    def runner(name: str, scale: float, seed: int = 0):
        from repro.experiments import run_experiment

        result = benchmark.pedantic(
            lambda: run_experiment(name, scale=scale, seed=seed,
                                   verbose=False),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["experiment"] = name
        benchmark.extra_info["scale"] = scale
        benchmark.extra_info["tables"] = {
            table.title: {"headers": table.headers, "rows": table.rows}
            for table in result.tables
        }
        return result

    return runner
