"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact via the experiment
harness at a reduced scale (the ``BENCH_SCALE`` environment variable
overrides it; ``1.0`` reproduces paper-sized workloads). Experiments
run once per benchmark — they are seconds-long pipelines, not
microbenchmarks — and attach their result tables to
``benchmark.extra_info`` so the saved JSON carries the regenerated
numbers alongside the timings.

Each run also records a :class:`repro.obs.RunManifest` (dataset passes,
kernel evaluations, sample sizes, phase timings). The manifest lands in
``benchmark.extra_info["metrics"]`` and, additionally, as one JSON file
per benchmark under ``BENCH_METRICS_DIR`` (default
``results/bench_metrics``), giving the BENCH_*.json trajectory
structured numbers rather than wall time alone.

Finally, each benchmark appends one record to
``benchmarks/TRAJECTORY.jsonl`` (override with ``BENCH_TRAJECTORY``):
bench name, median seconds, the machine's calibration factor from
``tools/bench_gate.py`` (so medians are comparable across machines),
the git SHA, and the manifest path. Committed entries accumulate into a
performance history you can diff across PRs.
"""

from __future__ import annotations

import functools
import json
import os
import subprocess
from pathlib import Path

import pytest

DEFAULT_SCALE = 0.1
DEFAULT_METRICS_DIR = os.path.join("results", "bench_metrics")
DEFAULT_TRAJECTORY = os.path.join("benchmarks", "TRAJECTORY.jsonl")


@functools.lru_cache(maxsize=1)
def _calibration_seconds() -> float | None:
    """Machine-speed probe from the bench gate (cached per session)."""
    try:
        import sys

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from tools.bench_gate import calibrate

        return round(calibrate(), 6)
    except Exception:  # pragma: no cover - calibration is best-effort
        return None


@functools.lru_cache(maxsize=1)
def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:  # pragma: no cover - git missing entirely
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def bench_metrics_dir() -> Path:
    path = Path(os.environ.get("BENCH_METRICS_DIR", DEFAULT_METRICS_DIR))
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def bench_trajectory() -> Path:
    path = Path(os.environ.get("BENCH_TRAJECTORY", DEFAULT_TRAJECTORY))
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def _median_seconds(benchmark) -> float | None:
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    median = getattr(stats, "median", None)
    return float(median) if median is not None else None


@pytest.fixture
def run_once(benchmark, bench_metrics_dir, bench_trajectory, request):
    """Run an experiment exactly once under the benchmark timer, attach
    its tables and recorded metrics to the benchmark record, write the
    run manifest as per-bench JSON, and append one trajectory record."""

    def runner(name: str, scale: float, seed: int = 0):
        from repro.experiments import run_experiment

        result = benchmark.pedantic(
            lambda: run_experiment(name, scale=scale, seed=seed,
                                   verbose=False, record=True),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["experiment"] = name
        benchmark.extra_info["scale"] = scale
        benchmark.extra_info["tables"] = {
            table.title: {"headers": table.headers, "rows": table.rows}
            for table in result.tables
        }
        manifest_path = None
        if result.manifest is not None:
            metrics = result.manifest.to_dict()
            benchmark.extra_info["metrics"] = metrics
            out = bench_metrics_dir / f"{name}_scale{scale}_seed{seed}.json"
            out.write_text(json.dumps(metrics, indent=2, sort_keys=True))
            manifest_path = str(out)
        record = {
            "bench": request.node.name,
            "experiment": name,
            "scale": scale,
            "seed": seed,
            "median_seconds": _median_seconds(benchmark),
            "calibration_seconds": _calibration_seconds(),
            "git_sha": _git_sha(),
            "manifest": manifest_path,
        }
        with bench_trajectory.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return result

    return runner
