"""Microbenchmarks for the library's hot primitives.

Unlike the per-figure experiment benches (single-shot pipelines), these
run many rounds and guard the constants the experiments rely on:
density evaluation throughput, sampling passes, CURE merges, CF-tree
insertion, and the exact outlier detectors.
"""

import numpy as np
import pytest

from repro.clustering import Birch, CureClustering
from repro.core import DensityBiasedSampler
from repro.density import KernelDensityEstimator
from repro.outliers import IndexedOutlierDetector


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    return np.vstack(
        [
            rng.normal((0.3, 0.3), 0.05, size=(20_000, 2)),
            rng.uniform(0.0, 1.0, size=(20_000, 2)),
        ]
    )


@pytest.fixture(scope="module")
def fitted_kde(dataset):
    return KernelDensityEstimator(n_kernels=1000, random_state=0).fit(dataset)


def test_kde_fit(benchmark, dataset):
    benchmark(
        lambda: KernelDensityEstimator(
            n_kernels=1000, random_state=0
        ).fit(dataset)
    )


def test_kde_evaluate_10k(benchmark, fitted_kde, dataset):
    queries = dataset[:10_000]
    result = benchmark(lambda: fitted_kde.evaluate(queries))
    assert result.shape == (10_000,)


def test_biased_sampling_end_to_end(benchmark, dataset, fitted_kde):
    def draw():
        return DensityBiasedSampler(
            sample_size=500,
            exponent=1.0,
            estimator=fitted_kde,
            random_state=0,
        ).sample(dataset)

    sample = benchmark(draw)
    assert 300 < len(sample) < 700


def test_cure_1000_points(benchmark, dataset):
    pts = dataset[:1000]
    result = benchmark.pedantic(
        lambda: CureClustering(n_clusters=10).fit(pts),
        rounds=3,
        iterations=1,
    )
    assert result.n_clusters == 10


def test_birch_insertion_10k(benchmark, dataset):
    pts = dataset[:10_000]
    result = benchmark.pedantic(
        lambda: Birch(n_clusters=10, max_leaf_entries=400).fit(pts),
        rounds=3,
        iterations=1,
    )
    assert result.n_clusters == 10


def test_indexed_outliers_20k(benchmark, dataset):
    pts = dataset[:20_000]
    result = benchmark.pedantic(
        lambda: IndexedOutlierDetector(k=0.01, p=1).detect(pts),
        rounds=3,
        iterations=1,
    )
    assert result.n_candidates == 20_000
