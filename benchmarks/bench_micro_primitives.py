"""Microbenchmarks for the library's hot primitives.

Unlike the per-figure experiment benches (single-shot pipelines), these
run many rounds and guard the constants the experiments rely on:
density evaluation throughput, sampling passes, CURE merges, CF-tree
insertion, and the exact outlier detectors.

Every benchmark runs through ``benchmark.pedantic`` with an explicit
``warmup_rounds`` so the first (cold, allocation-heavy) call never
lands in the timed statistics, and the regression gate
(``tools/bench_gate.py``) compares *medians*, which a stray slow round
cannot drag the way it drags a mean.
"""

import statistics
import time

import numpy as np
import pytest

from repro.clustering import Birch, CureClustering
from repro.core import DensityBiasedSampler
from repro.density import KernelDensityEstimator, TreeDensityEstimator
from repro.outliers import IndexedOutlierDetector

#: Dataset size for the tree-vs-KDE density-evaluation speedup bench.
N_SPEEDUP = 200_000

#: Required median speedup of the tree backend over the KDE at
#: ``N_SPEEDUP`` evaluation points.
DENSITY_SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    return np.vstack(
        [
            rng.normal((0.3, 0.3), 0.05, size=(20_000, 2)),
            rng.uniform(0.0, 1.0, size=(20_000, 2)),
        ]
    )


@pytest.fixture(scope="module")
def fitted_kde(dataset):
    return KernelDensityEstimator(n_kernels=1000, random_state=0).fit(dataset)


@pytest.fixture(scope="module")
def speedup_case():
    """A 200k-point mixture with both density backends pre-fitted."""
    rng = np.random.default_rng(7)
    data = np.vstack(
        [
            rng.normal((0.3, 0.3), 0.05, size=(N_SPEEDUP // 2, 2)),
            rng.uniform(0.0, 1.0, size=(N_SPEEDUP // 2, 2)),
        ]
    )
    kde = KernelDensityEstimator(n_kernels=1000, random_state=0).fit(data)
    tree = TreeDensityEstimator(random_state=0).fit(data)
    return data, kde, tree


def test_kde_fit(benchmark, dataset):
    benchmark.pedantic(
        lambda: KernelDensityEstimator(
            n_kernels=1000, random_state=0
        ).fit(dataset),
        warmup_rounds=1,
        rounds=5,
        iterations=1,
    )


def test_kde_evaluate_10k(benchmark, fitted_kde, dataset):
    queries = dataset[:10_000]
    result = benchmark.pedantic(
        lambda: fitted_kde.evaluate(queries),
        warmup_rounds=1,
        rounds=5,
        iterations=1,
    )
    assert result.shape == (10_000,)


def test_tree_evaluate_200k(benchmark, speedup_case):
    """Tree-backend density evaluation at n=200k: the gate entry that
    pins the >=5x speedup over the kernel backend.

    The KDE reference is re-timed in the same process (median of three
    warm rounds) rather than read from another benchmark's stats, so
    the asserted ratio always compares the same machine state; both
    medians and the ratio are recorded in the JSON via ``extra_info``.
    """
    data, kde, tree = speedup_case
    kde.evaluate(data[:2_048])
    kde_rounds = []
    for _ in range(3):
        start = time.perf_counter()
        kde.evaluate(data)
        kde_rounds.append(time.perf_counter() - start)
    kde_median = statistics.median(kde_rounds)
    result = benchmark.pedantic(
        lambda: tree.evaluate(data),
        warmup_rounds=1,
        rounds=5,
        iterations=1,
    )
    assert result.shape == (N_SPEEDUP,)
    tree_median = benchmark.stats.stats.median
    benchmark.extra_info["kde_median_seconds"] = kde_median
    benchmark.extra_info["speedup_vs_kde"] = kde_median / tree_median
    assert kde_median / tree_median >= DENSITY_SPEEDUP_FLOOR


def test_biased_sampling_end_to_end(benchmark, dataset, fitted_kde):
    def draw():
        return DensityBiasedSampler(
            sample_size=500,
            exponent=1.0,
            estimator=fitted_kde,
            random_state=0,
        ).sample(dataset)

    sample = benchmark.pedantic(
        draw, warmup_rounds=1, rounds=5, iterations=1
    )
    assert 300 < len(sample) < 700


def test_cure_1000_points(benchmark, dataset):
    pts = dataset[:1000]
    result = benchmark.pedantic(
        lambda: CureClustering(n_clusters=10).fit(pts),
        warmup_rounds=1,
        rounds=3,
        iterations=1,
    )
    assert result.n_clusters == 10


def test_birch_insertion_10k(benchmark, dataset):
    pts = dataset[:10_000]
    result = benchmark.pedantic(
        lambda: Birch(n_clusters=10, max_leaf_entries=400).fit(pts),
        warmup_rounds=1,
        rounds=3,
        iterations=1,
    )
    assert result.n_clusters == 10


def test_indexed_outliers_20k(benchmark, dataset):
    pts = dataset[:20_000]
    result = benchmark.pedantic(
        lambda: IndexedOutlierDetector(k=0.01, p=1).detect(pts),
        warmup_rounds=1,
        rounds=3,
        iterations=1,
    )
    assert result.n_candidates == 20_000
