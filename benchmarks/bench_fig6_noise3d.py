"""Bench for Figure 6: the 3-D noise sweep at a = 0.5."""


def test_fig6_noise3d(run_once, bench_scale):
    result = run_once("fig6", scale=bench_scale)
    table = result.table("3 dims, sample 2%, a=0.5")
    biased = table.column("biased_a0.5")
    uniform = table.column("uniform_cure")
    # Same reading as Figure 4(c): biased holds up under heavy noise.
    assert sum(biased[-2:]) >= sum(uniform[-2:])
    assert min(biased) >= 5
