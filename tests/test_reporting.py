"""Tests for the report formatting internals."""

from repro.experiments.reporting import ExperimentResult, Table, _fmt


class TestFormatting:
    def test_bools(self):
        assert _fmt(True) == "yes"
        assert _fmt(False) == "no"

    def test_zero(self):
        assert _fmt(0.0) == "0"

    def test_small_floats_scientific(self):
        assert "e" in _fmt(0.00001) or _fmt(0.00001) == "1e-05"

    def test_large_floats_compact(self):
        assert len(_fmt(123456.789)) <= 9

    def test_trailing_zeros_stripped(self):
        assert _fmt(1.5) == "1.5"
        assert _fmt(2.0) == "2"

    def test_ints_and_strings_verbatim(self):
        assert _fmt(42) == "42"
        assert _fmt("abc") == "abc"


class TestRender:
    def test_full_report(self):
        result = ExperimentResult(name="demo", description="a demo")
        table = result.new_table("numbers", ["x", "y"])
        table.add_row(1, 2.0)
        result.notes.append("a note")
        text = result.render()
        assert "# demo: a demo" in text
        assert "## numbers" in text
        assert "a note" in text

    def test_empty_table_renders(self):
        table = Table(title="empty", headers=["only_header"])
        text = table.render()
        assert "only_header" in text

    def test_column_missing_header_raises(self):
        table = Table(title="t", headers=["a"])
        table.add_row(1)
        try:
            table.column("b")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestRenderPlots:
    def test_sweep_tables_become_charts(self):
        from repro.experiments.runner import render_plots

        result = ExperimentResult(name="e", description="d")
        sweep = result.new_table("sweep", ["x", "metric", "verdict"])
        sweep.add_row(1, 5.0, True)
        sweep.add_row(2, 7.0, False)
        charts = render_plots(result)
        assert len(charts) == 1
        # The numeric series is plotted, the boolean verdict is not.
        assert "metric" in charts[0]
        assert "verdict" not in charts[0]

    def test_non_numeric_axis_skipped(self):
        from repro.experiments.runner import render_plots

        result = ExperimentResult(name="e", description="d")
        table = result.new_table("names", ["method", "score"])
        table.add_row("a", 1.0)
        table.add_row("b", 2.0)
        assert render_plots(result) == []

    def test_single_row_skipped(self):
        from repro.experiments.runner import render_plots

        result = ExperimentResult(name="e", description="d")
        table = result.new_table("one", ["x", "y"])
        table.add_row(1, 2)
        assert render_plots(result) == []
