"""Tests for terminal plotting."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.utils import line_plot, scatter_plot


class TestScatterPlot:
    def test_dimensions(self):
        art = scatter_plot(np.random.default_rng(0).random((30, 2)),
                           width=20, height=8)
        lines = art.splitlines()
        assert len(lines) == 10  # frame + 8 rows + frame
        assert all(len(line) == 22 for line in lines)

    def test_points_drawn(self):
        art = scatter_plot(np.array([[0.0, 0.0], [1.0, 1.0]]),
                           width=10, height=5)
        assert art.count(".") == 2

    def test_orientation(self):
        """Higher y must render nearer the top."""
        art = scatter_plot(
            np.array([[0.5, 1.0]]),
            width=9, height=5,
            bounds=((0.0, 0.0), (1.0, 1.0)),
        )
        body = art.splitlines()[1:-1]
        assert "." in body[0]  # top row

    def test_multiple_sets_get_glyphs(self):
        art = scatter_plot(
            [np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])],
            width=10, height=5,
        )
        assert "." in art and "o" in art

    def test_legend(self):
        art = scatter_plot(
            [np.zeros((1, 2))], labels=["data"], width=10, height=4
        )
        assert ".=data" in art

    def test_empty_set_allowed(self):
        art = scatter_plot(
            [np.zeros((1, 2)), np.empty((0, 2))], width=10, height=4
        )
        assert "o" not in art

    def test_rejects_3d_points(self):
        with pytest.raises(ParameterError, match="2-D"):
            scatter_plot(np.zeros((3, 3)))

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ParameterError):
            scatter_plot(np.zeros((1, 2)), width=1)


class TestLinePlot:
    def test_renders_series(self):
        art = line_plot(
            [0, 1, 2, 3],
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
            width=20, height=8,
        )
        assert "o=up" in art and "*=down" in art
        assert "x: 0 .. 3" in art

    def test_alignment_checked(self):
        with pytest.raises(ParameterError, match="align"):
            line_plot([0, 1, 2], {"s": [1, 2]})

    def test_requires_series(self):
        with pytest.raises(ParameterError):
            line_plot([0, 1], {})
