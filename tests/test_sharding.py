"""Tests for sharded out-of-core fitting (repro.sharding).

The headline contract: a sharded fit is *byte-identical* to the serial
fit — samples, weights, density values and merged counters all exact —
for any shard count, any worker count, any stream type and any fault
policy. DESIGN.md §13 explains why; these tests pin it.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.biased import DensityBiasedSampler
from repro.core.onepass import OnePassBiasedSampler
from repro.core.uniform import UniformSampler
from repro.density.kde import KernelDensityEstimator
from repro.exceptions import ParameterError
from repro.obs import Recorder, use_recorder
from repro.parallel import use_n_jobs
from repro.sharding import (
    GatherShard,
    NormalizerShard,
    ShardPlan,
    ShardView,
    merge_partials,
    resolve_shards,
    use_shards,
)
from repro.utils.filestreams import CsvFileStream, NpyFileStream
from repro.utils.streams import DataStream


@pytest.fixture
def array():
    return np.random.default_rng(7).normal(size=(611, 3))


@pytest.fixture
def npy_path(array, tmp_path):
    path = os.path.join(tmp_path, "data.npy")
    np.save(path, array)
    return path


@pytest.fixture
def csv_path(array, tmp_path):
    path = os.path.join(tmp_path, "data.csv")
    np.savetxt(path, array, delimiter=",")
    return path


def _counters_sans_shard(recorder):
    """Counters minus the shard bookkeeping (`shard*` exists only on
    sharded runs, by construction — see DESIGN.md §13)."""
    return {
        name: value
        for name, value in recorder.counters.items()
        if not name.startswith("shard")
    }


# ---------------------------------------------------------------------------
# Plan / context units
# ---------------------------------------------------------------------------


class TestResolveShards:
    def test_default_is_unsharded(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None) == 1

    def test_explicit_wins(self):
        with use_shards(4):
            assert resolve_shards(2) == 2
            assert resolve_shards(None) == 4

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "5")
        assert resolve_shards(None) == 5

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "lots")
        with pytest.raises(ParameterError, match="REPRO_SHARDS"):
            resolve_shards(None)

    def test_rejects_non_positive(self):
        with pytest.raises(ParameterError, match="shards"):
            resolve_shards(0)
        with pytest.raises(ParameterError, match="shards"):
            with use_shards(-1):
                pass


class TestShardPlan:
    def test_specs_partition_the_chunk_sequence(self, array):
        stream = DataStream(array, chunk_size=100)
        plan = ShardPlan(stream, 3)
        assert plan.n_rows == len(stream)
        assert plan.specs[0].chunk_lo == 0
        assert plan.specs[-1].chunk_hi == len(plan.chunk_sizes)
        for left, right in zip(plan.specs, plan.specs[1:]):
            assert right.chunk_lo == left.chunk_hi
            assert right.row_start == left.row_stop
        assert sum(spec.n_rows for spec in plan.specs) == plan.n_rows

    def test_views_replay_the_serial_pass(self, array):
        stream = DataStream(array, chunk_size=97)
        plan = ShardPlan(stream, 4)
        serial = list(stream.iter_with_offsets())
        sharded = [
            pair for view in plan.views() for pair in view.chunks()
        ]
        assert [s for s, _ in sharded] == [s for s, _ in serial]
        for (_, expected), (_, actual) in zip(serial, sharded):
            np.testing.assert_array_equal(expected, actual)

    def test_more_shards_than_chunks_leaves_surplus_empty(self, array):
        stream = DataStream(array, chunk_size=400)  # 2 chunks
        plan = ShardPlan(stream, 7)
        views = plan.views()
        assert len(views) == 2
        assert all(isinstance(view, ShardView) for view in views)
        assert sum(spec.n_chunks == 0 for spec in plan.specs) == 5

    def test_rejects_unshardable_stream(self):
        with pytest.raises(ParameterError, match="chunk_sizes"):
            ShardPlan(object(), 2)

    def test_rejects_non_positive_shards(self, array):
        with pytest.raises(ParameterError, match="n_shards"):
            ShardPlan(DataStream(array), 0)


class TestPartials:
    def test_merge_partials_left_folds_in_order(self):
        a = NormalizerShard(row_start=0)
        a.add_values(np.array([1.0, 2.0]))
        b = NormalizerShard(row_start=2)
        b.add_values(np.array([3.0]))
        folded = merge_partials([a, b])
        out = np.empty(3)
        folded.fill(out)
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_merge_partials_rejects_empty(self):
        with pytest.raises(ValueError, match="no shard partials"):
            merge_partials([])

    def test_normalizer_shards_must_be_adjacent(self):
        a = NormalizerShard(row_start=0)
        a.add_values(np.array([1.0]))
        b = NormalizerShard(row_start=5)
        with pytest.raises(ValueError, match="adjacent|starts at"):
            a.merge(b)

    def test_gather_shard_counts_all_rows_keeps_selected(self):
        shard = GatherShard()
        chunk = np.arange(8, dtype=float).reshape(4, 2)
        shard.add_chunk(chunk, np.array([True, False, False, True]))
        shard.add_chunk(chunk, np.zeros(4, dtype=bool))
        assert shard.seen == 8
        np.testing.assert_array_equal(
            np.vstack(shard.parts), chunk[[0, 3]]
        )


# ---------------------------------------------------------------------------
# Byte-identity: sharded vs serial
# ---------------------------------------------------------------------------


SAMPLERS = {
    "density": lambda: DensityBiasedSampler(
        sample_size=80,
        exponent=-0.5,
        estimator=KernelDensityEstimator(n_kernels=64, random_state=5),
        random_state=13,
    ),
    "onepass": lambda: OnePassBiasedSampler(
        sample_size=80,
        exponent=-0.5,
        estimator=KernelDensityEstimator(n_kernels=64, random_state=5),
        random_state=13,
    ),
    "uniform": lambda: UniformSampler(sample_size=80, random_state=13),
}


def _run_sampler(make_sampler, make_stream, shards):
    recorder = Recorder()
    with use_recorder(recorder), use_shards(shards):
        result = make_sampler().sample(stream=make_stream())
    return result, recorder


class TestShardedEquivalence:
    @pytest.mark.parametrize("sampler_key", sorted(SAMPLERS))
    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_samplers_byte_identical_in_memory(
        self, array, sampler_key, shards
    ):
        make = SAMPLERS[sampler_key]
        base, rec0 = _run_sampler(
            make, lambda: DataStream(array, chunk_size=89), 1
        )
        got, rec1 = _run_sampler(
            make, lambda: DataStream(array, chunk_size=89), shards
        )
        np.testing.assert_array_equal(base.points, got.points)
        np.testing.assert_array_equal(base.indices, got.indices)
        np.testing.assert_array_equal(base.probabilities, got.probabilities)
        np.testing.assert_array_equal(base.weights, got.weights)
        assert _counters_sans_shard(rec0) == _counters_sans_shard(rec1)

    @pytest.mark.parametrize("kind", ["npy", "csv"])
    def test_samplers_byte_identical_on_files(
        self, kind, npy_path, csv_path
    ):
        path = npy_path if kind == "npy" else csv_path
        cls = NpyFileStream if kind == "npy" else CsvFileStream
        make = SAMPLERS["density"]
        base, rec0 = _run_sampler(make, lambda: cls(path, chunk_size=89), 1)
        for shards in (2, 3, 7):
            got, rec1 = _run_sampler(
                make, lambda: cls(path, chunk_size=89), shards
            )
            np.testing.assert_array_equal(base.points, got.points)
            np.testing.assert_array_equal(
                base.probabilities, got.probabilities
            )
            assert _counters_sans_shard(rec0) == _counters_sans_shard(rec1)

    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_kde_fit_byte_identical(self, array, shards):
        def fit(n_shards):
            with use_shards(n_shards):
                return KernelDensityEstimator(
                    n_kernels=64, random_state=3
                ).fit(DataStream(array, chunk_size=89))

        base, got = fit(1), fit(shards)
        np.testing.assert_array_equal(base.centers_, got.centers_)
        np.testing.assert_array_equal(base.bandwidths_, got.bandwidths_)
        assert base.n_points_ == got.n_points_
        grid = np.random.default_rng(0).normal(size=(50, 3))
        np.testing.assert_array_equal(base.evaluate(grid), got.evaluate(grid))

    def test_sharding_composes_with_worker_processes(self, array):
        make = SAMPLERS["density"]
        base, rec0 = _run_sampler(
            make, lambda: DataStream(array, chunk_size=89), 1
        )
        with use_n_jobs(2):
            got, rec1 = _run_sampler(
                make, lambda: DataStream(array, chunk_size=89), 3
            )
        np.testing.assert_array_equal(base.points, got.points)
        assert _counters_sans_shard(rec0) == _counters_sans_shard(rec1)

    def test_shard_counters_record_the_fanout(self, array):
        _, recorder = _run_sampler(
            SAMPLERS["density"], lambda: DataStream(array, chunk_size=89), 3
        )
        counters = recorder.counters
        assert counters["shards_fitted"] == 3
        assert counters["shard_merges"] > 0
        # Three sharded scans (fit, eval, gather) over 611 rows each.
        assert counters["shard_rows"] == 3 * len(array)


# ---------------------------------------------------------------------------
# Property: random streams x shard counts x fault policies
# ---------------------------------------------------------------------------


class TestShardedEquivalenceProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture,
            HealthCheck.too_slow,
        ],
    )
    @given(
        n_rows=st.integers(min_value=30, max_value=300),
        chunk_size=st.integers(min_value=7, max_value=101),
        shards=st.sampled_from([1, 2, 3, 7]),
        policy=st.sampled_from(["strict", "quarantine", "repair"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_sharded_fit_equals_serial(
        self, tmp_path, n_rows, chunk_size, shards, policy, seed
    ):
        data = np.random.default_rng(seed).normal(size=(n_rows, 2))
        if policy != "strict":
            data[n_rows // 3, 0] = np.nan  # policy has work to do
        path = os.path.join(tmp_path, f"h{seed}_{n_rows}_{chunk_size}.npy")
        np.save(path, data)

        def run(n_shards):
            recorder = Recorder()
            sampler = DensityBiasedSampler(
                sample_size=min(25, n_rows),
                exponent=-0.5,
                estimator=KernelDensityEstimator(
                    n_kernels=16, random_state=2
                ),
                random_state=seed,
            )
            stream = NpyFileStream(
                path, chunk_size=chunk_size, fault_policy=policy
            )
            with use_recorder(recorder), use_shards(n_shards):
                return sampler.sample(stream=stream), recorder

        base, rec0 = run(1)
        got, rec1 = run(shards)
        np.testing.assert_array_equal(base.points, got.points)
        np.testing.assert_array_equal(base.indices, got.indices)
        np.testing.assert_array_equal(base.probabilities, got.probabilities)
        np.testing.assert_array_equal(base.weights, got.weights)
        np.testing.assert_array_equal(base.densities, got.densities)
        assert _counters_sans_shard(rec0) == _counters_sans_shard(rec1)


# ---------------------------------------------------------------------------
# fit_from_partials / runner integration
# ---------------------------------------------------------------------------


class TestFitFromPartials:
    def test_partials_fold_matches_direct_fit(self, array):
        from repro.density.reservoir import ReservoirSampler
        from repro.sharding import fit_shards

        stream = DataStream(array, chunk_size=89)
        planner = ReservoirSampler(32, random_state=11)
        plan = ShardPlan(stream, 3)
        accept_plan = planner.plan(plan.n_rows)
        state = fit_shards(plan, accept_plan.wanted_indices())
        kde = KernelDensityEstimator(
            n_kernels=32, random_state=11
        ).fit_from_partials([state], accept_plan)
        serial = KernelDensityEstimator(n_kernels=32, random_state=11).fit(
            DataStream(array, chunk_size=89)
        )
        np.testing.assert_array_equal(kde.centers_, serial.centers_)
        np.testing.assert_array_equal(kde.bandwidths_, serial.bandwidths_)

    def test_row_count_mismatch_raises(self, array):
        from repro.density.reservoir import ReservoirSampler
        from repro.sharding import fit_shards

        stream = DataStream(array, chunk_size=89)
        planner = ReservoirSampler(8, random_state=0)
        wrong_plan = planner.plan(len(array) + 5)
        state = fit_shards(
            ShardPlan(stream, 2),
            wrong_plan.wanted_indices(),
        )
        with pytest.raises(ParameterError, match="reservoir plan"):
            KernelDensityEstimator(n_kernels=8).fit_from_partials(
                [state], wrong_plan
            )


class TestRunExperimentShards:
    def test_shards_param_recorded_and_equivalent(self):
        from repro.experiments.runner import run_experiment

        serial = run_experiment(
            "lemma1", scale=0.05, seed=0, verbose=False
        )
        sharded = run_experiment(
            "lemma1", scale=0.05, seed=0, verbose=False, shards=3
        )
        assert sharded.manifest.params["shards"] == 3
        base = {
            k: v
            for k, v in serial.manifest.counters.items()
            if not k.startswith("shard")
        }
        got = {
            k: v
            for k, v in sharded.manifest.counters.items()
            if not k.startswith("shard")
        }
        assert base == got
