"""Tests for K-medoids (PAM)."""

import numpy as np
import pytest

from repro.clustering import KMedoids
from repro.exceptions import ParameterError


@pytest.fixture
def blobs():
    rng = np.random.default_rng(3)
    return np.vstack(
        [rng.normal(c, 0.1, size=(40, 2)) for c in ((0, 0), (3, 3), (0, 3))]
    )


class TestKMedoids:
    def test_recovers_blobs(self, blobs):
        result = KMedoids(n_clusters=3).fit(blobs)
        assert sorted(result.sizes.tolist()) == [40, 40, 40]

    def test_medoids_are_data_points(self, blobs):
        result = KMedoids(n_clusters=3).fit(blobs)
        rows = {tuple(r) for r in blobs}
        assert all(tuple(c) in rows for c in result.centers)

    def test_cost_recorded(self, blobs):
        model = KMedoids(n_clusters=3)
        model.fit(blobs)
        assert model.cost_ is not None and model.cost_ > 0

    def test_cost_no_worse_than_build_only(self, blobs):
        """SWAP must not increase the BUILD cost."""
        swapped = KMedoids(n_clusters=3, max_swaps=100)
        swapped.fit(blobs)
        build_only = KMedoids(n_clusters=3, max_swaps=0)
        build_only.fit(blobs)
        assert swapped.cost_ <= build_only.cost_ + 1e-9

    def test_single_medoid_minimises_cost(self):
        pts = np.array([[0.0], [1.0], [2.0], [10.0]])
        model = KMedoids(n_clusters=1)
        result = model.fit(pts)
        # The medoid must be the 1-median of the points: 1.0 or 2.0.
        assert result.centers[0, 0] in (1.0, 2.0)

    def test_weighted_medoid(self):
        """A dominant weight pulls the medoid onto that point."""
        pts = np.array([[0.0], [1.0], [10.0]])
        result = KMedoids(n_clusters=1).fit(
            pts, sample_weight=np.array([1.0, 1.0, 50.0])
        )
        assert result.centers[0, 0] == 10.0

    def test_outlier_resistance_vs_kmeans(self):
        """The medoid stays inside the blob despite a far outlier."""
        pts = np.vstack(
            [np.random.default_rng(0).normal(0, 0.1, (30, 2)),
             [[100.0, 100.0]]]
        )
        result = KMedoids(n_clusters=1).fit(pts)
        assert np.linalg.norm(result.centers[0]) < 1.0

    def test_weight_shape_checked(self, blobs):
        with pytest.raises(ParameterError, match="sample_weight"):
            KMedoids(n_clusters=2).fit(blobs, sample_weight=np.ones(3))

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            KMedoids(n_clusters=0)
