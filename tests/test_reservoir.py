"""Tests for reservoir sampling (Li's Algorithm L)."""

import numpy as np
import pytest

from repro.density.reservoir import (
    ReservoirPlan,
    ReservoirSampler,
    reservoir_sample,
)
from repro.utils.streams import DataStream


def _algorithm_r_inclusion(capacity, n, seed):
    """Vitter's Algorithm R reference: which indices end up retained.

    The textbook offer-every-row loop — the distributional oracle the
    vectorised Algorithm L implementation must agree with.
    """
    rng = np.random.default_rng(seed)
    kept = list(range(capacity))
    for i in range(capacity, n):
        j = int(rng.integers(0, i + 1))
        if j < capacity:
            kept[j] = i
    return set(kept)


class TestReservoirSampler:
    def test_keeps_everything_when_under_capacity(self):
        sampler = ReservoirSampler(10, random_state=0)
        data = np.arange(6, dtype=float).reshape(3, 2)
        sampler.extend(data)
        np.testing.assert_array_equal(sampler.sample, data)

    def test_capacity_respected(self):
        sampler = ReservoirSampler(5, random_state=0)
        sampler.extend(np.random.default_rng(0).normal(size=(100, 2)))
        assert sampler.sample.shape == (5, 2)
        assert sampler.n_seen == 100

    def test_sample_rows_come_from_stream(self):
        data = np.arange(200, dtype=float).reshape(100, 2)
        sampler = ReservoirSampler(10, random_state=1)
        sampler.extend(data)
        rows = {tuple(r) for r in data}
        assert all(tuple(r) in rows for r in sampler.sample)

    def test_uniformity(self):
        """Each of 20 items should land in a size-5 reservoir ~25% of
        the time over repeated runs."""
        hits = np.zeros(20)
        n_runs = 2000
        for seed in range(n_runs):
            sampler = ReservoirSampler(5, random_state=seed)
            sampler.extend(np.arange(20, dtype=float).reshape(20, 1))
            for value in sampler.sample.ravel():
                hits[int(value)] += 1
        rates = hits / n_runs
        # True probability is 5/20 = 0.25 for every item.
        assert (np.abs(rates - 0.25) < 0.05).all()

    def test_empty_sample(self):
        assert ReservoirSampler(3).sample.shape == (0, 0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ReservoirSampler(0)


class TestFillBoundary:
    """The Algorithm L (w, next_accept) hand-off when a chunk ends
    exactly at capacity — the boundary the sharded plan() must also
    replay exactly."""

    @pytest.mark.parametrize("splits", [(8,), (8, 12), (3, 5, 12), (4, 4, 4, 8)])
    def test_exact_fill_chunking_matches_one_shot(self, splits):
        capacity = 8
        data = np.arange(40, dtype=float).reshape(20, 2)
        one_shot = ReservoirSampler(capacity, random_state=123)
        one_shot.extend(data)
        chunked = ReservoirSampler(capacity, random_state=123)
        start = 0
        for size in splits:
            chunked.extend(data[start : start + size])
            start += size
        chunked.extend(data[start:])
        np.testing.assert_array_equal(one_shot.sample, chunked.sample)
        assert one_shot.n_seen == chunked.n_seen == 20
        assert one_shot._w == chunked._w
        assert one_shot._next_accept == chunked._next_accept

    def test_extend_exactly_filling_schedules_next_accept(self):
        sampler = ReservoirSampler(6, random_state=0)
        sampler.extend(np.zeros((6, 2)))
        # The skip draw must have happened at the fill boundary, not be
        # deferred to the next extend: w advanced and a future absolute
        # index is scheduled.
        assert sampler._filled == sampler.capacity
        assert 0.0 < sampler._w < 1.0
        assert sampler._next_accept >= sampler.n_seen

    def test_state_identical_however_the_boundary_is_reached(self):
        exact = ReservoirSampler(5, random_state=9)
        exact.extend(np.zeros((5, 1)))
        ragged = ReservoirSampler(5, random_state=9)
        ragged.extend(np.zeros((3, 1)))
        ragged.extend(np.zeros((2, 1)))
        assert exact._w == ragged._w
        assert exact._next_accept == ragged._next_accept


class TestAlgorithmLDistribution:
    """Statistical acceptance: Algorithm L inclusion frequencies agree
    with a hand-written Vitter Algorithm R oracle."""

    def test_inclusion_rates_match_algorithm_r(self):
        capacity, n, n_runs = 6, 30, 1500
        hits_l = np.zeros(n)
        hits_r = np.zeros(n)
        data = np.arange(n, dtype=float).reshape(n, 1)
        for seed in range(n_runs):
            sampler = ReservoirSampler(capacity, random_state=seed)
            sampler.extend(data)
            for value in sampler.sample.ravel():
                hits_l[int(value)] += 1
            for index in _algorithm_r_inclusion(capacity, n, seed):
                hits_r[index] += 1
        rates_l = hits_l / n_runs
        rates_r = hits_r / n_runs
        expected = capacity / n
        # Both implementations must sit on the uniform rate, and on
        # each other, within Monte-Carlo noise (~3 sigma of a binomial
        # at p=0.2 over 1500 runs is ~0.031).
        assert (np.abs(rates_l - expected) < 0.04).all()
        assert (np.abs(rates_r - expected) < 0.04).all()
        assert (np.abs(rates_l - rates_r) < 0.055).all()


class TestReservoirPlan:
    def test_plan_matches_extend_byte_for_byte(self):
        capacity, n = 13, 557
        data = np.random.default_rng(5).normal(size=(n, 2))
        serial = ReservoirSampler(capacity, random_state=77)
        for start in range(0, n, 101):
            serial.extend(data[start : start + 101])
        planner = ReservoirSampler(capacity, random_state=77)
        plan = planner.plan(n)
        rows = {int(i): data[int(i)] for i in plan.wanted_indices()}
        np.testing.assert_array_equal(serial.sample, plan.assemble(rows))
        # Generator state after planning equals the post-fit serial
        # state: downstream draws are unaffected by sharding.
        assert (
            serial._rng.bit_generator.state
            == planner._rng.bit_generator.state
        )

    def test_plan_counts_accepts_like_extend(self):
        planner = ReservoirSampler(10, random_state=1)
        plan = planner.plan(200)
        assert plan.accepts == plan.fill + len(plan.events)
        assert plan.fill == 10

    def test_short_stream_plan_is_fill_only(self):
        plan = ReservoirSampler(10, random_state=0).plan(4)
        assert plan.fill == 4
        assert plan.events == ()
        rows = {i: np.array([float(i)]) for i in range(4)}
        np.testing.assert_array_equal(
            plan.assemble(rows), np.arange(4.0).reshape(4, 1)
        )

    def test_planned_sampler_rejects_extend(self):
        sampler = ReservoirSampler(3, random_state=0)
        sampler.plan(10)
        with pytest.raises(ValueError, match="consumed by plan"):
            sampler.extend(np.zeros((2, 2)))

    def test_plan_requires_fresh_sampler(self):
        sampler = ReservoirSampler(3, random_state=0)
        sampler.extend(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="fresh sampler"):
            sampler.plan(10)

    def test_assemble_reports_missing_rows(self):
        planner = ReservoirSampler(4, random_state=0)
        plan = planner.plan(8)
        with pytest.raises(ValueError, match="missing"):
            plan.assemble({0: np.zeros(2)})

    def test_plan_is_frozen(self):
        plan = ReservoirSampler(3, random_state=0).plan(5)
        assert isinstance(plan, ReservoirPlan)
        with pytest.raises(AttributeError):
            plan.fill = 99


class TestReservoirMerge:
    def test_merge_is_uniform_over_the_union(self):
        capacity, n_a, n_b = 5, 12, 8
        total = n_a + n_b
        hits = np.zeros(total)
        n_runs = 3000
        data = np.arange(total, dtype=float).reshape(total, 1)
        for seed in range(n_runs):
            a = ReservoirSampler(capacity, random_state=seed)
            a.extend(data[:n_a])
            b = ReservoirSampler(capacity, random_state=seed + 10_000)
            b.extend(data[n_a:])
            a.merge(b)
            for value in a.sample.ravel():
                hits[int(value)] += 1
        rates = hits / n_runs
        assert (np.abs(rates - capacity / total) < 0.05).all()

    def test_merge_is_deterministic_under_a_seed(self):
        def build(seed):
            a = ReservoirSampler(6, random_state=seed)
            a.extend(np.arange(30, dtype=float).reshape(15, 2))
            b = ReservoirSampler(6, random_state=seed + 1)
            b.extend(100 + np.arange(40, dtype=float).reshape(20, 2))
            return a.merge(b)

        first, second = build(42), build(42)
        np.testing.assert_array_equal(first.sample, second.sample)
        assert first.n_seen == second.n_seen == 35

    def test_merge_under_filled_reservoirs_then_extend(self):
        a = ReservoirSampler(10, random_state=0)
        a.extend(np.zeros((3, 2)))
        b = ReservoirSampler(10, random_state=1)
        b.extend(np.ones((4, 2)))
        a.merge(b)
        assert a.n_seen == 7
        assert a.sample.shape == (7, 2)
        a.extend(2 * np.ones((50, 2)))
        assert a.n_seen == 57
        assert a.sample.shape == (10, 2)

    def test_merge_with_empty_other_is_identity(self):
        a = ReservoirSampler(4, random_state=0)
        a.extend(np.arange(10, dtype=float).reshape(5, 2))
        before = a.sample
        a.merge(ReservoirSampler(4, random_state=1))
        np.testing.assert_array_equal(a.sample, before)

    def test_merge_rejects_capacity_mismatch(self):
        with pytest.raises(ValueError, match="capacities"):
            ReservoirSampler(4).merge(ReservoirSampler(5))

    def test_merge_rejects_dimension_mismatch(self):
        a = ReservoirSampler(4, random_state=0)
        a.extend(np.zeros((4, 2)))
        b = ReservoirSampler(4, random_state=1)
        b.extend(np.zeros((4, 3)))
        with pytest.raises(ValueError, match="dimensionalities"):
            a.merge(b)

    def test_merge_rejects_non_sampler(self):
        with pytest.raises(TypeError, match="ReservoirSampler"):
            ReservoirSampler(4).merge(object())


class TestReservoirSampleFunction:
    def test_one_pass(self):
        stream = DataStream(np.random.default_rng(0).normal(size=(50, 2)))
        sample = reservoir_sample(None, 10, random_state=0, stream=stream)
        assert sample.shape == (10, 2)
        assert stream.passes == 1

    def test_accepts_raw_arrays(self):
        sample = reservoir_sample(np.zeros((30, 3)), 4, random_state=0)
        assert sample.shape == (4, 3)
