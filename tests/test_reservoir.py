"""Tests for reservoir sampling (Vitter's Algorithm R)."""

import numpy as np
import pytest

from repro.density.reservoir import ReservoirSampler, reservoir_sample
from repro.utils.streams import DataStream


class TestReservoirSampler:
    def test_keeps_everything_when_under_capacity(self):
        sampler = ReservoirSampler(10, random_state=0)
        data = np.arange(6, dtype=float).reshape(3, 2)
        sampler.extend(data)
        np.testing.assert_array_equal(sampler.sample, data)

    def test_capacity_respected(self):
        sampler = ReservoirSampler(5, random_state=0)
        sampler.extend(np.random.default_rng(0).normal(size=(100, 2)))
        assert sampler.sample.shape == (5, 2)
        assert sampler.n_seen == 100

    def test_sample_rows_come_from_stream(self):
        data = np.arange(200, dtype=float).reshape(100, 2)
        sampler = ReservoirSampler(10, random_state=1)
        sampler.extend(data)
        rows = {tuple(r) for r in data}
        assert all(tuple(r) in rows for r in sampler.sample)

    def test_uniformity(self):
        """Each of 20 items should land in a size-5 reservoir ~25% of
        the time over repeated runs."""
        hits = np.zeros(20)
        n_runs = 2000
        for seed in range(n_runs):
            sampler = ReservoirSampler(5, random_state=seed)
            sampler.extend(np.arange(20, dtype=float).reshape(20, 1))
            for value in sampler.sample.ravel():
                hits[int(value)] += 1
        rates = hits / n_runs
        # True probability is 5/20 = 0.25 for every item.
        assert (np.abs(rates - 0.25) < 0.05).all()

    def test_empty_sample(self):
        assert ReservoirSampler(3).sample.shape == (0, 0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ReservoirSampler(0)


class TestReservoirSampleFunction:
    def test_one_pass(self):
        stream = DataStream(np.random.default_rng(0).normal(size=(50, 2)))
        sample = reservoir_sample(None, 10, random_state=0, stream=stream)
        assert sample.shape == (10, 2)
        assert stream.passes == 1

    def test_accepts_raw_arrays(self):
        sample = reservoir_sample(np.zeros((30, 3)), 4, random_state=0)
        assert sample.shape == (4, 3)
