"""Tests for the integrated one-pass biased sampler."""

import numpy as np
import pytest

from repro.core import DensityBiasedSampler, OnePassBiasedSampler
from repro.density import KnnDensityEstimator
from repro.exceptions import ParameterError
from repro.utils.streams import DataStream


@pytest.fixture
def data():
    rng = np.random.default_rng(2)
    return np.vstack(
        [
            rng.normal(0.0, 0.05, size=(4000, 2)),
            rng.uniform(-2.0, 2.0, size=(4000, 2)),
        ]
    )


class TestPassCounts:
    def test_single_sampling_pass_after_fit(self, data):
        stream = DataStream(data)
        OnePassBiasedSampler(
            sample_size=200, exponent=1.0, random_state=0
        ).sample(None, stream=stream)
        # One fit pass + one combined sampling pass.
        assert stream.passes == 2

    def test_saves_a_pass_vs_two_pass(self, data):
        stream_one = DataStream(data)
        OnePassBiasedSampler(
            sample_size=200, exponent=1.0, random_state=0
        ).sample(None, stream=stream_one)
        stream_two = DataStream(data)
        DensityBiasedSampler(
            sample_size=200, exponent=1.0, random_state=0
        ).sample(None, stream=stream_two)
        assert stream_one.passes == stream_two.passes - 1

    def test_non_kernel_estimator_costs_pilot_pass(self, data):
        estimator = KnnDensityEstimator(n_sample=200, k=5, random_state=0)
        stream = DataStream(data)
        OnePassBiasedSampler(
            sample_size=200, exponent=1.0, estimator=estimator, random_state=0
        ).sample(None, stream=stream)
        # fit + pilot + sampling.
        assert stream.passes == 3


class TestQuality:
    def test_size_close_to_target(self, data):
        sample = OnePassBiasedSampler(
            sample_size=400, exponent=1.0, random_state=0
        ).sample(data)
        assert abs(len(sample) - 400) < 120

    def test_bias_direction_preserved(self, data):
        sample = OnePassBiasedSampler(
            sample_size=400, exponent=1.0, random_state=0
        ).sample(data)
        assert (sample.indices < 4000).mean() > 0.7

    def test_negative_exponent(self, data):
        sample = OnePassBiasedSampler(
            sample_size=400, exponent=-0.5, random_state=0
        ).sample(data)
        assert (sample.indices < 4000).mean() < 0.4

    def test_normalizer_close_to_exact(self, data):
        one = OnePassBiasedSampler(
            sample_size=300, exponent=1.0, random_state=0
        )
        one.sample(data)
        two = DensityBiasedSampler(
            sample_size=300, exponent=1.0, random_state=0
        )
        two.sample(data)
        assert one.normalizer_ == pytest.approx(two.normalizer_, rel=0.25)

    def test_result_fields(self, data):
        sample = OnePassBiasedSampler(
            sample_size=300, exponent=0.5, random_state=1
        ).sample(data)
        np.testing.assert_array_equal(sample.points, data[sample.indices])
        assert (sample.probabilities > 0).all()
        assert (sample.probabilities <= 1).all()

    def test_rejects_bad_pilot(self):
        with pytest.raises(ParameterError):
            OnePassBiasedSampler(pilot_size=0)


class TestSelfKernelCorrection:
    """Regression: when the pilot is the estimator's own centers, each
    pilot density carries the center's own-kernel spike; the normaliser
    estimate must subtract it or ``k_hat`` biases up (and the achieved
    sample size undershoots)."""

    def test_normalizer_closer_than_naive_estimate(self, data):
        from repro.core.onepass import _self_kernel_density

        sampler = OnePassBiasedSampler(
            sample_size=300, exponent=1.0, random_state=0
        )
        sampler.sample(data)
        estimator = sampler.estimator_

        spike = _self_kernel_density(estimator)
        assert spike > 0
        # What the uncorrected code computed: the raw center densities.
        naive_k = float(
            len(data) * estimator.evaluate(estimator.centers_).mean()
        )
        exact_k = float(estimator.evaluate(data).sum())
        assert abs(sampler.normalizer_ - exact_k) < abs(naive_k - exact_k)

    def test_no_correction_for_non_kernel_estimator(self, data):
        from repro.core.onepass import _self_kernel_density

        estimator = KnnDensityEstimator(n_sample=200, k=5, random_state=0)
        assert _self_kernel_density(estimator) == 0.0
