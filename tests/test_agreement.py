"""Tests for label-agreement metrics (ARI, NMI, purity)."""

import numpy as np
import pytest

from repro.evaluation import (
    adjusted_rand_index,
    contingency_table,
    normalized_mutual_information,
    purity,
)
from repro.exceptions import ParameterError


class TestContingency:
    def test_counts(self):
        table = contingency_table([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])

    def test_noise_excluded(self):
        table = contingency_table([0, -1, 1], [0, 0, 1])
        assert table.sum() == 2

    def test_rejects_mismatched(self):
        with pytest.raises(ParameterError):
            contingency_table([0, 1], [0, 1, 1])

    def test_rejects_all_noise(self):
        with pytest.raises(ParameterError):
            contingency_table([-1, -1], [0, 1])


class TestAdjustedRand:
    def test_identical_partitions(self):
        assert adjusted_rand_index([0, 0, 1, 1], [0, 0, 1, 1]) == 1.0

    def test_relabelling_invariant(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 2, 2] ) == 1.0

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        truth = rng.integers(0, 4, size=5000)
        predicted = rng.integers(0, 4, size=5000)
        assert abs(adjusted_rand_index(truth, predicted)) < 0.02

    def test_partial_agreement_between_zero_and_one(self):
        value = adjusted_rand_index([0, 0, 0, 1, 1, 1], [0, 0, 1, 1, 1, 1])
        assert 0.0 < value < 1.0

    def test_symmetry(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [0, 1, 1, 1, 2, 0]
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )


class TestNmi:
    def test_identical(self):
        assert normalized_mutual_information([0, 1, 2], [2, 0, 1]) == 1.0

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        truth = rng.integers(0, 3, size=5000)
        predicted = rng.integers(0, 3, size=5000)
        assert normalized_mutual_information(truth, predicted) < 0.05

    def test_bounded(self):
        rng = np.random.default_rng(2)
        truth = rng.integers(0, 5, size=200)
        predicted = (truth + rng.integers(0, 2, size=200)) % 5
        value = normalized_mutual_information(truth, predicted)
        assert 0.0 <= value <= 1.0


class TestPurity:
    def test_perfect(self):
        assert purity([0, 0, 1], [1, 1, 0]) == 1.0

    def test_known_value(self):
        assert purity([0, 0, 1, 1], [0, 0, 0, 1]) == 0.75

    def test_single_predicted_cluster(self):
        # Everything in one cluster: purity = largest true class share.
        assert purity([0, 0, 0, 1], [0, 0, 0, 0]) == 0.75


class TestEndToEnd:
    def test_pipeline_labels_score_high(self):
        """Sample -> CURE -> assign: full-data labels should agree
        strongly with the generator's ground truth."""
        from repro.clustering import CureClustering, assign_to_clusters
        from repro.core import DensityBiasedSampler
        from repro.datasets import make_clustered_dataset

        data = make_clustered_dataset(
            n_points=20_000, n_clusters=6, noise_fraction=0.0,
            random_state=0,
        )
        sample = DensityBiasedSampler(
            sample_size=600, exponent=0.5, random_state=0
        ).sample(data.points)
        clustering = CureClustering(n_clusters=6).fit(sample.points)
        labels = assign_to_clusters(data.points, clustering)
        assert adjusted_rand_index(data.labels, labels) > 0.8
        assert purity(data.labels, labels) > 0.85
