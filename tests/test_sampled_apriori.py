"""Tests for Toivonen-style sampled frequent-itemset mining."""

import pytest

from repro.exceptions import ParameterError
from repro.mining import apriori, make_transaction_dataset, sampled_apriori
from repro.mining.sampled_apriori import negative_border


class TestNegativeBorder:
    def test_missing_single_items(self):
        frequent = {frozenset({0}), frozenset({1})}
        border = negative_border(frequent, n_items=3)
        assert frozenset({2}) in border
        # {0,1} has all subsets frequent but is itself not frequent.
        assert frozenset({0, 1}) in border

    def test_no_border_inside_closure(self):
        frequent = {
            frozenset({0}),
            frozenset({1}),
            frozenset({0, 1}),
        }
        border = negative_border(frequent, n_items=2)
        assert border == set()

    def test_border_sets_are_minimal(self):
        """Every border set's proper subsets must all be frequent."""
        from itertools import combinations

        data = make_transaction_dataset(n_transactions=400, random_state=0)
        frequent = set(apriori(data, min_support=0.1))
        border = negative_border(frequent, data.n_items)
        for itemset in border:
            assert itemset not in frequent
            for r in range(1, len(itemset)):
                for subset in combinations(sorted(itemset), r):
                    assert frozenset(subset) in frequent


class TestSampledApriori:
    @pytest.fixture
    def data(self):
        return make_transaction_dataset(
            n_transactions=4000, n_items=120, random_state=1
        )

    def test_certified_run_is_exactly_right(self, data):
        exact = apriori(data, min_support=0.08)
        result = sampled_apriori(
            data, min_support=0.08, sample_size=800, random_state=0
        )
        if result.certified:
            assert set(result.frequent) == set(exact)
        else:
            # Uncertified: found sets plus missed border must cover.
            assert set(result.frequent) <= set(exact)

    def test_reported_supports_are_exact(self, data):
        result = sampled_apriori(
            data, min_support=0.08, sample_size=800, random_state=0
        )
        for itemset, support in result.frequent.items():
            assert support == pytest.approx(data.support(itemset))
            assert support >= 0.08

    def test_single_full_pass(self, data):
        result = sampled_apriori(
            data, min_support=0.08, sample_size=500, random_state=0
        )
        assert result.n_full_passes == 1

    def test_lowered_threshold_improves_recall(self, data):
        """Mining the sample at the *un*-lowered threshold risks
        misses; the default lowering protects recall."""
        exact = set(apriori(data, min_support=0.08))
        hits_lowered = []
        hits_plain = []
        for seed in range(5):
            lowered = sampled_apriori(
                data, min_support=0.08, sample_size=300, random_state=seed
            )
            plain = sampled_apriori(
                data,
                min_support=0.08,
                sample_size=300,
                lowered_support=0.08,
                random_state=seed,
            )
            hits_lowered.append(len(set(lowered.frequent) & exact))
            hits_plain.append(len(set(plain.frequent) & exact))
        assert sum(hits_lowered) >= sum(hits_plain)

    def test_length_biased_sampling(self, data):
        result = sampled_apriori(
            data,
            min_support=0.08,
            sample_size=800,
            bias="length",
            random_state=0,
        )
        exact = set(apriori(data, min_support=0.08))
        recall = len(set(result.frequent) & exact) / len(exact)
        assert recall >= 0.8

    def test_rejects_bad_args(self, data):
        with pytest.raises(ParameterError):
            sampled_apriori(data, min_support=0.1, sample_size=0)
        with pytest.raises(ParameterError):
            sampled_apriori(
                data, min_support=0.1, sample_size=100, bias="random"
            )
        with pytest.raises(ParameterError):
            sampled_apriori(data, min_support=0.0, sample_size=100)
