"""Tests for kernel profiles and bandwidth rules."""

import numpy as np
import pytest
from scipy.integrate import quad

from repro.density.bandwidth import (
    resolve_bandwidth,
    scott_bandwidth,
    silverman_bandwidth,
)
from repro.density.kernels import (
    BiweightKernel,
    EpanechnikovKernel,
    GaussianKernel,
    TriangularKernel,
    UniformKernel,
    get_kernel,
)
from repro.exceptions import ParameterError

ALL_KERNELS = [
    EpanechnikovKernel(),
    GaussianKernel(),
    UniformKernel(),
    TriangularKernel(),
    BiweightKernel(),
]


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
class TestKernelProfiles:
    def test_integrates_to_one(self, kernel):
        value, _ = quad(lambda u: float(kernel(u)), -10, 10)
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_symmetric(self, kernel):
        u = np.linspace(0.0, 3.0, 50)
        np.testing.assert_allclose(kernel(u), kernel(-u))

    def test_non_negative(self, kernel):
        u = np.linspace(-3, 3, 101)
        assert (kernel(u) >= 0).all()

    def test_zero_outside_support(self, kernel):
        if not np.isfinite(kernel.support):
            pytest.skip("unbounded support")
        assert kernel(np.array([kernel.support + 0.01]))[0] == 0.0

    def test_maximum_at_origin(self, kernel):
        u = np.linspace(-1, 1, 101)
        assert kernel(np.array([0.0]))[0] == pytest.approx(kernel(u).max())


class TestGetKernel:
    def test_by_name(self):
        assert get_kernel("gaussian").name == "gaussian"

    def test_instance_passthrough(self):
        kernel = EpanechnikovKernel()
        assert get_kernel(kernel) is kernel

    def test_unknown_name(self):
        with pytest.raises(ParameterError, match="unknown kernel"):
            get_kernel("parabolic")


class TestBandwidthRules:
    def test_scott_shrinks_with_n(self):
        std = np.array([1.0, 2.0])
        small = scott_bandwidth(std, 100, 2)
        large = scott_bandwidth(std, 100_000, 2)
        assert (large < small).all()

    def test_scott_proportional_to_std(self):
        h = scott_bandwidth(np.array([1.0, 3.0]), 1000, 2)
        assert h[1] == pytest.approx(3.0 * h[0])

    def test_silverman_scott_ratio(self):
        """Silverman = Scott * (4/(d+2))^(1/(d+4)): larger in 1-D,
        smaller from d >= 3."""
        std = np.array([1.0])
        assert silverman_bandwidth(std, 500, 1) > scott_bandwidth(std, 500, 1)
        std3 = np.ones(3)
        assert (
            silverman_bandwidth(std3, 500, 3) < scott_bandwidth(std3, 500, 3)
        ).all()

    def test_epanechnikov_wider_than_gaussian(self):
        std = np.array([1.0])
        gauss = scott_bandwidth(std, 500, 1, kernel="gaussian")
        epan = scott_bandwidth(std, 500, 1, kernel="epanechnikov")
        assert epan > gauss

    def test_zero_std_floored(self):
        h = scott_bandwidth(np.array([0.0]), 100, 1)
        assert h[0] > 0

    def test_constant_attribute_floor_tracks_other_spreads(self):
        """Regression: the constant-attribute fallback is relative to the
        data's scale, not an absolute 1e-3 (which would be a delta spike
        for data in units of 1e6)."""
        h_small = scott_bandwidth(np.array([0.0, 1.0]), 100, 2)
        h_large = scott_bandwidth(np.array([0.0, 1e6]), 100, 2)
        assert h_large[0] == pytest.approx(1e6 * h_small[0])
        # The floored width stays a fixed small fraction of the spread.
        assert h_small[0] == pytest.approx(1e-3 * h_small[1])

    def test_constant_attribute_floor_uses_scale_hint(self):
        """All-constant data still gets a scale-relative width when the
        caller supplies a data-magnitude hint."""
        h_unit = scott_bandwidth(np.array([0.0]), 100, 1)
        h_big = scott_bandwidth(np.array([0.0]), 100, 1, scale=1e6)
        assert h_big[0] == pytest.approx(1e6 * h_unit[0])

    def test_single_point_rejected(self):
        """Regression: a 1-point fit has no sample spread; the rules must
        say so instead of silently returning the 1e-3 floor."""
        with pytest.raises(ParameterError, match="at least 2 points"):
            scott_bandwidth(np.array([1.0]), 1, 1)

    def test_rejects_negative_std(self):
        with pytest.raises(ParameterError):
            scott_bandwidth(np.array([-1.0]), 100, 1)


class TestResolveBandwidth:
    def test_rule_names(self):
        std = np.array([1.0, 1.0])
        for rule in ("scott", "silverman"):
            h = resolve_bandwidth(rule, std, 100, 2, "gaussian")
            assert h.shape == (2,)

    def test_scalar_broadcast(self):
        h = resolve_bandwidth(0.3, np.ones(3), 100, 3, "gaussian")
        np.testing.assert_array_equal(h, [0.3, 0.3, 0.3])

    def test_vector_checked(self):
        with pytest.raises(ParameterError, match="shape"):
            resolve_bandwidth([0.1, 0.2], np.ones(3), 100, 3, "gaussian")

    def test_rejects_unknown_rule(self):
        with pytest.raises(ParameterError, match="unknown bandwidth rule"):
            resolve_bandwidth("magic", np.ones(1), 100, 1, "gaussian")

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError, match="positive"):
            resolve_bandwidth(0.0, np.ones(1), 100, 1, "gaussian")
