"""Tests for the cell-based exact DB(p, k) detector."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.outliers import CellBasedOutlierDetector, IndexedOutlierDetector
from repro.outliers.cell_based import _ring_offsets


class TestRingOffsets:
    def test_l1_count_2d(self):
        assert len(_ring_offsets(2, 1, 1)) == 8  # the 3x3 ring minus center

    def test_l2_count_2d(self):
        # rings 2..3 of a 7x7 neighbourhood: 49 - 9 = 40 cells.
        assert len(_ring_offsets(2, 2, 3)) == 40

    def test_no_zero_offset(self):
        assert (0, 0) not in _ring_offsets(2, 1, 3)

    def test_1d(self):
        assert set(_ring_offsets(1, 1, 2)) == {(-2,), (-1,), (1,), (2,)}


class TestCellBasedDetector:
    def test_simple_outlier(self):
        rng = np.random.default_rng(0)
        data = np.vstack([rng.normal(0, 0.05, (300, 2)), [[2.0, 2.0]]])
        result = CellBasedOutlierDetector(k=0.5, p=0).detect(data)
        assert result.indices.tolist() == [300]
        assert result.neighbor_counts.tolist() == [0]

    @pytest.mark.parametrize("d", [1, 2, 3])
    @pytest.mark.parametrize("p", [0, 3, 10])
    def test_agrees_with_kdtree(self, d, p):
        rng = np.random.default_rng(d * 10 + p)
        data = np.vstack(
            [
                rng.normal(0.0, 0.08, size=(400, d)),
                rng.uniform(-1.0, 1.0, size=(100, d)),
            ]
        )
        k = 0.15
        cell = CellBasedOutlierDetector(k=k, p=p).detect(data)
        tree = IndexedOutlierDetector(k=k, p=p).detect(data)
        np.testing.assert_array_equal(cell.indices, tree.indices)
        np.testing.assert_array_equal(
            cell.neighbor_counts, tree.neighbor_counts
        )

    def test_whole_cell_outlier_branch(self):
        """A far-away pair within k of each other: both outliers at
        p=1, with exact neighbour count 1."""
        rng = np.random.default_rng(1)
        blob = rng.normal(0, 0.02, (200, 2))
        pair = np.array([[5.0, 5.0], [5.01, 5.0]])
        data = np.vstack([blob, pair])
        result = CellBasedOutlierDetector(k=0.3, p=1).detect(data)
        assert set(result.indices.tolist()) == {200, 201}
        assert result.neighbor_counts.tolist() == [1, 1]

    def test_fraction_parameter(self):
        rng = np.random.default_rng(2)
        data = np.vstack([rng.normal(0, 0.05, (500, 2)), [[3.0, 3.0]]])
        result = CellBasedOutlierDetector(k=0.5, fraction=0.002).detect(data)
        assert 501 - 1 in result.indices

    def test_rejects_high_dimensions(self):
        with pytest.raises(ParameterError, match="d <= 4"):
            CellBasedOutlierDetector(k=0.1, p=0).detect(np.zeros((10, 6)))

    def test_no_outliers(self):
        data = np.random.default_rng(3).normal(0, 0.01, (200, 2))
        result = CellBasedOutlierDetector(k=0.5, p=3).detect(data)
        assert len(result) == 0

    def test_everything_outlier(self):
        data = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        result = CellBasedOutlierDetector(k=1.0, p=2).detect(data)
        assert len(result) == 3
