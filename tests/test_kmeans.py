"""Tests for weighted K-means."""

import numpy as np
import pytest

from repro.clustering import KMeans
from repro.exceptions import ParameterError


@pytest.fixture
def three_blobs():
    rng = np.random.default_rng(0)
    return np.vstack(
        [rng.normal(c, 0.1, size=(100, 2)) for c in ((0, 0), (5, 0), (0, 5))]
    )


class TestBasics:
    def test_recovers_blobs(self, three_blobs):
        result = KMeans(n_clusters=3, random_state=0).fit(three_blobs)
        assert sorted(result.sizes.tolist()) == [100, 100, 100]

    def test_centers_near_blob_means(self, three_blobs):
        result = KMeans(n_clusters=3, random_state=0).fit(three_blobs)
        targets = np.array([(0, 0), (5, 0), (0, 5)], dtype=float)
        for target in targets:
            nearest = np.linalg.norm(result.centers - target, axis=1).min()
            assert nearest < 0.2

    def test_labels_shape_and_range(self, three_blobs):
        result = KMeans(n_clusters=3, random_state=0).fit(three_blobs)
        assert result.labels.shape == (300,)
        assert set(np.unique(result.labels)) <= {0, 1, 2}

    def test_single_cluster(self, three_blobs):
        result = KMeans(n_clusters=1, random_state=0).fit(three_blobs)
        np.testing.assert_allclose(
            result.centers[0], three_blobs.mean(axis=0), atol=1e-8
        )

    def test_inertia_decreases_with_k(self, three_blobs):
        inertias = []
        for k in (1, 2, 3):
            model = KMeans(n_clusters=k, random_state=0)
            model.fit(three_blobs)
            inertias.append(model.inertia_)
        assert inertias[0] > inertias[1] > inertias[2]

    def test_deterministic(self, three_blobs):
        a = KMeans(n_clusters=3, random_state=1).fit(three_blobs)
        b = KMeans(n_clusters=3, random_state=1).fit(three_blobs)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_predict(self, three_blobs):
        model = KMeans(n_clusters=3, random_state=0)
        result = model.fit(three_blobs)
        labels = model.predict([[0.1, 0.1]], result.centers)
        origin_label = result.labels[0]
        # The query near (0,0) must get the same label as blob 0 members.
        member_label = result.labels[
            np.linalg.norm(three_blobs, axis=1).argmin()
        ]
        assert labels[0] == member_label
        assert origin_label in (0, 1, 2)

    def test_more_clusters_than_points_rejected(self):
        with pytest.raises(Exception):
            KMeans(n_clusters=10, random_state=0).fit(np.zeros((3, 2)))

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            KMeans(n_clusters=0)
        with pytest.raises(ParameterError):
            KMeans(n_init=0)


class TestWeights:
    def test_weights_shift_centers(self):
        """A heavily weighted point drags its cluster center."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        weights = np.array([1.0, 1.0, 1.0])
        heavy = np.array([9.0, 1.0, 1.0])
        plain = KMeans(n_clusters=1, random_state=0).fit(
            pts, sample_weight=weights
        )
        weighted = KMeans(n_clusters=1, random_state=0).fit(
            pts, sample_weight=heavy
        )
        assert weighted.centers[0, 0] < plain.centers[0, 0]

    def test_zero_weight_points_ignored_in_centers(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [100.0, 0.0]])
        weights = np.array([1.0, 1.0, 0.0])
        result = KMeans(n_clusters=1, random_state=0).fit(
            pts, sample_weight=weights
        )
        assert result.centers[0, 0] == pytest.approx(0.05)

    def test_weight_shape_checked(self, three_blobs):
        with pytest.raises(ParameterError, match="sample_weight"):
            KMeans(n_clusters=2, random_state=0).fit(
                three_blobs, sample_weight=np.ones(5)
            )

    def test_negative_weights_rejected(self, three_blobs):
        with pytest.raises(ParameterError):
            KMeans(n_clusters=2, random_state=0).fit(
                three_blobs, sample_weight=-np.ones(300)
            )

    def test_inverse_probability_weighting_recovers_clusters(self):
        """Weighted K-means on a biased sample ~ K-means on the data
        (the paper's section 3.1 correction in action)."""
        from repro.core import DensityBiasedSampler

        rng = np.random.default_rng(1)
        blobs = np.vstack(
            [rng.normal(c, 0.15, size=(3000, 2)) for c in ((0, 0), (4, 4))]
        )
        sample = DensityBiasedSampler(
            sample_size=500, exponent=1.0, random_state=0
        ).sample(blobs)
        result = KMeans(n_clusters=2, random_state=0).fit(
            sample.points, sample_weight=sample.weights
        )
        for target in ((0.0, 0.0), (4.0, 4.0)):
            nearest = np.linalg.norm(
                result.centers - np.array(target), axis=1
            ).min()
            assert nearest < 0.3
