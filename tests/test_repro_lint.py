"""Tests for tools/repro_lint: every rule positive + negative +
suppression, the reporters, the CLI, and the tier gate that keeps
``src/repro`` itself clean."""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import (  # noqa: E402
    lint_paths,
    render_json,
    render_sarif,
    render_text,
)
from tools.repro_lint.__main__ import main  # noqa: E402
from tools.repro_lint.rules_docstrings import documented_parameters  # noqa: E402


def lint_snippet(tmp_path: Path, source: str, *, select=None, name="mod.py"):
    """Write ``source`` to a scratch module and lint it."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], select=select)


def codes(violations) -> list[str]:
    return [v.rule for v in violations]


# ---------------------------------------------------------------------------
# RL001 — global-state randomness
# ---------------------------------------------------------------------------


class TestRL001:
    def test_legacy_global_call_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def f():
                np.random.seed(0)
                return np.random.rand(3)
            """,
            select=["RL001"],
        )
        assert codes(found) == ["RL001", "RL001"]
        assert "np.random.seed" in found[0].message

    def test_unseeded_default_rng_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
            select=["RL001"],
        )
        assert codes(found) == ["RL001"]

    def test_legacy_from_import_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            from numpy.random import shuffle

            def f(x):
                shuffle(x)
            """,
            select=["RL001"],
        )
        assert codes(found) == ["RL001"]

    def test_seeded_generator_clean(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def f(seed):
                return np.random.default_rng(seed).random(3)
            """,
            select=["RL001"],
        )
        assert found == []

    def test_tests_directory_exempt(self, tmp_path):
        testdir = tmp_path / "tests"
        testdir.mkdir()
        found = lint_snippet(
            testdir,
            """
            import numpy as np

            def f():
                np.random.seed(0)
            """,
            select=["RL001"],
        )
        assert found == []

    def test_suppression_comment(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            # repro-lint: disable=RL001
            import numpy as np

            def f():
                np.random.seed(0)
            """,
            select=["RL001"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RL002 — random_state routing
# ---------------------------------------------------------------------------


class TestRL002:
    def test_raw_rng_use_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            def draw(n, random_state=None):
                return random_state.random(n)
            """,
            select=["RL002"],
        )
        assert codes(found) == ["RL002"]
        assert "check_random_state" in found[0].message

    def test_dead_rng_parameter_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            def draw(n, rng=None):
                return list(range(n))
            """,
            select=["RL002"],
        )
        assert codes(found) == ["RL002"]
        assert "never stores" in found[0].message

    def test_hardcoded_seed_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def f():
                return np.random.default_rng(42).random()
            """,
            select=["RL002"],
        )
        assert codes(found) == ["RL002"]

    def test_normalised_use_clean(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            from repro.utils.validation import check_random_state

            def draw(n, random_state=None):
                rng = check_random_state(random_state)
                return rng.random(n)
            """,
            select=["RL002"],
        )
        assert found == []

    def test_stored_and_forwarded_clean(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            class Sampler:
                def __init__(self, random_state=None):
                    self.random_state = random_state

            def wrapper(rng=None):
                return Sampler(random_state=rng)
            """,
            select=["RL002"],
        )
        assert found == []

    def test_abstract_and_stub_exempt(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import abc

            class Base(abc.ABC):
                @abc.abstractmethod
                def draw(self, rng=None):
                    ...

            def protocol_stub(rng=None):
                raise NotImplementedError
            """,
            select=["RL002"],
        )
        assert found == []

    def test_suppression_comment(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            # repro-lint: disable=RL002
            def draw(n, random_state=None):
                return random_state.random(n)
            """,
            select=["RL002"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RL003 — mutable defaults
# ---------------------------------------------------------------------------


class TestRL003:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "list()", "[1, 2]"]
    )
    def test_mutable_default_flagged(self, tmp_path, default):
        found = lint_snippet(
            tmp_path,
            f"""
            def f(x, acc={default}):
                return acc
            """,
            select=["RL003"],
        )
        assert codes(found) == ["RL003"]

    def test_keyword_only_mutable_default_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            def f(x, *, acc=[]):
                return acc
            """,
            select=["RL003"],
        )
        assert codes(found) == ["RL003"]

    def test_none_and_immutable_defaults_clean(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            def f(x, acc=None, name="data", k=(1, 2), n=3):
                return acc
            """,
            select=["RL003"],
        )
        assert found == []

    def test_suppression_comment(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            # repro-lint: disable=RL003
            def f(x, acc=[]):
                return acc
            """,
            select=["RL003"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RL004 — __all__ and re-export resolution
# ---------------------------------------------------------------------------


class TestRL004:
    def test_missing_all_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            def public():
                return 1
            """,
            select=["RL004"],
        )
        assert codes(found) == ["RL004"]
        assert "__all__" in found[0].message

    def test_unbound_name_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            __all__ = ["exists", "ghost"]

            def exists():
                return 1
            """,
            select=["RL004"],
        )
        assert codes(found) == ["RL004"]
        assert "ghost" in found[0].message

    def test_dynamic_all_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            names = ["f"]
            __all__ = sorted(names)

            def f():
                return 1
            """,
            select=["RL004"],
        )
        assert codes(found) == ["RL004"]
        assert "static" in found[0].message

    def test_duplicate_name_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            __all__ = ["f", "f"]

            def f():
                return 1
            """,
            select=["RL004"],
        )
        assert codes(found) == ["RL004"]
        assert "duplicate" in found[0].message

    def test_broken_reexport_flagged(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text(
            '__all__ = ["gone"]\nfrom pkg.mod import gone\n'
        )
        (pkg / "mod.py").write_text(
            '__all__ = ["here"]\n\ndef here():\n    return 1\n'
        )
        found = lint_paths([pkg], select=["RL004"])
        assert codes(found) == ["RL004"]
        assert "does not resolve" in found[0].message

    def test_clean_module_and_valid_reexport(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text(
            '__all__ = ["here", "mod"]\nfrom pkg.mod import here\n'
            "from pkg import mod\n"
        )
        (pkg / "mod.py").write_text(
            '__all__ = ["here"]\n\ndef here():\n    return 1\n'
        )
        assert lint_paths([pkg], select=["RL004"]) == []

    def test_main_and_conftest_exempt(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            def main():
                return 0
            """,
            select=["RL004"],
            name="__main__.py",
        )
        assert found == []

    def test_suppression_comment(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            # repro-lint: disable=RL004
            def public():
                return 1
            """,
            select=["RL004"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RL005 — estimator-API conformance
# ---------------------------------------------------------------------------

_BASE = """
import abc

__all__ = ["Base"]


class Base(abc.ABC):
    @abc.abstractmethod
    def fit(self, data, *, stream=None):
        ...
"""


class TestRL005:
    def test_missing_abstract_method_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            _BASE
            + """

class Broken(Base):
    def other(self):
        return 1
            """,
            select=["RL005"],
        )
        assert codes(found) == ["RL005"]
        assert "does not implement abstract method 'fit'" in found[0].message

    def test_renamed_positional_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            _BASE
            + """

class Renamed(Base):
    def fit(self, points, *, stream=None):
        return self
            """,
            select=["RL005"],
        )
        assert codes(found) == ["RL005"]
        assert "positional parameter 1" in found[0].message

    def test_missing_kwonly_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            _BASE
            + """

class NoStream(Base):
    def fit(self, data):
        return self
            """,
            select=["RL005"],
        )
        assert codes(found) == ["RL005"]
        assert "keyword-only parameter 'stream'" in found[0].message

    def test_extra_required_param_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            _BASE
            + """

class Extra(Base):
    def fit(self, data, extra, *, stream=None):
        return self
            """,
            select=["RL005"],
        )
        assert codes(found) == ["RL005"]

    def test_compatible_subclass_clean(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            _BASE
            + """

class Good(Base):
    def fit(self, data=None, *, stream=None, extra=1):
        return self
            """,
            select=["RL005"],
        )
        assert found == []

    def test_cross_module_and_inherited_impl(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("__all__ = []\n")
        (pkg / "base.py").write_text(textwrap.dedent(_BASE))
        (pkg / "impl.py").write_text(
            textwrap.dedent(
                """
                from pkg.base import Base

                __all__ = ["Mid", "Leaf"]


                class Mid(Base):
                    def fit(self, data, *, stream=None):
                        return self


                class Leaf(Mid):
                    pass
                """
            )
        )
        assert lint_paths([pkg], select=["RL005"]) == []

    def test_abstract_intermediate_exempt(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            _BASE
            + """

class StillAbstract(Base, abc.ABC):
    pass
            """,
            select=["RL005"],
        )
        assert found == []

    def test_suppression_comment(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "# repro-lint: disable=RL005\n"
            + _BASE
            + """

class Broken(Base):
    pass
            """,
            select=["RL005"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RL006 — numpydoc Parameters vs signature
# ---------------------------------------------------------------------------


class TestRL006:
    def test_unknown_documented_parameter_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            '''
            def f(x):
                """Do.

                Parameters
                ----------
                x:
                    Input.
                ghost:
                    Does not exist.
                """
                return x
            ''',
            select=["RL006"],
        )
        assert codes(found) == ["RL006"]
        assert "ghost" in found[0].message

    def test_omitted_parameter_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            '''
            def f(x, y):
                """Do.

                Parameters
                ----------
                x:
                    Input.
                """
                return x + y
            ''',
            select=["RL006"],
        )
        assert codes(found) == ["RL006"]
        assert "omits parameter 'y'" in found[0].message

    def test_order_mismatch_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            '''
            def f(x, y):
                """Do.

                Parameters
                ----------
                y:
                    Second.
                x:
                    First.
                """
                return x + y
            ''',
            select=["RL006"],
        )
        assert codes(found) == ["RL006"]
        assert "order" in found[0].message

    def test_class_docstring_checks_init(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            '''
            class Estimator:
                """Thing.

                Parameters
                ----------
                alpha:
                    Rate.
                """

                def __init__(self, alpha, beta):
                    self.alpha = alpha
                    self.beta = beta
            ''',
            select=["RL006"],
        )
        assert codes(found) == ["RL006"]
        assert "omits parameter 'beta'" in found[0].message

    def test_matching_section_clean(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            '''
            def f(x, y, *, mode="fast", **extra):
                """Do.

                Parameters
                ----------
                x, y:
                    Inputs.
                mode:
                    How.
                **extra:
                    Passed through.

                Returns
                -------
                int
                """
                return x + y
            ''',
            select=["RL006"],
        )
        assert found == []

    def test_no_parameters_section_not_required(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            '''
            def f(x, y):
                """Add the things (no formal section here)."""
                return x + y
            ''',
            select=["RL006"],
        )
        assert found == []

    def test_suppression_comment(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            '''
            # repro-lint: disable=RL006
            def f(x):
                """Do.

                Parameters
                ----------
                ghost:
                    Nope.
                """
                return x
            ''',
            select=["RL006"],
        )
        assert found == []

    def test_documented_parameters_helper(self):
        doc = (
            "Summary.\n\n    Parameters\n    ----------\n    a : int\n"
            "        First.\n    b, c:\n        Pair.\n\n    Returns\n"
            "    -------\n    int\n"
        )
        assert documented_parameters(doc) == ["a", "b", "c"]
        assert documented_parameters("No section.") is None


# ---------------------------------------------------------------------------
# RL007 — observability discipline (no bare print / time.time)
# ---------------------------------------------------------------------------


class TestRL007:
    def test_bare_print_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            def f(x):
                print("progress:", x)
                return x
            """,
            select=["RL007"],
        )
        assert codes(found) == ["RL007"]
        assert "bare print()" in found[0].message

    def test_print_with_explicit_file_clean(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import sys

            def f(x, stream=None):
                print(x, file=stream or sys.stderr)
            """,
            select=["RL007"],
        )
        assert found == []

    def test_time_time_call_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import time

            def f():
                return time.time()
            """,
            select=["RL007"],
        )
        assert codes(found) == ["RL007"]
        assert "time.time()" in found[0].message

    def test_time_import_alias_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import time as clock

            def f():
                return clock.time()
            """,
            select=["RL007"],
        )
        assert codes(found) == ["RL007"]

    def test_from_time_import_time_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            from time import time

            def f():
                return time()
            """,
            select=["RL007"],
        )
        assert codes(found) == ["RL007"]

    def test_perf_counter_clean(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import time

            def f():
                return time.perf_counter()
            """,
            select=["RL007"],
        )
        assert found == []

    def test_tests_directory_exempt(self, tmp_path):
        testdir = tmp_path / "tests"
        testdir.mkdir()
        found = lint_snippet(
            testdir,
            """
            def f(x):
                print(x)
            """,
            select=["RL007"],
        )
        assert found == []

    def test_main_module_exempt(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            def f(x):
                print(x)
            """,
            select=["RL007"],
            name="__main__.py",
        )
        assert found == []

    def test_suppression_comment(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            # repro-lint: disable=RL007
            def f(x):
                print(x)
            """,
            select=["RL007"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RL008 — parallelism discipline (workers only via repro.parallel)
# ---------------------------------------------------------------------------


class TestRL008:
    def test_multiprocessing_import_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import multiprocessing

            def f(items):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(str, items)
            """,
            select=["RL008"],
        )
        assert codes(found) == ["RL008"]
        assert "repro.parallel" in found[0].message

    def test_concurrent_futures_from_import_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor

            def f(items):
                with ThreadPoolExecutor(2) as pool:
                    return list(pool.map(str, items))
            """,
            select=["RL008"],
        )
        assert codes(found) == ["RL008"]

    def test_aliased_import_flagged(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            import concurrent.futures as cf
            """,
            select=["RL008"],
        )
        assert codes(found) == ["RL008"]

    def test_repro_parallel_package_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "parallel"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        found = lint_snippet(
            pkg,
            """
            from concurrent.futures import ThreadPoolExecutor

            __all__ = ["ThreadPoolExecutor"]
            """,
            name="backend.py",
            select=["RL008"],
        )
        assert found == []

    def test_tests_directory_exempt(self, tmp_path):
        testdir = tmp_path / "tests"
        testdir.mkdir()
        found = lint_snippet(
            testdir,
            """
            import multiprocessing
            """,
            select=["RL008"],
        )
        assert found == []

    def test_suppression_comment(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            """
            # repro-lint: disable=RL008
            import multiprocessing
            """,
            select=["RL008"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# Reporters and CLI
# ---------------------------------------------------------------------------


class TestReporting:
    def test_text_reporter_format(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(acc=[]):\n    return acc\n", select=["RL003"]
        )
        text = render_text(found)
        assert "RL003" in text
        assert ":1:" in text  # file:line anchor
        assert "1 violation(s)" in text

    def test_text_reporter_clean(self):
        assert "clean" in render_text([])

    def test_json_reporter(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(acc=[]):\n    return acc\n", select=["RL003"]
        )
        payload = json.loads(render_json(found))
        assert payload["total"] == 1
        assert payload["counts"] == {"RL003": 1}
        record = payload["violations"][0]
        assert record["rule"] == "RL003"
        assert record["line"] == 1

    def test_unknown_select_raises(self, tmp_path):
        with pytest.raises(KeyError):
            lint_paths([tmp_path], select=["RL999"])

    def test_sarif_reporter_driver_and_results(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(acc=[]):\n    return acc\n", select=["RL003"]
        )
        log = json.loads(render_sarif(found))
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        # The driver name is the contract that keeps this tool
        # distinguishable from repro-audit in the merged CI upload.
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= {
            "RL001",
            "RL003",
            "RL007",
        }
        (result,) = [r for r in run["results"] if r["ruleId"] == "RL003"]
        assert "reproLint/v1" in result["partialFingerprints"]
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 1

    def test_sarif_merge_keeps_distinct_tool_names(self, tmp_path):
        from tools.merge_sarif import merge_logs
        from tools.repro_audit import iter_rules as audit_rules
        from tools.repro_audit.reporting import (
            render_sarif as render_audit_sarif,
        )

        lint_log = tmp_path / "lint.sarif"
        lint_log.write_text(render_sarif([]))
        audit_log = tmp_path / "audit.sarif"
        audit_log.write_text(render_audit_sarif([], audit_rules()))
        merged, warnings = merge_logs(
            [lint_log, audit_log, tmp_path / "absent.sarif"]
        )
        assert len(warnings) == 1 and "absent.sarif" in warnings[0]
        names = [
            run["tool"]["driver"]["name"] for run in merged["runs"]
        ]
        assert names == ["repro-lint", "repro-audit"]


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text('__all__ = ["f"]\n\ndef f():\n    return 1\n')
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_with_code_and_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text('__all__ = []\n\ndef f(acc=[]):\n    return acc\n')
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RL003" in out
        assert ":3:" in out  # file:line of the mutable default

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text('__all__ = []\n\ndef f(acc=[]):\n    return acc\n')
        assert main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"RL003": 1}

    def test_select_filters_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(acc=[]):\n    return acc\n")  # RL003 + RL004
        assert main([str(bad), "--select", "RL004"]) == 1
        out = capsys.readouterr().out
        assert "RL004" in out and "RL003" not in out

    def test_sarif_format_to_output_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text('__all__ = []\n\ndef f(acc=[]):\n    return acc\n')
        out_file = tmp_path / "lint.sarif"
        assert (
            main(
                [str(bad), "--format", "sarif", "--output", str(out_file)]
            )
            == 1
        )
        assert capsys.readouterr().out == ""
        log = json.loads(out_file.read_text())
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
        assert log["runs"][0]["results"]

    def test_unknown_select_exit_two(self, tmp_path):
        assert main([str(tmp_path), "--select", "RL999"]) == 2

    def test_missing_path_exit_two(self, tmp_path, capsys):
        # A typo'd path must not masquerade as a clean run.
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert code in out

    def test_syntax_error_reported_not_crash(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert main([str(bad)]) == 1
        assert "RL000" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# The tier gate: the shipped library must stay clean.
# ---------------------------------------------------------------------------


class TestSourceTreeClean:
    def test_src_repro_is_clean(self):
        found = lint_paths([REPO_ROOT / "src" / "repro"])
        assert found == [], "\n" + "\n".join(v.format() for v in found)

    def test_all_rules_exercised_by_src_scan(self):
        # The scan must actually run every registered rule (a regression
        # here would silently hollow out the gate).
        from tools.repro_lint import iter_rules

        assert [r.code for r in iter_rules()] == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
        ]
