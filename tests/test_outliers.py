"""Tests for DB(p, k) outlier detection (exact and approximate)."""

import numpy as np
import pytest

from repro.datasets import make_outlier_dataset
from repro.exceptions import ParameterError
from repro.outliers import (
    ApproximateOutlierDetector,
    IndexedOutlierDetector,
    NestedLoopOutlierDetector,
    is_db_outlier_count,
)
from repro.outliers.base import resolve_p
from repro.utils.streams import DataStream


@pytest.fixture
def simple_case():
    """A tight blob plus two isolated points: unambiguous outliers."""
    rng = np.random.default_rng(0)
    blob = rng.normal(0.0, 0.05, size=(300, 2))
    outliers = np.array([[3.0, 3.0], [-3.0, 2.0]])
    return np.vstack([blob, outliers]), {300, 301}


class TestDefinitions:
    def test_predicate(self):
        assert is_db_outlier_count(0, p=0)
        assert is_db_outlier_count(5, p=5)
        assert not is_db_outlier_count(6, p=5)

    def test_resolve_p_exclusive_args(self):
        with pytest.raises(ParameterError, match="exactly one"):
            resolve_p(None, None, 100)
        with pytest.raises(ParameterError, match="exactly one"):
            resolve_p(3, 0.1, 100)

    def test_resolve_fraction(self):
        assert resolve_p(None, 0.05, 200) == 10

    def test_resolve_rejects_bad_values(self):
        with pytest.raises(ParameterError):
            resolve_p(-1, None, 100)
        with pytest.raises(ParameterError):
            resolve_p(None, 1.0, 100)


class TestExactDetectors:
    def test_nested_loop_finds_isolated(self, simple_case):
        data, truth = simple_case
        result = NestedLoopOutlierDetector(k=0.5, p=0).detect(data)
        assert set(result.indices.tolist()) == truth

    def test_indexed_finds_isolated(self, simple_case):
        data, truth = simple_case
        result = IndexedOutlierDetector(k=0.5, p=0).detect(data)
        assert set(result.indices.tolist()) == truth

    def test_detectors_agree(self):
        rng = np.random.default_rng(1)
        data = rng.random((500, 3))
        for k, p in ((0.1, 2), (0.2, 5), (0.05, 0)):
            nested = NestedLoopOutlierDetector(k=k, p=p).detect(data)
            indexed = IndexedOutlierDetector(k=k, p=p).detect(data)
            np.testing.assert_array_equal(nested.indices, indexed.indices)
            np.testing.assert_array_equal(
                nested.neighbor_counts, indexed.neighbor_counts
            )

    def test_small_blocks_equal_big_blocks(self, simple_case):
        data, _ = simple_case
        small = NestedLoopOutlierDetector(k=0.5, p=0, block_size=7).detect(
            data
        )
        big = NestedLoopOutlierDetector(k=0.5, p=0, block_size=100_000).detect(
            data
        )
        np.testing.assert_array_equal(small.indices, big.indices)

    def test_self_not_counted(self):
        data = np.array([[0.0, 0.0], [10.0, 0.0]])
        result = IndexedOutlierDetector(k=1.0, p=0).detect(data)
        # Both points have zero neighbours within k=1: both are outliers.
        assert len(result) == 2
        assert (result.neighbor_counts == 0).all()

    def test_fraction_parameterisation(self, simple_case):
        data, truth = simple_case
        result = IndexedOutlierDetector(k=0.5, fraction=0.001).detect(data)
        assert set(result.indices.tolist()) == truth

    def test_p_large_makes_everything_outlier(self):
        data = np.random.default_rng(2).random((50, 2))
        result = IndexedOutlierDetector(k=0.1, p=50).detect(data)
        assert len(result) == 50

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            NestedLoopOutlierDetector(k=0.0, p=1)


class TestApproximateDetector:
    def test_matches_exact_on_planted(self):
        data = make_outlier_dataset(
            n_points=4000, n_outliers=12, random_state=1
        )
        k = data.guaranteed_radius
        approx = ApproximateOutlierDetector(k=k, p=0, random_state=0).detect(
            data.points
        )
        exact = IndexedOutlierDetector(k=k, p=0).detect(data.points)
        assert set(approx.indices.tolist()) == set(exact.indices.tolist())

    def test_verification_guarantees_precision(self, simple_case):
        """Everything reported must truly satisfy the DB predicate."""
        data, _ = simple_case
        result = ApproximateOutlierDetector(
            k=0.5, p=0, random_state=0
        ).detect(data)
        exact = IndexedOutlierDetector(k=0.5, p=0).detect(data)
        assert set(result.indices.tolist()) <= set(exact.indices.tolist())

    def test_pass_budget(self, simple_case):
        """Fit + screen + verify <= 3 passes (the paper's budget)."""
        data, _ = simple_case
        stream = DataStream(data)
        ApproximateOutlierDetector(k=0.5, p=0, random_state=0).detect(
            None, stream=stream
        )
        assert stream.passes <= 3

    def test_screening_shrinks_candidates(self):
        data = make_outlier_dataset(
            n_points=5000, n_outliers=10, random_state=2
        )
        result = ApproximateOutlierDetector(
            k=data.guaranteed_radius, p=0, random_state=0
        ).detect(data.points)
        assert result.n_candidates < data.n_points * 0.05

    def test_montecarlo_screen(self, simple_case):
        data, truth = simple_case
        result = ApproximateOutlierDetector(
            k=0.5, p=0, screen="montecarlo", n_mc=64, random_state=0
        ).detect(data)
        assert set(result.indices.tolist()) == truth

    def test_count_estimate_in_right_ballpark(self):
        data = make_outlier_dataset(
            n_points=5000, n_outliers=25, random_state=3
        )
        estimate = ApproximateOutlierDetector(
            k=data.guaranteed_radius, p=0, random_state=0
        ).estimate_outlier_count(data.points)
        assert 5 <= estimate <= 250  # one-pass estimate, order of magnitude

    def test_no_outliers_case(self):
        data = np.random.default_rng(4).normal(0, 0.05, size=(500, 2))
        result = ApproximateOutlierDetector(
            k=1.0, p=0, random_state=0
        ).detect(data)
        assert len(result) == 0

    def test_rejects_bad_screen(self):
        with pytest.raises(ParameterError, match="screen"):
            ApproximateOutlierDetector(k=0.1, p=0, screen="exact")

    def test_neighbor_counts_verified(self, simple_case):
        data, _ = simple_case
        result = ApproximateOutlierDetector(
            k=0.5, p=0, random_state=0
        ).detect(data)
        exact = IndexedOutlierDetector(k=0.5, p=0).detect(data)
        exact_counts = dict(zip(exact.indices.tolist(),
                                exact.neighbor_counts.tolist()))
        for idx, count in zip(result.indices.tolist(),
                              result.neighbor_counts.tolist()):
            assert exact_counts[idx] == count
