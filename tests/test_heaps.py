"""Tests for the indexed min-heap, including a randomized oracle check."""

import numpy as np
import pytest

from repro.utils.heaps import IndexedMinHeap


class TestBasics:
    def test_push_pop_ordering(self):
        heap = IndexedMinHeap()
        for item, key in (("a", 3.0), ("b", 1.0), ("c", 2.0)):
            heap.push(item, key)
        assert heap.pop() == ("b", 1.0)
        assert heap.pop() == ("c", 2.0)
        assert heap.pop() == ("a", 3.0)

    def test_peek_does_not_remove(self):
        heap = IndexedMinHeap()
        heap.push("x", 5.0)
        assert heap.peek() == ("x", 5.0)
        assert len(heap) == 1

    def test_contains_and_len(self):
        heap = IndexedMinHeap()
        heap.push(1, 0.5)
        assert 1 in heap
        assert 2 not in heap
        assert len(heap) == 1

    def test_push_existing_updates(self):
        heap = IndexedMinHeap()
        heap.push("a", 5.0)
        heap.push("b", 3.0)
        heap.push("a", 1.0)  # decrease key
        assert heap.pop() == ("a", 1.0)

    def test_update_increase_key(self):
        heap = IndexedMinHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.update("a", 10.0)
        assert heap.pop() == ("b", 2.0)

    def test_remove_arbitrary(self):
        heap = IndexedMinHeap()
        for i in range(10):
            heap.push(i, float(i))
        heap.remove(0)
        heap.remove(5)
        assert heap.pop() == (1, 1.0)
        assert len(heap) == 7

    def test_key_of(self):
        heap = IndexedMinHeap()
        heap.push("a", 2.5)
        assert heap.key_of("a") == 2.5

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop()

    def test_empty_peek_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().peek()


class TestRandomizedOracle:
    def test_against_sorted_reference(self):
        """Random mixed workload must always pop the true minimum."""
        rng = np.random.default_rng(7)
        heap = IndexedMinHeap()
        reference: dict[int, float] = {}
        next_item = 0
        for _ in range(2000):
            op = rng.random()
            if op < 0.5 or not reference:
                key = float(rng.random())
                heap.push(next_item, key)
                reference[next_item] = key
                next_item += 1
            elif op < 0.7:
                item = int(rng.choice(list(reference)))
                key = float(rng.random())
                heap.update(item, key)
                reference[item] = key
            elif op < 0.85:
                item = int(rng.choice(list(reference)))
                heap.remove(item)
                del reference[item]
            else:
                item, key = heap.pop()
                assert key == min(reference.values())
                assert reference[item] == key
                del reference[item]
        # Drain and confirm global ordering.
        drained = [heap.pop()[1] for _ in range(len(heap))]
        assert drained == sorted(drained)
