"""Tests for the trace exporters, the manifest diff, and `repro trace`.

The exporters are contracts with external consumers — Perfetto /
chrome://tracing for the Chrome trace-event JSON, any Prometheus
scraper for the text exposition — so these tests validate the *formats*
(against the embedded JSON schema and by round-tripping through the
minimal parser), not just our own reading of them.
"""

import json

import pytest

from repro.obs import (
    CHROME_TRACE_SCHEMA,
    Recorder,
    RunManifest,
    diff_manifests,
    parse_prometheus,
    span_coverage,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
)
from repro.cli import main as cli_main


def recorded_manifest(name="demo", with_workers=False):
    """A small real manifest: nested phases, counters, histograms."""
    rec = Recorder()
    with rec.phase(f"run:{name}"):
        with rec.phase("fit_density") as span:
            span.set(rows=100)
            rec.count("data_passes", 1)
            rec.count("points_seen", 100)
            rec.observe("kde_eval_chunk_seconds", 0.02)
        with rec.phase("eval_density"):
            rec.count("kernel_evals", 5000)
            if with_workers:
                rec.adopt_spans([
                    {"name": "worker_task", "start_s": 0.0,
                     "elapsed_s": 0.01, "attrs": {"worker": 0, "chunk": 0},
                     "children": []},
                    {"name": "worker_task", "start_s": 0.0,
                     "elapsed_s": 0.01, "attrs": {"worker": 1, "chunk": 1},
                     "children": []},
                ])
    return RunManifest.from_recorder(rec, name=name, seed=0)


def synthetic_manifest(name, timers, counters=None):
    """Manifest with hand-picked timers (for deterministic diff tests)."""
    spans = [
        {"name": phase, "start_s": 0.0, "elapsed_s": seconds,
         "counters": {}, "attrs": {}, "children": []}
        for phase, seconds in timers.items()
    ]
    return RunManifest(
        name=name, counters=dict(counters or {}), timers=dict(timers),
        spans=spans,
    )


class TestChromeTrace:
    def test_validates_against_embedded_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        trace = to_chrome_trace(recorded_manifest())
        jsonschema.validate(trace, CHROME_TRACE_SCHEMA)

    def test_internal_validator_agrees(self):
        trace = to_chrome_trace(recorded_manifest(with_workers=True))
        assert validate_chrome_trace(trace) == []

    def test_b_e_events_pair_and_order(self):
        trace = to_chrome_trace(recorded_manifest())
        slices = [e for e in trace["traceEvents"] if e["ph"] in "BE"]
        assert len(slices) % 2 == 0
        stack = []
        for event in slices:
            assert event["ts"] >= (slices[0]["ts"])
            if event["ph"] == "B":
                stack.append(event)
            else:
                opener = stack.pop()
                assert opener["name"] == event["name"]
                assert event["ts"] >= opener["ts"]
        assert stack == []

    def test_worker_spans_land_on_worker_tracks(self):
        trace = to_chrome_trace(recorded_manifest(with_workers=True))
        tids = {e["tid"] for e in trace["traceEvents"]
                if e["ph"] == "B" and e["name"] == "worker_task"}
        assert tids == {1, 2}  # worker w -> track w + 1; main is 0
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert 0 in thread_names
        assert {1, 2} <= set(thread_names)

    def test_validator_reports_unpaired_events(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
        ], "displayTimeUnit": "ms"}
        problems = validate_chrome_trace(trace)
        assert problems and any("never closed" in p for p in problems)


class TestPrometheus:
    def test_round_trips_through_parser(self):
        manifest = recorded_manifest()
        metrics = parse_prometheus(to_prometheus(manifest))
        run_label = ("run", manifest.name)
        for counter, value in manifest.counters.items():
            assert metrics[f"repro_{counter}_total"][(run_label,)] == value

    def test_histogram_series_are_cumulative(self):
        text = to_prometheus(recorded_manifest())
        metrics = parse_prometheus(text)
        buckets = {
            labels: value
            for name, series in metrics.items()
            if name == "repro_kde_eval_chunk_seconds_bucket"
            for labels, value in series.items()
        }
        values = [v for _, v in sorted(
            buckets.items(),
            key=lambda kv: float("inf")
            if dict(kv[0])["le"] == "+Inf" else float(dict(kv[0])["le"]),
        )]
        assert values == sorted(values)  # cumulative, monotone
        assert values[-1] == 1  # one observation total

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not an exposition\n")


class TestDiff:
    def test_identical_manifests_unchanged(self):
        a = synthetic_manifest("x", {"fit": 0.1}, {"data_passes": 2})
        result = diff_manifests(a, a)
        assert result.verdict == "unchanged"
        assert result.exit_code == 0

    def test_counter_difference_regresses(self):
        a = synthetic_manifest("x", {}, {"data_passes": 2})
        b = synthetic_manifest("x", {}, {"data_passes": 3})
        result = diff_manifests(a, b)
        assert result.verdict == "regressed"
        assert result.exit_code == 1
        assert "data_passes" in result.format()

    def test_slowdown_beyond_budget_regresses(self):
        a = synthetic_manifest("x", {"fit": 0.1})
        b = synthetic_manifest("x", {"fit": 0.5})
        assert diff_manifests(a, b).verdict == "regressed"
        # ...but a generous budget absorbs it.
        assert diff_manifests(a, b, budget=10.0).verdict == "unchanged"

    def test_speedup_beyond_budget_improves(self):
        a = synthetic_manifest("x", {"fit": 0.5})
        b = synthetic_manifest("x", {"fit": 0.1})
        assert diff_manifests(a, b).verdict == "improved"

    def test_sub_5ms_phases_never_flagged(self):
        a = synthetic_manifest("x", {"tiny": 0.0001})
        b = synthetic_manifest("x", {"tiny": 0.004})
        assert diff_manifests(a, b).verdict == "unchanged"

    def test_counters_only_ignores_timers(self):
        a = synthetic_manifest("x", {"fit": 0.1}, {"data_passes": 2})
        b = synthetic_manifest("x", {"fit": 9.9}, {"data_passes": 2})
        assert diff_manifests(a, b, counters_only=True).verdict == (
            "unchanged"
        )

    def test_invalid_budget_rejected(self):
        a = synthetic_manifest("x", {})
        with pytest.raises(ValueError):
            diff_manifests(a, a, budget=1.0)

    def test_ignore_patterns_exclude_counters(self):
        # The sharded-vs-serial CI leg: shard bookkeeping counters exist
        # on one side only, by construction.
        a = synthetic_manifest("x", {}, {"data_passes": 2})
        b = synthetic_manifest(
            "x", {}, {"data_passes": 2, "shards_fitted": 3, "shard_rows": 90}
        )
        assert diff_manifests(a, b).verdict == "regressed"
        result = diff_manifests(a, b, ignore=("shard*",))
        assert result.verdict == "unchanged"
        assert result.exit_code == 0

    def test_ignore_does_not_mask_real_differences(self):
        a = synthetic_manifest("x", {}, {"data_passes": 2})
        b = synthetic_manifest("x", {}, {"data_passes": 3, "shard_rows": 9})
        assert diff_manifests(a, b, ignore=("shard*",)).verdict == "regressed"


class TestSpanCoverage:
    def test_children_explain_parent(self):
        manifest = RunManifest(name="x", spans=[{
            "name": "run", "start_s": 0.0, "elapsed_s": 0.1,
            "counters": {}, "attrs": {}, "children": [
                {"name": "a", "start_s": 0.0, "elapsed_s": 0.06,
                 "counters": {}, "attrs": {}, "children": []},
                {"name": "b", "start_s": 0.06, "elapsed_s": 0.03,
                 "counters": {}, "attrs": {}, "children": []},
            ],
        }])
        coverage = span_coverage(manifest)
        assert coverage["run"] == pytest.approx(0.9)

    def test_leaves_and_fast_spans_skipped(self):
        manifest = RunManifest(name="x", spans=[{
            "name": "leaf", "start_s": 0.0, "elapsed_s": 1.0,
            "counters": {}, "attrs": {}, "children": [],
        }])
        assert span_coverage(manifest) == {}


class TestTraceCli:
    @pytest.fixture
    def manifest_path(self, tmp_path):
        path = tmp_path / "m.jsonl"
        recorded_manifest().emit(path)
        return str(path)

    def test_export_chrome_validates(self, manifest_path, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = cli_main(["trace", "export", manifest_path,
                       "--format", "chrome", "--validate",
                       "--output", str(out)])
        assert rc == 0
        trace = json.loads(out.read_text())
        assert validate_chrome_trace(trace) == []

    def test_export_prometheus_round_trips(self, manifest_path, capsys):
        rc = cli_main(["trace", "export", manifest_path,
                       "--format", "prometheus", "--validate"])
        assert rc == 0
        parse_prometheus(capsys.readouterr().out)

    def test_diff_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.jsonl"
        same = tmp_path / "same.jsonl"
        worse = tmp_path / "worse.jsonl"
        synthetic_manifest("x", {"fit": 0.1}, {"data_passes": 2}).emit(base)
        synthetic_manifest("x", {"fit": 0.1}, {"data_passes": 2}).emit(same)
        synthetic_manifest("x", {"fit": 0.1}, {"data_passes": 3}).emit(worse)
        assert cli_main(["trace", "diff", str(base), str(same)]) == 0
        assert cli_main(["trace", "diff", str(base), str(worse)]) == 1

    def test_diff_bad_file_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        with pytest.raises(SystemExit) as err:
            cli_main(["trace", "diff", missing, missing])
        assert err.value.code == 2

    def test_coverage_min_gate(self, manifest_path, capsys):
        assert cli_main(["trace", "coverage", manifest_path]) == 0
        capsys.readouterr()
        rc = cli_main(["trace", "coverage", manifest_path,
                       "--min", "1.1"])
        out = capsys.readouterr().out
        # Either nothing ran long enough to gate, or the impossible
        # threshold flags it.
        assert (rc == 0 and "no phase" in out) or (
            rc == 1 and "BELOW MIN" in out
        )
