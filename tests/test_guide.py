"""Tests for the practitioner's-guide recommendations."""

import numpy as np
import pytest

from repro.core import DensityBiasedSampler, recommend_settings
from repro.exceptions import ParameterError


class TestRecommendations:
    def test_dense_clusters_rule(self):
        rec = recommend_settings("dense-clusters", noise_level=0.6)
        assert rec.exponent == 1.0
        assert rec.n_kernels == 1000
        assert rec.sample_fraction == pytest.approx(0.01)

    def test_small_clusters_noise_interpolation(self):
        clean = recommend_settings("small-clusters", noise_level=0.0)
        mild = recommend_settings("small-clusters", noise_level=0.2)
        heavy = recommend_settings("small-clusters", noise_level=0.6)
        assert clean.exponent == -0.5
        assert mild.exponent == -0.25
        # More noise pushes the exponent toward (but not past) zero.
        assert clean.exponent < mild.exponent <= heavy.exponent < 0.0

    def test_outliers_lower_floor(self):
        rec = recommend_settings("outliers")
        assert rec.exponent < -1.0
        assert rec.density_floor_fraction < 0.01

    def test_coverage_is_minus_one(self):
        assert recommend_settings("coverage").exponent == -1.0

    def test_rationales_cite_the_paper(self):
        for task in ("dense-clusters", "small-clusters", "outliers",
                     "coverage"):
            assert "section" in recommend_settings(task).rationale

    def test_rejects_unknown_task(self):
        with pytest.raises(ParameterError, match="task"):
            recommend_settings("regression")

    def test_rejects_bad_noise(self):
        with pytest.raises(ParameterError, match="noise_level"):
            recommend_settings("dense-clusters", noise_level=1.5)


class TestMakeSampler:
    def test_builds_configured_sampler(self):
        rec = recommend_settings("dense-clusters")
        sampler = rec.make_sampler(n_points=50_000, random_state=0)
        assert isinstance(sampler, DensityBiasedSampler)
        assert sampler.sample_size == 500  # 1% of 50k
        assert sampler.exponent == 1.0

    def test_sampler_actually_works(self):
        rng = np.random.default_rng(0)
        data = np.vstack(
            [
                rng.normal(0.0, 0.05, size=(3000, 2)),
                rng.uniform(-1, 1, size=(3000, 2)),
            ]
        )
        rec = recommend_settings("dense-clusters", noise_level=0.5)
        sample = rec.make_sampler(len(data), random_state=0).sample(data)
        assert (sample.indices < 3000).mean() > 0.7

    def test_minimum_one_sample(self):
        rec = recommend_settings("coverage")
        assert rec.make_sampler(n_points=10).sample_size == 1


class TestCliGuide:
    def test_guide_command(self, capsys):
        from repro.cli import main

        assert main(["guide", "small-clusters", "--noise", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "exponent a" in out
        assert "-0.25" in out
