"""Tests for the Palmer-Faloutsos grid/hash biased sampler."""

import numpy as np
import pytest

from repro.baselines import GridBiasedSampler
from repro.exceptions import ParameterError


@pytest.fixture
def two_density_data():
    rng = np.random.default_rng(0)
    dense = rng.normal((0.25, 0.25), 0.02, size=(5000, 2))
    sparse = rng.uniform(0.5, 1.0, size=(1000, 2))
    return np.vstack([dense, sparse])


class TestGridSampler:
    def test_expected_size(self, two_density_data):
        sizes = [
            len(
                GridBiasedSampler(
                    sample_size=300, exponent=-0.5, random_state=seed
                ).sample(two_density_data)
            )
            for seed in range(8)
        ]
        assert abs(np.mean(sizes) - 300) < 60

    def test_exponent_one_is_uniform(self, two_density_data):
        sampler = GridBiasedSampler(
            sample_size=300, exponent=1.0, random_state=0
        )
        sample = sampler.sample(two_density_data)
        expected = 300 / two_density_data.shape[0]
        np.testing.assert_allclose(sample.probabilities, expected, rtol=1e-9)

    def test_negative_exponent_oversamples_sparse(self, two_density_data):
        sample = GridBiasedSampler(
            sample_size=400, exponent=-0.5, random_state=0
        ).sample(two_density_data)
        sparse_share = (sample.indices >= 5000).mean()
        # Sparse region is 1/6 of the data but should dominate the sample.
        assert sparse_share > 0.5

    def test_exponent_zero_equalises_groups(self):
        """e=0: every occupied cell expects the same sample count."""
        rng = np.random.default_rng(1)
        heavy = rng.uniform(0.0, 0.245, size=(9000, 2))
        light = rng.uniform(0.75, 0.995, size=(1000, 2))
        data = np.vstack([heavy, light])
        sample = GridBiasedSampler(
            sample_size=500, exponent=0.0, bins_per_dim=2, random_state=0
        ).sample(data)
        heavy_count = (sample.indices < 9000).sum()
        light_count = (sample.indices >= 9000).sum()
        assert abs(heavy_count - light_count) < 100

    def test_collisions_with_tiny_table(self, two_density_data):
        """A tiny hash table must still work, with collisions visible as
        fewer occupied buckets than true cells."""
        big = GridBiasedSampler(
            sample_size=300, exponent=-0.5, bins_per_dim=64,
            memory_bytes=1 << 22, random_state=0,
        )
        big.sample(two_density_data)
        tiny = GridBiasedSampler(
            sample_size=300, exponent=-0.5, bins_per_dim=64,
            memory_bytes=128, random_state=0,
        )
        tiny.sample(two_density_data)
        assert tiny.n_occupied_buckets_ <= 16
        assert big.n_occupied_buckets_ > tiny.n_occupied_buckets_

    def test_deterministic(self, two_density_data):
        a = GridBiasedSampler(sample_size=200, random_state=9).sample(
            two_density_data
        )
        b = GridBiasedSampler(sample_size=200, random_state=9).sample(
            two_density_data
        )
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_result_consistency(self, two_density_data):
        sample = GridBiasedSampler(
            sample_size=200, exponent=-0.5, random_state=0
        ).sample(two_density_data)
        np.testing.assert_array_equal(
            sample.points, two_density_data[sample.indices]
        )
        assert (sample.probabilities > 0).all()
        assert (sample.probabilities <= 1).all()

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            GridBiasedSampler(sample_size=0)
        with pytest.raises(ParameterError):
            GridBiasedSampler(bins_per_dim=0)
        with pytest.raises(ParameterError):
            GridBiasedSampler(memory_bytes=0)
