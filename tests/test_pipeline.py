"""Tests for the one-call approximate-clustering pipeline."""

import numpy as np
import pytest

from repro import ApproximateClusteringPipeline, UniformSampler
from repro.clustering import KMeans
from repro.datasets import make_clustered_dataset
from repro.evaluation import adjusted_rand_index
from repro.exceptions import ParameterError
from repro.pipeline import _keep_largest
from repro.utils.streams import DataStream


@pytest.fixture
def blobs():
    rng = np.random.default_rng(0)
    return np.vstack(
        [rng.normal(c, 0.05, (2000, 2)) for c in ((0, 0), (1, 1), (0, 1))]
    )


class TestPipeline:
    def test_recovers_blobs(self, blobs):
        result = ApproximateClusteringPipeline(
            n_clusters=3, random_state=0
        ).fit(blobs)
        truth = np.repeat([0, 1, 2], 2000)
        assert adjusted_rand_index(truth, result.labels) > 0.95

    def test_reports_all_components(self, blobs):
        result = ApproximateClusteringPipeline(
            n_clusters=3, random_state=0
        ).fit(blobs)
        assert result.labels.shape == (6000,)
        assert result.clustering.n_clusters == 3
        assert len(result.sample) > 0
        assert result.n_passes == 4  # fit + normalise + gather + assign

    def test_noisy_dataset_with_guide_settings(self):
        data = make_clustered_dataset(
            n_points=20_000, n_clusters=5, noise_fraction=0.5,
            random_state=1,
        )
        result = ApproximateClusteringPipeline(
            n_clusters=5,
            task="dense-clusters",
            noise_level=0.5,
            random_state=0,
        ).fit(data.points)
        keep = data.labels >= 0
        score = adjusted_rand_index(
            data.labels[keep], result.labels[keep]
        )
        assert score > 0.6

    def test_custom_sampler(self, blobs):
        result = ApproximateClusteringPipeline(
            n_clusters=3,
            sampler=UniformSampler(300, random_state=0),
        ).fit(blobs)
        assert result.sample.exponent == 0.0

    def test_custom_clusterer(self, blobs):
        result = ApproximateClusteringPipeline(
            n_clusters=3,
            clusterer=KMeans(n_clusters=3, random_state=0),
            random_state=0,
        ).fit(blobs)
        assert result.clustering.n_clusters == 3

    def test_stream_input_and_pass_accounting(self, blobs):
        stream = DataStream(blobs)
        list(stream)  # unrelated earlier pass
        result = ApproximateClusteringPipeline(
            n_clusters=3, random_state=0
        ).fit(None, stream=stream)
        assert result.n_passes == 4  # counts only the pipeline's own

    def test_tiny_sample_rejected(self):
        data = np.random.default_rng(0).random((40, 2))
        pipeline = ApproximateClusteringPipeline(
            n_clusters=3,
            sampler=UniformSampler(2, exact_size=True, random_state=0),
        )
        with pytest.raises(ParameterError, match="sample holds only"):
            pipeline.fit(data)

    def test_rejects_bad_n_clusters(self):
        with pytest.raises(ParameterError):
            ApproximateClusteringPipeline(n_clusters=0)


class TestKeepLargest:
    def test_truncates_and_relabels(self):
        from repro.clustering.base import ClusteringResult

        clustering = ClusteringResult(
            labels=np.array([0, 0, 0, 1, 2, 2]),
            centers=np.array([[0.0], [1.0], [2.0]]),
            representatives=[np.zeros((1, 1)), np.ones((1, 1)),
                             np.full((1, 1), 2.0)],
            sizes=np.array([3, 1, 2]),
        )
        top2 = _keep_largest(clustering, 2)
        assert top2.n_clusters == 2
        # Cluster 1 (size 1) was dropped; its members become -1.
        assert (top2.labels == -1).sum() == 1
        assert top2.sizes.tolist() == [3, 2]

    def test_noop_when_small_enough(self):
        from repro.clustering.base import ClusteringResult

        clustering = ClusteringResult(
            labels=np.array([0, 1]),
            centers=np.zeros((2, 1)),
            representatives=[np.zeros((1, 1))] * 2,
            sizes=np.array([1, 1]),
        )
        assert _keep_largest(clustering, 5) is clustering
