"""Sanity checks on the example scripts.

Each example is a long-running demo, so the suite does not execute
their ``main()``s; it verifies that every script parses, imports only
available modules, and exposes the expected entry point.
"""

import ast
import importlib.util
import os
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.stem for path in EXAMPLE_FILES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable minimum, comfortably beaten


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=lambda p: p.stem
)
class TestEveryExample:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_docstring_and_run_hint(self, path):
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc, f"{path.name} needs a module docstring"
        assert "Run:" in doc, f"{path.name} docstring should say how to run"

    def test_defines_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source
        assert "def main(" in source

    def test_importable(self, path):
        """Module-level code (imports, constants) must execute cleanly."""
        spec = importlib.util.spec_from_file_location(
            f"example_{path.stem}", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)

    def test_imports_only_public_api(self, path):
        """Examples should demonstrate the public API: no private
        (`_underscore`) repro modules."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    assert "._" not in node.module, (
                        f"{path.name} imports private module {node.module}"
                    )
