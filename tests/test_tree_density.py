"""Statistical-oracle and determinism suite for the tree estimator.

Two layers:

* **Oracle** — on the paper's fig. 3 (CURE dataset 1) and fig. 5
  mixtures, the forest's density field must agree with the *exact* KDE
  (every dataset point a kernel center): relative L1 error within a
  fixed bound and Spearman rank correlation of the density orderings
  at or above 0.95. The exact KDE is the right reference — a
  subsampled 1000-center KDE carries sampling noise of its own (two
  such KDEs with different seeds agree at only ~0.89 on fig. 3).
* **Determinism** — fits and evaluations are byte-identical across
  worker counts and shard counts, because every fold in the fit is
  exact integer/min/max algebra.
"""

import numpy as np
import pytest

from repro.datasets.cure_dataset import cure_dataset1
from repro.datasets.synthetic import make_fig5_dataset
from repro.density import KernelDensityEstimator, TreeDensityEstimator
from repro.density.tree import tree_leaf_indices
from repro.exceptions import (
    DataValidationError,
    NotFittedError,
    ParameterError,
)
from repro.obs import Recorder, use_recorder
from repro.parallel import use_n_jobs
from repro.sharding import use_shards
from repro.utils.streams import DataStream

N_ORACLE = 20_000
N_QUERIES = 4_000
RANK_CORR_FLOOR = 0.95
L1_CEILING = 0.25


def _rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation of two density orderings."""
    ranks_a = np.argsort(np.argsort(a))
    ranks_b = np.argsort(np.argsort(b))
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


def _oracle_case(points: np.ndarray) -> dict:
    rng = np.random.default_rng(7)
    queries = points[
        rng.choice(points.shape[0], N_QUERIES, replace=False)
    ]
    exact = KernelDensityEstimator(
        n_kernels=points.shape[0], random_state=0
    ).fit(points)
    tree = TreeDensityEstimator(random_state=0).fit(points)
    return {
        "points": points,
        "queries": queries,
        "exact": exact.evaluate(queries),
        "tree": tree.evaluate(queries),
    }


@pytest.fixture(scope="module")
def fig3_case():
    return _oracle_case(
        cure_dataset1(n_points=N_ORACLE, random_state=0).points
    )


@pytest.fixture(scope="module")
def fig5_case():
    return _oracle_case(
        make_fig5_dataset(n_points=N_ORACLE, random_state=0).points
    )


class TestStatisticalOracle:
    def test_fig3_rank_correlation(self, fig3_case):
        corr = _rank_correlation(fig3_case["tree"], fig3_case["exact"])
        assert corr >= RANK_CORR_FLOOR

    def test_fig5_rank_correlation(self, fig5_case):
        corr = _rank_correlation(fig5_case["tree"], fig5_case["exact"])
        assert corr >= RANK_CORR_FLOOR

    def test_fig3_l1_error(self, fig3_case):
        exact = fig3_case["exact"]
        err = np.abs(fig3_case["tree"] - exact).sum() / exact.sum()
        assert err <= L1_CEILING

    def test_fig5_l1_error(self, fig5_case):
        exact = fig5_case["exact"]
        err = np.abs(fig5_case["tree"] - exact).sum() / exact.sum()
        assert err <= L1_CEILING

    def test_densities_nonnegative_and_finite(self, fig3_case):
        values = fig3_case["tree"]
        assert np.isfinite(values).all()
        assert (values >= 0.0).all()

    def test_total_mass_matches_dataset(self, fig3_case):
        # Densities integrate to n over the domain: summing
        # rate * leaf_volume over any one tree recovers n exactly.
        est = TreeDensityEstimator(random_state=0).fit(
            fig3_case["points"]
        )
        masses = (est.rate_ * est.leaf_volumes_).sum(axis=1)
        assert masses == pytest.approx(
            np.full(est.n_trees, est.n_points_)
        )


def _fit_eval(points, queries, n_jobs, shards):
    with use_n_jobs(n_jobs), use_shards(shards):
        estimator = TreeDensityEstimator(random_state=0)
        estimator.fit(stream=DataStream(points, chunk_size=1024))
        return estimator, estimator.evaluate(queries)


class TestByteEquivalence:
    """Same bytes for every (n_jobs, shards) execution shape."""

    @pytest.fixture(scope="class")
    def case(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(8_000, 3))
        queries = rng.normal(size=(500, 3))
        baseline, densities = _fit_eval(points, queries, 1, 1)
        return points, queries, baseline, densities

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    @pytest.mark.parametrize("shards", [1, 3])
    def test_fit_and_eval_bytes(self, case, n_jobs, shards):
        points, queries, baseline, densities = case
        estimator, values = _fit_eval(points, queries, n_jobs, shards)
        assert (
            estimator.thresholds_.tobytes()
            == baseline.thresholds_.tobytes()
        )
        assert estimator.counts_.tobytes() == baseline.counts_.tobytes()
        assert values.tobytes() == densities.tobytes()

    def test_seed_determinism(self, case):
        points, queries, baseline, _ = case
        again = TreeDensityEstimator(random_state=0).fit(points)
        assert again.counts_.tobytes() == baseline.counts_.tobytes()
        other = TreeDensityEstimator(random_state=1).fit(points)
        assert (
            other.thresholds_.tobytes() != baseline.thresholds_.tobytes()
        )


class TestFitting:
    def test_two_passes_by_default(self):
        stream = DataStream(np.random.default_rng(0).random((500, 2)))
        TreeDensityEstimator(random_state=0).fit(stream=stream)
        assert stream.passes == 2

    def test_explicit_bounds_skip_the_bounds_pass(self):
        stream = DataStream(np.random.default_rng(0).random((500, 2)))
        TreeDensityEstimator(
            bounds=([0.0, 0.0], [1.0, 1.0]), random_state=0
        ).fit(stream=stream)
        assert stream.passes == 1

    def test_empty_stream_raises(self):
        with pytest.raises(DataValidationError, match="at least 1"):
            TreeDensityEstimator(random_state=0).fit(
                np.empty((0, 2))
            )

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            TreeDensityEstimator().evaluate([[0.0, 0.0]])

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError, match="n_trees"):
            TreeDensityEstimator(n_trees=0)
        with pytest.raises(ParameterError, match="max_depth"):
            TreeDensityEstimator(max_depth=0)

    def test_degenerate_dimension_survives(self):
        # A constant column would produce zero-volume leaves without
        # the build-time padding; densities must stay finite.
        rng = np.random.default_rng(2)
        data = np.column_stack(
            [rng.normal(size=400), np.full(400, 3.5)]
        )
        estimator = TreeDensityEstimator(random_state=0).fit(data)
        values = estimator.evaluate(data[:50])
        assert np.isfinite(values).all()

    def test_leaf_volumes_positive(self):
        rng = np.random.default_rng(4)
        estimator = TreeDensityEstimator(random_state=0).fit(
            rng.normal(size=(2_000, 2))
        )
        assert (estimator.leaf_volumes_ > 0.0).all()

    def test_counts_cover_every_point(self):
        rng = np.random.default_rng(5)
        estimator = TreeDensityEstimator(random_state=0).fit(
            rng.normal(size=(1_500, 2))
        )
        assert (estimator.counts_.sum(axis=1) == 1_500).all()


class TestLeafRouting:
    def test_routes_match_manual_descent(self):
        rng = np.random.default_rng(6)
        estimator = TreeDensityEstimator(
            n_trees=4, max_depth=3, random_state=0
        ).fit(rng.normal(size=(1_000, 2)))
        points = rng.normal(size=(32, 2))
        leaves = tree_leaf_indices(
            points, estimator.features_, estimator.thresholds_
        )
        n_internal = estimator.features_.shape[1]
        for t in range(4):
            for i, x in enumerate(points):
                node = 0
                while node < n_internal:
                    feature = estimator.features_[t, node]
                    threshold = estimator.thresholds_[t, node]
                    node = 2 * node + 1 + int(x[feature] > threshold)
                assert leaves[t, i] == node - n_internal


class TestOverlayTables:
    """The O(1) lookup tables route bit-identically to the descent."""

    def test_table_route_matches_descent_bytes(self):
        rng = np.random.default_rng(11)
        est = TreeDensityEstimator(random_state=0).fit(
            rng.normal(size=(5_000, 2))
        )
        assert est._tables is not None
        queries = rng.normal(scale=2.0, size=(3_000, 2))
        # Queries exactly on split thresholds exercise the tie-routing
        # corner (<= goes left) the bin tables must reproduce.
        queries[:64, 0] = est.thresholds_[0][:64]
        leaves = tree_leaf_indices(
            queries, est.features_, est.thresholds_
        )
        expected = np.zeros(queries.shape[0])
        for t in range(est.n_trees):
            expected += est.rate_[t][leaves[t]]
        expected /= est.n_trees
        actual = est._evaluate_cells(queries)
        assert actual.tobytes() == expected.tobytes()

    def test_high_dim_falls_back_to_descent(self):
        # At d=4 the per-dim threshold cross product blows past the
        # cell cap; the overlay is skipped and eval uses the descent.
        rng = np.random.default_rng(12)
        est = TreeDensityEstimator(random_state=0).fit(
            rng.normal(size=(2_000, 4))
        )
        assert est._tables is None
        values = est.evaluate(rng.normal(size=(100, 4)))
        assert np.isfinite(values).all()
        assert (values >= 0.0).all()


class TestObservability:
    def test_counters(self):
        rng = np.random.default_rng(8)
        recorder = Recorder()
        with use_recorder(recorder):
            estimator = TreeDensityEstimator(
                n_trees=8, max_depth=4, random_state=0
            ).fit(rng.normal(size=(1_000, 2)))
            estimator.evaluate(rng.normal(size=(300, 2)))
        assert recorder.counters["tree_nodes_built"] == 8 * (2**4 - 1)
        assert recorder.counters["tree_lookups"] == 300 * 8
        assert recorder.counters["data_passes"] == 2
