"""Tests for the paper's evaluation criteria."""

import numpy as np
import pytest

from repro.clustering.base import ClusteringResult
from repro.core import DensityBiasedSampler, UniformSampler
from repro.datasets import HyperRectangle, make_clustered_dataset
from repro.evaluation import (
    birch_found_clusters,
    count_found_clusters,
    density_order_preservation,
    found_clusters,
    noise_fraction_in_sample,
    outlier_precision_recall,
    sample_share_per_cluster,
)
from repro.exceptions import ParameterError


def _result_with_reps(reps_list, centers=None):
    n_clusters = len(reps_list)
    centers = (
        np.array(centers)
        if centers is not None
        else np.vstack(
            [
                np.asarray(r, dtype=float).mean(axis=0)
                if len(r)
                else np.zeros(2)
                for r in reps_list
            ]
        )
    )
    return ClusteringResult(
        labels=np.zeros(1, dtype=np.int64),
        centers=centers,
        representatives=[np.asarray(r, dtype=float) for r in reps_list],
        sizes=np.ones(n_clusters, dtype=np.int64),
    )


TRUE = [
    HyperRectangle([0.0, 0.0], [1.0, 1.0]),
    HyperRectangle([2.0, 2.0], [3.0, 3.0]),
]


class TestFoundClusters:
    def test_clean_match(self):
        result = _result_with_reps(
            [np.full((10, 2), 0.5), np.full((10, 2), 2.5)]
        )
        assert found_clusters(result, TRUE) == {0, 1}

    def test_straddling_cluster_claims_nothing(self):
        straddle = np.vstack([np.full((5, 2), 0.5), np.full((5, 2), 2.5)])
        result = _result_with_reps([straddle])
        assert found_clusters(result, TRUE) == set()

    def test_threshold_exactly_90pct(self):
        reps = np.vstack([np.full((9, 2), 0.5), [[10.0, 10.0]]])
        result = _result_with_reps([reps])
        assert found_clusters(result, TRUE, threshold=0.9) == {0}
        assert found_clusters(result, TRUE, threshold=0.95) == set()

    def test_split_counts_once(self):
        result = _result_with_reps(
            [np.full((10, 2), 0.3), np.full((10, 2), 0.7)]
        )
        assert count_found_clusters(result, TRUE) == 1

    def test_empty_reps_skipped(self):
        result = _result_with_reps([np.empty((0, 2)), np.full((5, 2), 2.5)])
        assert found_clusters(result, TRUE) == {1}

    def test_requires_true_clusters(self):
        result = _result_with_reps([np.full((5, 2), 0.5)])
        with pytest.raises(ParameterError):
            found_clusters(result, [])

    def test_birch_criterion(self):
        result = _result_with_reps(
            [np.full((1, 2), 0.5)], centers=[[0.5, 0.5], [5.0, 5.0]]
        )
        assert birch_found_clusters(result, TRUE) == {0}


class TestOutlierPrecisionRecall:
    def test_perfect(self):
        assert outlier_precision_recall([1, 2], [1, 2]) == (1.0, 1.0)

    def test_partial(self):
        precision, recall = outlier_precision_recall([1, 2, 3, 4], [1, 2])
        assert precision == 0.5 and recall == 1.0

    def test_empty_prediction(self):
        precision, recall = outlier_precision_recall([], [1])
        assert precision == 1.0 and recall == 0.0

    def test_both_empty(self):
        assert outlier_precision_recall([], []) == (1.0, 1.0)


class TestDensityOrderPreservation:
    def test_preserved_under_uniform_sampling(self):
        data = make_clustered_dataset(
            n_points=30_000, n_clusters=5, density_ratio=10.0, random_state=0
        )
        sample = UniformSampler(2000, random_state=0).sample(data.points)
        pairs = [
            (data.clusters[i], data.clusters[j])
            for i in range(5)
            for j in range(i + 1, 5)
        ]
        assert (
            density_order_preservation(data.points, sample.points, pairs)
            >= 0.8
        )

    def test_requires_pairs(self):
        with pytest.raises(ParameterError):
            density_order_preservation(
                np.zeros((2, 2)), np.zeros((2, 2)), []
            )


class TestSampleComposition:
    @pytest.fixture
    def noisy_data(self):
        return make_clustered_dataset(
            n_points=20_000,
            n_clusters=5,
            noise_fraction=0.5,
            random_state=0,
        )

    def test_noise_fraction_reduced_by_positive_a(self, noisy_data):
        biased = DensityBiasedSampler(
            sample_size=600, exponent=1.0, random_state=0
        ).sample(noisy_data.points)
        uniform = UniformSampler(600, random_state=0).sample(
            noisy_data.points
        )
        assert noise_fraction_in_sample(
            biased, noisy_data
        ) < noise_fraction_in_sample(uniform, noisy_data)

    def test_uniform_noise_fraction_matches_data(self, noisy_data):
        uniform = UniformSampler(2000, random_state=0).sample(
            noisy_data.points
        )
        data_noise = 0.5 / 1.5  # fn=0.5 on top of cluster points
        assert noise_fraction_in_sample(uniform, noisy_data) == pytest.approx(
            data_noise, abs=0.05
        )

    def test_sample_share_per_cluster(self, noisy_data):
        uniform = UniformSampler(2000, random_state=0).sample(
            noisy_data.points
        )
        shares = sample_share_per_cluster(uniform, noisy_data)
        expected = 2000 / noisy_data.n_points
        np.testing.assert_allclose(shares, expected, atol=0.05)

    def test_empty_sample(self, noisy_data):
        from repro.core.biased import BiasedSample

        empty = BiasedSample(
            points=np.empty((0, 2)),
            indices=np.empty(0, dtype=np.int64),
            probabilities=np.empty(0),
            exponent=1.0,
            expected_size=0.0,
            n_source=noisy_data.n_points,
        )
        assert noise_fraction_in_sample(empty, noisy_data) == 0.0
