"""Tests for the shared experiment helpers."""

import pytest

from repro.datasets import make_clustered_dataset
from repro.experiments._common import (
    EXTRA_CLUSTERS,
    biased_sample,
    cure_found,
    run_biased,
    run_birch,
    run_grid,
    run_uniform,
    scaled,
)


class TestScaled:
    def test_scales(self):
        assert scaled(1000, 0.5) == 500

    def test_minimum_enforced(self):
        assert scaled(1000, 0.001, minimum=50) == 50

    def test_rounds(self):
        assert scaled(1001, 0.1) == 100


class TestPipelineHelpers:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_clustered_dataset(
            n_points=8000,
            n_clusters=4,
            noise_fraction=0.1,
            random_state=0,
        )

    def test_biased_sample_size(self, dataset):
        sample = biased_sample(dataset, 300, exponent=1.0, seed=0)
        assert abs(len(sample) - 300) < 80

    def test_cure_found_range(self, dataset):
        sample = biased_sample(dataset, 400, exponent=1.0, seed=0)
        found = cure_found(dataset, sample.points, n_clusters=4)
        assert 0 <= found <= 4

    def test_tiny_sample_scores_zero(self, dataset):
        sample = biased_sample(dataset, 3, exponent=1.0, seed=0)
        assert cure_found(dataset, sample.points, n_clusters=4) == 0

    def test_runners_return_averaged_scores(self, dataset):
        b = run_biased(dataset, 300, exponent=1.0, n_clusters=4, seed=0,
                       n_seeds=2)
        u = run_uniform(dataset, 300, n_clusters=4, seed=0, n_seeds=2)
        g = run_grid(dataset, 300, exponent=-0.5, n_clusters=4, seed=0,
                     n_seeds=2)
        for value in (b, u, g):
            assert 0.0 <= value <= 4.0

    def test_birch_runner(self, dataset):
        found = run_birch(dataset, budget=200, n_clusters=4)
        assert 0 <= found <= 4

    def test_extra_clusters_constant_sane(self):
        assert 1 <= EXTRA_CLUSTERS <= 10
