"""Tests for the density-biased sampler (the paper's Figure 1 algorithm)."""

import numpy as np
import pytest

from repro.core import DensityBiasedSampler, UniformSampler
from repro.density import GridDensityEstimator, KernelDensityEstimator
from repro.exceptions import ParameterError
from repro.utils.streams import DataStream


@pytest.fixture
def two_density_data():
    """Half the points in a tight blob, half spread over a wide square."""
    rng = np.random.default_rng(7)
    dense = rng.normal(0.0, 0.05, size=(3000, 2))
    sparse = rng.uniform(-2.0, 2.0, size=(3000, 2))
    return np.vstack([dense, sparse])


class TestProperties:
    """The paper's Property 1 and Property 2 (section 2.1)."""

    def test_expected_size_matches_budget(self, two_density_data):
        """Property 2: the expected sample size is b."""
        sampler = DensityBiasedSampler(
            sample_size=500, exponent=1.0, random_state=0
        )
        sampler.sample(two_density_data)
        assert sampler.probabilities_.sum() == pytest.approx(500, rel=0.02)

    def test_achieved_size_concentrates(self, two_density_data):
        sizes = [
            len(
                DensityBiasedSampler(
                    sample_size=400, exponent=0.5, random_state=seed
                ).sample(two_density_data)
            )
            for seed in range(10)
        ]
        assert abs(np.mean(sizes) - 400) < 30

    def test_probability_is_function_of_density(self, two_density_data):
        """Property 1: equal densities get equal probabilities."""
        sampler = DensityBiasedSampler(
            sample_size=300, exponent=1.0, random_state=0
        )
        sampler.sample(two_density_data)
        dens = sampler.estimator_.evaluate(two_density_data)
        probs = sampler.probabilities_
        order = np.argsort(dens)
        # Probabilities must be monotone in density for a > 0.
        assert (np.diff(probs[order]) >= -1e-12).all()

    def test_probabilities_clipped_to_one(self, two_density_data):
        sampler = DensityBiasedSampler(
            sample_size=5000, exponent=2.0, random_state=0
        )
        sampler.sample(two_density_data)
        assert sampler.probabilities_.max() <= 1.0


class TestExponentRegimes:
    def test_zero_exponent_is_uniform(self, two_density_data):
        sampler = DensityBiasedSampler(
            sample_size=500, exponent=0.0, random_state=0
        )
        sampler.sample(two_density_data)
        expected = 500 / two_density_data.shape[0]
        np.testing.assert_allclose(sampler.probabilities_, expected)

    def test_positive_exponent_oversamples_dense(self, two_density_data):
        sample = DensityBiasedSampler(
            sample_size=600, exponent=1.0, random_state=0
        ).sample(two_density_data)
        dense_share = (sample.indices < 3000).mean()
        assert dense_share > 0.75

    def test_negative_exponent_oversamples_sparse(self, two_density_data):
        sample = DensityBiasedSampler(
            sample_size=600, exponent=-0.5, random_state=0
        ).sample(two_density_data)
        dense_share = (sample.indices < 3000).mean()
        assert dense_share < 0.35

    def test_minus_one_equalises_volume(self):
        """a = -1: equal expected sample points in equal volumes."""
        rng = np.random.default_rng(0)
        left = rng.uniform((0.0, 0.0), (0.5, 1.0), size=(8000, 2))
        right = rng.uniform((0.5, 0.0), (1.0, 1.0), size=(2000, 2))
        data = np.vstack([left, right])
        sampler = DensityBiasedSampler(
            sample_size=1000, exponent=-1.0, random_state=0
        )
        sample = sampler.sample(data)
        left_share = (sample.points[:, 0] < 0.5).mean()
        assert left_share == pytest.approx(0.5, abs=0.1)


class TestMechanics:
    def test_three_passes_with_unfitted_estimator(self, two_density_data):
        stream = DataStream(two_density_data)
        DensityBiasedSampler(
            sample_size=200, exponent=1.0, random_state=0
        ).sample(None, stream=stream)
        assert stream.passes == 3  # fit + densities + gather

    def test_two_passes_with_prefitted_estimator(self, two_density_data):
        estimator = KernelDensityEstimator(
            n_kernels=100, random_state=0
        ).fit(two_density_data)
        stream = DataStream(two_density_data)
        DensityBiasedSampler(
            sample_size=200, exponent=1.0, estimator=estimator, random_state=0
        ).sample(None, stream=stream)
        assert stream.passes == 2

    def test_result_fields_consistent(self, two_density_data):
        sample = DensityBiasedSampler(
            sample_size=300, exponent=0.5, random_state=1
        ).sample(two_density_data)
        assert len(sample) == sample.points.shape[0]
        assert sample.indices.shape[0] == len(sample)
        assert sample.probabilities.shape[0] == len(sample)
        assert sample.densities.shape[0] == len(sample)
        assert sample.n_source == two_density_data.shape[0]
        np.testing.assert_array_equal(
            sample.points, two_density_data[sample.indices]
        )

    def test_weights_are_inverse_probabilities(self, two_density_data):
        sample = DensityBiasedSampler(
            sample_size=300, exponent=1.0, random_state=0
        ).sample(two_density_data)
        np.testing.assert_allclose(
            sample.weights, 1.0 / sample.probabilities
        )

    def test_exact_size_mode(self, two_density_data):
        sample = DensityBiasedSampler(
            sample_size=250, exponent=1.0, exact_size=True, random_state=0
        ).sample(two_density_data)
        assert len(sample) == 250
        assert np.unique(sample.indices).shape[0] == 250

    def test_exact_size_capped_by_dataset(self):
        data = np.random.default_rng(0).normal(size=(50, 2))
        sample = DensityBiasedSampler(
            sample_size=100, exponent=0.5, exact_size=True, random_state=0
        ).sample(data)
        assert len(sample) == 50

    def test_deterministic_given_seed(self, two_density_data):
        a = DensityBiasedSampler(
            sample_size=200, exponent=1.0, random_state=3
        ).sample(two_density_data)
        b = DensityBiasedSampler(
            sample_size=200, exponent=1.0, random_state=3
        ).sample(two_density_data)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_alternative_estimator_backend(self, two_density_data):
        sample = DensityBiasedSampler(
            sample_size=300,
            exponent=1.0,
            estimator=GridDensityEstimator(bins_per_dim=16),
            random_state=0,
        ).sample(two_density_data)
        dense_share = (sample.indices < 3000).mean()
        assert dense_share > 0.7

    def test_negative_exponent_with_zero_density_points(self):
        """Isolated points (zero KDE density) must not break a < 0."""
        rng = np.random.default_rng(0)
        blob = rng.normal(0.0, 0.01, size=(2000, 2))
        isolated = np.array([[100.0, 100.0], [-100.0, -50.0]])
        data = np.vstack([blob, isolated])
        # Outlier-hunting configuration: a deliberately low floor so
        # isolated points dominate (the default 0.05 floor bounds the
        # boost for cluster work instead).
        sampler = DensityBiasedSampler(
            sample_size=50,
            exponent=-0.5,
            density_floor_fraction=1e-6,
            random_state=0,
        )
        sampler.sample(data)
        # The isolated points are maximally sparse: their inclusion
        # probability must dwarf every blob point's (no inf/NaN blowup).
        iso_probs = sampler.probabilities_[2000:]
        blob_max = sampler.probabilities_[:2000].max()
        assert np.isfinite(sampler.probabilities_).all()
        assert iso_probs.min() > 10 * blob_max

    def test_default_floor_bounds_empty_space_boost(self):
        """With the default floor, zero-density points get a bounded
        boost (floor**a) rather than dominating the sample."""
        rng = np.random.default_rng(0)
        blob = rng.normal(0.0, 0.01, size=(2000, 2))
        isolated = np.array([[100.0, 100.0]])
        sampler = DensityBiasedSampler(
            sample_size=50, exponent=-0.5, random_state=0
        )
        sampler.sample(np.vstack([blob, isolated]))
        iso = sampler.probabilities_[-1]
        mean_prob = sampler.probabilities_[:2000].mean()
        assert iso < 50 * mean_prob

    def test_rejects_bad_sample_size(self):
        with pytest.raises(ParameterError):
            DensityBiasedSampler(sample_size=0)


class TestUniformSampler:
    def test_expected_size(self):
        data = np.random.default_rng(0).normal(size=(10_000, 2))
        sizes = [
            len(UniformSampler(500, random_state=s).sample(data))
            for s in range(10)
        ]
        assert abs(np.mean(sizes) - 500) < 40

    def test_exact_size_mode(self):
        data = np.random.default_rng(0).normal(size=(1000, 2))
        sample = UniformSampler(100, exact_size=True, random_state=0).sample(
            data
        )
        assert len(sample) == 100

    def test_probabilities_flat(self):
        data = np.random.default_rng(0).normal(size=(1000, 2))
        sample = UniformSampler(100, random_state=0).sample(data)
        np.testing.assert_allclose(sample.probabilities, 0.1)

    def test_exponent_marker_is_zero(self):
        data = np.random.default_rng(0).normal(size=(100, 2))
        assert UniformSampler(10, random_state=0).sample(data).exponent == 0.0

    def test_oversized_budget(self):
        data = np.random.default_rng(0).normal(size=(50, 2))
        sample = UniformSampler(500, random_state=0).sample(data)
        assert len(sample) == 50

    def test_oversized_budget_expected_size(self):
        """Regression: with b > n at most n points can be drawn, so the
        reported expectation is n * min(1, b/n) = n, not b."""
        data = np.random.default_rng(0).normal(size=(50, 2))
        for exact in (False, True):
            sample = UniformSampler(
                500, exact_size=exact, random_state=0
            ).sample(data)
            assert sample.expected_size == 50.0
            np.testing.assert_allclose(sample.probabilities, 1.0)
