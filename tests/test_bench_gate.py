"""Tests for the calibrated benchmark regression gate (tools/bench_gate)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.bench_gate import calibrate, load_medians, main  # noqa: E402


def _bench_json(path: Path, medians: dict[str, float], **extra) -> Path:
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"median": median}}
            for name, median in medians.items()
        ],
        **extra,
    }
    path.write_text(json.dumps(payload))
    return path


class TestBenchGate:
    def test_load_medians(self, tmp_path):
        path = _bench_json(tmp_path / "b.json", {"test_a": 0.5, "test_b": 1.0})
        assert load_medians(path) == {"test_a": 0.5, "test_b": 1.0}

    def test_calibration_is_positive_and_repeatable_order(self):
        first, second = calibrate(rounds=2), calibrate(rounds=2)
        assert first > 0 and second > 0
        # Same workload on the same machine: within an order of
        # magnitude (this is a sanity check, not a timing assertion).
        assert 0.1 < first / second < 10

    def test_bootstrap_when_baseline_missing(self, tmp_path, capsys):
        current = _bench_json(tmp_path / "cur.json", {"test_a": 0.5})
        assert (
            main([str(current), "--baseline", str(tmp_path / "nope.json")])
            == 0
        )
        assert "bootstrap" in capsys.readouterr().out

    def test_bootstrap_when_baseline_uncalibrated(self, tmp_path, capsys):
        current = _bench_json(tmp_path / "cur.json", {"test_a": 0.5})
        baseline = _bench_json(tmp_path / "base.json", {"test_a": 0.5})
        assert main([str(current), "--baseline", str(baseline)]) == 0
        assert "bootstrap" in capsys.readouterr().out

    def test_write_baseline_injects_calibration(self, tmp_path, capsys):
        baseline = _bench_json(tmp_path / "base.json", {"test_a": 0.5})
        assert main([str(baseline), "--write-baseline"]) == 0
        payload = json.loads(baseline.read_text())
        assert payload["calibration_seconds"] > 0

    def test_within_budget_passes(self, tmp_path, capsys):
        cal = calibrate(rounds=2)
        baseline = _bench_json(
            tmp_path / "base.json",
            {"test_a": 0.5},
            calibration_seconds=cal,
        )
        current = _bench_json(tmp_path / "cur.json", {"test_a": 0.6})
        assert main([str(current), "--baseline", str(baseline)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        cal = calibrate(rounds=2)
        baseline = _bench_json(
            tmp_path / "base.json",
            {"test_a": 0.5},
            calibration_seconds=cal,
        )
        # 100x the baseline blows any calibration head-room.
        current = _bench_json(tmp_path / "cur.json", {"test_a": 50.0})
        assert main([str(current), "--baseline", str(baseline)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_benchmark_fails(self, tmp_path, capsys):
        cal = calibrate(rounds=2)
        baseline = _bench_json(
            tmp_path / "base.json",
            {"test_a": 0.5},
            calibration_seconds=cal,
        )
        current = _bench_json(tmp_path / "cur.json", {})
        assert main([str(current), "--baseline", str(baseline)]) == 1
        assert "missing" in capsys.readouterr().out

    def test_committed_baseline_is_armed(self):
        payload = json.loads(
            (REPO_ROOT / "benchmarks" / "BENCH_micro.json").read_text()
        )
        assert payload["calibration_seconds"] > 0
        assert load_medians(REPO_ROOT / "benchmarks" / "BENCH_micro.json")
