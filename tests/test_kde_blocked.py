"""Property tests: the blocked KDE hot path is bit-for-bit stable.

``KernelDensityEstimator._evaluate_block`` was rewritten as a
cache-blocked loop over row tiles with reusable scratch buffers and
``out=``-capable kernel profiles. These tests pin the *pre-blocking*
implementation — the straightforward allocating formulation it
replaced — as an in-test oracle and require byte identity across
random tile sizes, query dtypes, shapes and kernels. Any reassociation
of the arithmetic (a changed operation order, a fused multiply, a
different reduction) shows up here as a one-ulp diff.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density import KernelDensityEstimator, get_kernel
from repro.density import kde as kde_module

KERNEL_NAMES = (
    "epanechnikov",
    "gaussian",
    "uniform",
    "triangular",
    "biweight",
)


def _reference_profile(name: str, u: np.ndarray) -> np.ndarray:
    """The pre-``out=`` kernel profiles, verbatim."""
    if name == "epanechnikov":
        return np.where(np.abs(u) <= 1.0, 0.75 * (1.0 - u * u), 0.0)
    if name == "gaussian":
        norm = 1.0 / np.sqrt(2.0 * np.pi)
        return norm * np.exp(-0.5 * u * u)
    if name == "uniform":
        return np.where(np.abs(u) <= 1.0, 0.5, 0.0)
    if name == "triangular":
        out = 1.0 - np.abs(u)
        return np.where(out > 0.0, out, 0.0)
    if name == "biweight":
        w = 1.0 - u * u
        return np.where(np.abs(u) <= 1.0, (15.0 / 16.0) * w * w, 0.0)
    raise AssertionError(name)


def _reference_evaluate_block(estimator, block, name):
    """The pre-blocking ``_evaluate_block`` body, verbatim."""
    m = estimator.centers_.shape[0]
    weights = np.ones((block.shape[0], m))
    for j in range(estimator.n_dims_):
        h = estimator.bandwidths_[j]
        u = (block[:, j, None] - estimator.centers_[None, :, j]) / h
        weights *= _reference_profile(name, u) / h
    return (estimator.n_points_ / m) * weights.sum(axis=1)


def _make_estimator(kernel, m, d, seed):
    rng = np.random.default_rng(seed)
    estimator = KernelDensityEstimator(kernel=kernel)
    estimator.fit_from_centers(
        rng.normal(size=(m, d)),
        n_points=10_000,
        bandwidths=rng.uniform(0.05, 2.0, size=d),
    )
    return estimator


@settings(deadline=None, max_examples=120)
@given(
    rows=st.integers(1, 200),
    m=st.integers(1, 64),
    d=st.integers(1, 4),
    kernel=st.sampled_from(KERNEL_NAMES),
    tile_elements=st.integers(1, 4_096),
    dtype=st.sampled_from(("float64", "float32")),
    seed=st.integers(0, 2**31 - 1),
)
def test_blocked_evaluate_matches_pre_blocking_oracle(
    rows, m, d, kernel, tile_elements, seed, dtype
):
    estimator = _make_estimator(kernel, m, d, seed)
    rng = np.random.default_rng(seed + 1)
    block = rng.normal(scale=2.0, size=(rows, d)).astype(dtype)
    expected = _reference_evaluate_block(estimator, block, kernel)
    original = kde_module._EVAL_TILE_ELEMENTS
    kde_module._EVAL_TILE_ELEMENTS = tile_elements
    try:
        actual = estimator._evaluate_block(block)
    finally:
        kde_module._EVAL_TILE_ELEMENTS = original
    assert actual.tobytes() == expected.tobytes()


@settings(deadline=None, max_examples=80)
@given(
    kernel=st.sampled_from(KERNEL_NAMES),
    seed=st.integers(0, 2**31 - 1),
    scale=st.sampled_from((0.1, 1.0, 10.0)),
)
def test_profile_out_matches_allocating_path(kernel, seed, scale):
    u = np.random.default_rng(seed).normal(scale=scale, size=257)
    u[::41] = np.nan
    u[::43] = np.inf
    u[::47] = -np.inf
    u[0] = 1.0
    u[1] = -1.0
    resolved = get_kernel(kernel)
    expected = _reference_profile(kernel, u)
    scratch = np.full_like(u, -99.0)
    actual = resolved.profile(u, out=scratch)
    assert actual is scratch
    assert actual.tobytes() == expected.tobytes()
    assert resolved.profile(u).tobytes() == expected.tobytes()


@pytest.mark.parametrize("n_jobs", [1, 2, 4])
def test_chunked_parallel_evaluate_is_byte_stable(n_jobs):
    """The full evaluate (chunk fan-out over the blocked body) returns
    the same bytes for every worker count."""
    rng = np.random.default_rng(0)
    data = rng.normal(size=(30_000, 2))
    queries = rng.normal(size=(9_000, 2))
    baseline = (
        KernelDensityEstimator(n_kernels=400, random_state=0)
        .fit(data)
        .evaluate(queries)
    )
    estimator = KernelDensityEstimator(
        n_kernels=400, random_state=0, n_jobs=n_jobs
    ).fit(data)
    assert estimator.evaluate(queries).tobytes() == baseline.tobytes()
