"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig4"])
        assert args.experiment == "fig4"
        assert args.scale == 0.2
        assert args.seed == 0

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--scale", "0.5", "--seed", "7"]
        )
        assert args.scale == 0.5
        assert args.seed == 7

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "outliers" in out
        assert "Figure 2" in out

    def test_run_theorem1(self, capsys):
        assert main(["run", "theorem1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "motivating example" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err
