"""Stress tests: CURE's incremental state under adversarial schedules.

The nearest-neighbour arrays, heap, and representative pool interact
through merges, outlier elimination, and pool compaction; these tests
drive long mixed schedules and verify the invariants the fast path
relies on.
"""

import numpy as np
import pytest

from repro.clustering import CureClustering

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("remove_outliers", [True, False])
def test_random_workloads_terminate_consistently(seed, remove_outliers):
    """Random mixed-density data with duplicates and collinear runs."""
    rng = np.random.default_rng(seed)
    parts = [
        rng.normal(rng.random(2), 0.05, size=(rng.integers(20, 80), 2))
        for _ in range(5)
    ]
    parts.append(np.repeat(rng.random((3, 2)), 5, axis=0))  # duplicates
    line = np.column_stack(
        [np.linspace(0, 1, 30), np.full(30, 0.77)]
    )  # collinear chain
    parts.append(line)
    pts = np.vstack(parts)
    result = CureClustering(
        n_clusters=6, remove_outliers=remove_outliers
    ).fit(pts)
    assert result.n_clusters <= 6
    labelled = result.labels >= 0
    # Labels and sizes agree.
    for cluster in range(result.n_clusters):
        assert (result.labels == cluster).sum() == result.sizes[cluster]
    if not remove_outliers:
        assert labelled.all()
    # Every representative set is non-empty and finite.
    for reps in result.representatives:
        assert reps.shape[0] >= 1
        assert np.isfinite(reps).all()


def test_merge_to_single_cluster():
    """Run the hierarchy all the way down to one cluster."""
    rng = np.random.default_rng(9)
    pts = rng.random((150, 3))
    result = CureClustering(n_clusters=1, remove_outliers=False).fit(pts)
    assert result.n_clusters == 1
    assert result.sizes[0] == 150


def test_heap_state_consistent_mid_run():
    """After elimination, every heap key matches the dense arrays."""
    rng = np.random.default_rng(11)
    pts = np.vstack(
        [
            rng.normal((0, 0), 0.05, size=(60, 2)),
            rng.normal((1, 1), 0.05, size=(60, 2)),
            rng.uniform(-0.5, 1.5, size=(15, 2)),
        ]
    )
    model = CureClustering(n_clusters=2, remove_outliers=True)
    original = model._eliminate_outliers

    checked = {}

    def check_and_eliminate():
        original()
        # Invariant: heap keys mirror _closest_dist for every live id.
        for cid in model._clusters:
            checked[cid] = True
            assert cid in model._heap
            assert model._heap.key_of(cid) == pytest.approx(
                float(model._closest_dist[cid])
            )
            assert int(model._closest_id[cid]) in model._clusters

    model._eliminate_outliers = check_and_eliminate
    model.fit(pts)
    assert checked  # the elimination hook actually ran


def test_sweep_counter_monotone():
    rng = np.random.default_rng(13)
    small = CureClustering(n_clusters=5, remove_outliers=False)
    small.fit(rng.random((100, 2)))
    large = CureClustering(n_clusters=5, remove_outliers=False)
    large.fit(rng.random((400, 2)))
    assert large.n_distance_sweeps_ > small.n_distance_sweeps_
