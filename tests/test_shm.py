"""Shared-memory chunk shipping: lifecycle, fallback, crash safety.

The process backend parks large ndarray chunks in files under
``/dev/shm`` so workers map them instead of unpickling copies. The
contract under test: segments never outlive the fan-out — not on
success, not when a worker raises, not when a worker dies hard — and
when no shared-memory directory is usable the map silently falls back
to pickling with identical results.
"""

import glob
import os
import signal

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.parallel import (
    SharedArray,
    SharedChunks,
    parallel_map_chunks,
    resolve_chunk,
    shm_dir,
)
from repro.parallel.shm import SHM_DIR_ENV, _MIN_SHARED_BYTES

pytestmark = pytest.mark.skipif(
    shm_dir() is None, reason="no writable shared-memory directory"
)


def _leftover_segments():
    return glob.glob(os.path.join(shm_dir(), "repro-shm-*"))


def _large_chunk(seed=0):
    rows = _MIN_SHARED_BYTES // (2 * 8) + 16
    return np.random.default_rng(seed).normal(size=(rows, 2))


def _sum_chunk(chunk):
    return float(np.asarray(chunk).sum())


def _boom(chunk):
    raise RuntimeError("injected worker failure")


def _die(chunk):
    os.kill(os.getpid(), signal.SIGKILL)


class TestSharedArray:
    def test_roundtrip_bytes(self):
        chunk = _large_chunk()
        segment = SharedArray.create(chunk, shm_dir())
        try:
            view = segment.open()
            assert view.shape == chunk.shape
            assert view.dtype == chunk.dtype
            assert bytes(view.tobytes()) == chunk.tobytes()
        finally:
            segment.unlink()
        assert not os.path.exists(segment.path)

    def test_unlink_is_idempotent(self):
        segment = SharedArray.create(_large_chunk(), shm_dir())
        segment.unlink()
        segment.unlink()

    def test_resolve_chunk_passthrough(self):
        chunk = _large_chunk()
        assert resolve_chunk(chunk) is chunk
        assert resolve_chunk("not-an-array") == "not-an-array"


class TestSharedChunks:
    def test_parks_large_arrays_only(self):
        large = _large_chunk()
        small = np.zeros(4)
        with SharedChunks([large, small, "task"]) as shared:
            assert isinstance(shared.items[0], SharedArray)
            assert shared.items[1] is small
            assert shared.items[2] == "task"
            mapped = resolve_chunk(shared.items[0])
            assert mapped.tobytes() == large.tobytes()
        assert _leftover_segments() == []

    def test_disabled_passthrough(self):
        chunks = [_large_chunk()]
        with SharedChunks(chunks, enabled=False) as shared:
            assert shared.items[0] is chunks[0]
        assert _leftover_segments() == []

    def test_fallback_without_directory(self, monkeypatch):
        monkeypatch.setenv(SHM_DIR_ENV, "/nonexistent-shm-dir")
        chunks = [_large_chunk()]
        with SharedChunks(chunks) as shared:
            assert shared.items[0] is chunks[0]

    def test_exception_inside_block_releases_segments(self):
        with pytest.raises(RuntimeError, match="mid-map"):
            with SharedChunks([_large_chunk()]):
                assert len(_leftover_segments()) == 1
                raise RuntimeError("mid-map crash")
        assert _leftover_segments() == []


class TestProcessBackendIntegration:
    def test_results_match_serial(self):
        chunks = [_large_chunk(seed) for seed in range(4)]
        serial = parallel_map_chunks(_sum_chunk, chunks, n_jobs=1)
        shipped = parallel_map_chunks(
            _sum_chunk, chunks, n_jobs=2, backend="process"
        )
        assert shipped == serial
        assert _leftover_segments() == []

    def test_worker_exception_releases_segments(self):
        chunks = [_large_chunk(seed) for seed in range(3)]
        with pytest.raises(RuntimeError, match="injected"):
            parallel_map_chunks(
                _boom, chunks, n_jobs=2, backend="process"
            )
        assert _leftover_segments() == []

    def test_worker_death_releases_segments(self):
        chunks = [_large_chunk(seed) for seed in range(3)]
        with pytest.raises(BrokenProcessPool):
            parallel_map_chunks(
                _die, chunks, n_jobs=2, backend="process"
            )
        assert _leftover_segments() == []

    def test_pickling_fallback_matches(self, monkeypatch):
        chunks = [_large_chunk(seed) for seed in range(3)]
        expected = parallel_map_chunks(_sum_chunk, chunks, n_jobs=1)
        monkeypatch.setenv(SHM_DIR_ENV, "/nonexistent-shm-dir")
        actual = parallel_map_chunks(
            _sum_chunk, chunks, n_jobs=2, backend="process"
        )
        assert actual == expected


@pytest.mark.chaos
def test_no_segment_leak_across_chaos_iterations():
    """100 fan-outs with injected failures leave zero segments behind.

    Most iterations crash inside the sharing window (the coordinator
    path a dying worker exposes); every tenth runs a real process pool
    whose workers raise mid-task.
    """
    rng = np.random.default_rng(9)
    for iteration in range(100):
        chunks = [
            rng.normal(size=(_MIN_SHARED_BYTES // 8 + 8,))
            for _ in range(3)
        ]
        if iteration % 10 == 5:
            with pytest.raises(RuntimeError, match="injected"):
                parallel_map_chunks(
                    _boom, chunks, n_jobs=2, backend="process"
                )
        else:
            try:
                with SharedChunks(chunks) as shared:
                    if iteration % 3:
                        raise RuntimeError("chaos")
                    for item in shared.items:
                        resolve_chunk(item).sum()
            except RuntimeError:
                pass
        assert _leftover_segments() == [], f"leak at {iteration}"
