"""Tests for inverse-probability weighting helpers."""

import numpy as np
import pytest

from repro.core import (
    DensityBiasedSampler,
    effective_sample_size,
    inverse_probability_weights,
)
from repro.exceptions import ParameterError


class TestInverseProbabilityWeights:
    def test_basic(self):
        np.testing.assert_allclose(
            inverse_probability_weights([0.5, 0.1]), [2.0, 10.0]
        )

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            inverse_probability_weights([0.5, 0.0])

    def test_rejects_above_one(self):
        with pytest.raises(ParameterError):
            inverse_probability_weights([1.5])

    def test_empty_raises_located_error(self):
        with pytest.raises(ParameterError, match="inverse_probability_weights"):
            inverse_probability_weights([])


class TestEffectiveSampleSize:
    def test_uniform_weights_give_n(self):
        assert effective_sample_size(np.ones(50)) == pytest.approx(50)

    def test_scale_invariant(self):
        w = np.array([1.0, 2.0, 3.0])
        assert effective_sample_size(w) == pytest.approx(
            effective_sample_size(10 * w)
        )

    def test_skew_shrinks_ess(self):
        assert effective_sample_size([1.0, 1.0, 100.0]) < 3.0

    def test_empty_raises_located_error(self):
        with pytest.raises(ParameterError, match="effective_sample_size"):
            effective_sample_size([])

    def test_all_zero_weights_raise_located_error(self):
        with pytest.raises(ParameterError, match="effective_sample_size"):
            effective_sample_size([0.0, 0.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            effective_sample_size([-1.0])

    def test_no_warning_on_degenerate_inputs(self):
        """Degenerate inputs raise cleanly instead of warning nan/inf."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for bad in ([], [0.0, 0.0]):
                with pytest.raises(ParameterError):
                    effective_sample_size(bad)
            with pytest.raises(ParameterError):
                inverse_probability_weights([])


class TestHorvitzThompsonUnbiasedness:
    def test_weighted_mean_recovers_population_mean(self):
        """Weighted statistics on a biased sample estimate the full-data
        statistics (the section 3.1 correction)."""
        rng = np.random.default_rng(0)
        dense = rng.normal((0.0, 0.0), 0.05, size=(5000, 2))
        sparse = rng.normal((4.0, 4.0), 0.8, size=(5000, 2))
        data = np.vstack([dense, sparse])
        true_mean = data.mean(axis=0)
        estimates = []
        for seed in range(15):
            sample = DensityBiasedSampler(
                sample_size=800, exponent=1.0, random_state=seed
            ).sample(data)
            w = sample.weights
            estimates.append((w[:, None] * sample.points).sum(0) / w.sum())
        avg_estimate = np.mean(estimates, axis=0)
        raw_means = np.array(
            [
                DensityBiasedSampler(
                    sample_size=800, exponent=1.0, random_state=seed
                )
                .sample(data)
                .points.mean(axis=0)
                for seed in range(3)
            ]
        ).mean(axis=0)
        # Weighted estimate is close to the truth...
        assert np.linalg.norm(avg_estimate - true_mean) < 0.25
        # ...while the unweighted biased-sample mean is visibly pulled
        # toward the dense blob at the origin.
        assert np.linalg.norm(raw_means - true_mean) > 0.5
