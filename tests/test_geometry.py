"""Tests for repro.utils.geometry."""

import math

import numpy as np
import pytest

from repro.utils.geometry import (
    ball_volume,
    pairwise_sq_distances,
    sq_distances_to,
)


class TestBallVolume:
    def test_known_values(self):
        assert ball_volume(1.0, 1) == pytest.approx(2.0)
        assert ball_volume(1.0, 2) == pytest.approx(math.pi)
        assert ball_volume(1.0, 3) == pytest.approx(4.0 / 3.0 * math.pi)

    def test_radius_scaling(self):
        assert ball_volume(2.0, 3) == pytest.approx(8 * ball_volume(1.0, 3))

    def test_zero_radius(self):
        assert ball_volume(0.0, 4) == 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ball_volume(1.0, 0)
        with pytest.raises(ValueError):
            ball_volume(-1.0, 2)


class TestPairwiseDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(20, 3))
        fast = pairwise_sq_distances(pts)
        naive = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_diagonal_near_zero(self):
        pts = np.random.default_rng(1).normal(size=(10, 2))
        diag = np.diag(pairwise_sq_distances(pts))
        assert (diag >= 0).all()
        assert (diag < 1e-10).all()

    def test_never_negative(self):
        pts = np.full((5, 2), 3.14159)
        assert (pairwise_sq_distances(pts) >= 0).all()


class TestSqDistancesTo:
    def test_matches_naive(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(7, 4))
        b = rng.normal(size=(5, 4))
        fast = sq_distances_to(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_shape(self):
        a, b = np.zeros((3, 2)), np.zeros((4, 2))
        assert sq_distances_to(a, b).shape == (3, 4)
