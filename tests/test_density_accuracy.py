"""Accuracy tests: estimators against closed-form densities.

The mechanics tests check interfaces; these check that each back-end
actually estimates known densities — uniform (constant), Gaussian
(known peak/tail ratios), and a two-level piecewise-constant mix — with
errors appropriate to its summary size. These are the properties the
biased sampler's probabilities inherit.
"""

import numpy as np
import pytest

from repro.density import (
    DctDensityEstimator,
    GridDensityEstimator,
    KernelDensityEstimator,
    KnnDensityEstimator,
    TreeDensityEstimator,
    WaveletDensityEstimator,
)

N = 40_000

BACKENDS = [
    pytest.param(
        lambda: KernelDensityEstimator(n_kernels=1000, random_state=0),
        0.35,
        id="kde",
    ),
    pytest.param(lambda: GridDensityEstimator(bins_per_dim=16), 0.25,
                 id="grid"),
    pytest.param(
        lambda: KnnDensityEstimator(n_sample=2000, k=25, random_state=0),
        0.45,
        id="knn",
    ),
    pytest.param(
        lambda: WaveletDensityEstimator(bins_per_dim=16, n_coefficients=256),
        0.25,
        id="wavelet",
    ),
    pytest.param(
        lambda: DctDensityEstimator(bins_per_dim=16, n_coefficients=256),
        0.25,
        id="dct",
    ),
    pytest.param(
        lambda: TreeDensityEstimator(random_state=0),
        0.25,
        id="tree",
    ),
]


@pytest.mark.parametrize("factory,tolerance", BACKENDS)
class TestUniformDensity:
    def test_interior_level(self, factory, tolerance):
        """Uniform on [0,1]^2 with n points: f ~ n everywhere inside."""
        rng = np.random.default_rng(0)
        data = rng.random((N, 2))
        estimator = factory().fit(data)
        queries = rng.uniform(0.2, 0.8, size=(300, 2))
        values = estimator.evaluate(queries)
        assert np.median(values) == pytest.approx(N, rel=tolerance)


@pytest.mark.parametrize("factory,tolerance", BACKENDS)
class TestPiecewiseMix:
    def test_level_ratio(self, factory, tolerance):
        """Left half holds 4x the mass of the right: the estimated
        density ratio between halves must be ~4."""
        rng = np.random.default_rng(1)
        left = rng.uniform((0.0, 0.0), (0.5, 1.0), size=(4 * N // 5, 2))
        right = rng.uniform((0.5, 0.0), (1.0, 1.0), size=(N // 5, 2))
        estimator = factory().fit(np.vstack([left, right]))
        q_left = rng.uniform((0.1, 0.2), (0.4, 0.8), size=(200, 2))
        q_right = rng.uniform((0.6, 0.2), (0.9, 0.8), size=(200, 2))
        ratio = np.median(estimator.evaluate(q_left)) / np.median(
            estimator.evaluate(q_right)
        )
        assert ratio == pytest.approx(4.0, rel=2 * tolerance)


class TestGaussianShape:
    """Peak-to-tail structure of a Gaussian (KDE only: the grid-based
    summaries at 16 bins cannot resolve the tails precisely)."""

    def test_kde_matches_analytic_profile(self):
        rng = np.random.default_rng(2)
        sigma = 0.1
        data = rng.normal(0.5, sigma, size=(N, 2))
        kde = KernelDensityEstimator(n_kernels=2000, random_state=0).fit(
            data
        )
        center = kde.evaluate([[0.5, 0.5]])[0]
        at_sigma = kde.evaluate([[0.5 + sigma, 0.5]])[0]
        at_two_sigma = kde.evaluate([[0.5 + 2 * sigma, 0.5]])[0]
        # Analytic ratios: exp(-0.5) = 0.607, exp(-2) = 0.135.
        assert at_sigma / center == pytest.approx(0.607, abs=0.12)
        assert at_two_sigma / center == pytest.approx(0.135, abs=0.09)
        # Absolute peak: n / (2 pi sigma^2).
        analytic_peak = N / (2 * np.pi * sigma**2)
        assert center == pytest.approx(analytic_peak, rel=0.3)
