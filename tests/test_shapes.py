"""Tests for the cluster shape primitives."""

import numpy as np
import pytest

from repro.datasets import Ball, Ellipsoid, HyperRectangle
from repro.exceptions import ParameterError


class TestHyperRectangle:
    def test_contains(self):
        box = HyperRectangle([0.0, 0.0], [1.0, 2.0])
        inside = box.contains(np.array([[0.5, 1.0], [0.0, 0.0], [1.0, 2.0]]))
        assert inside.all()
        outside = box.contains(np.array([[1.5, 1.0], [0.5, -0.1]]))
        assert not outside.any()

    def test_sample_inside(self):
        box = HyperRectangle([1.0, 2.0], [2.0, 4.0])
        pts = box.sample(500, random_state=0)
        assert box.contains(pts).all()

    def test_sample_fills_box(self):
        box = HyperRectangle([0.0], [1.0])
        pts = box.sample(2000, random_state=0)
        assert pts.min() < 0.05 and pts.max() > 0.95

    def test_center_and_volume(self):
        box = HyperRectangle([0.0, 0.0], [2.0, 4.0])
        np.testing.assert_array_equal(box.center, [1.0, 2.0])
        assert box.volume == 8.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ParameterError):
            HyperRectangle([1.0], [0.5])


class TestEllipsoid:
    def test_contains(self):
        ell = Ellipsoid([0.0, 0.0], [2.0, 1.0])
        assert ell.contains(np.array([[1.9, 0.0]]))[0]
        assert not ell.contains(np.array([[0.0, 1.1]]))[0]

    def test_sample_inside(self):
        ell = Ellipsoid([1.0, 1.0], [0.5, 0.25])
        pts = ell.sample(500, random_state=0)
        assert ell.contains(pts).all()

    def test_volume(self):
        ell = Ellipsoid([0.0, 0.0], [2.0, 1.0])
        assert ell.volume == pytest.approx(2.0 * np.pi)

    def test_sample_is_roughly_uniform(self):
        """Mean radius^d of uniform ball samples is d/(d+2)... check the
        first moment instead: E[r^2] for a uniform disk = 1/2."""
        ball = Ball([0.0, 0.0], 1.0)
        pts = ball.sample(20_000, random_state=0)
        r_sq = (pts**2).sum(axis=1)
        assert r_sq.mean() == pytest.approx(0.5, abs=0.02)

    def test_rejects_bad_radii(self):
        with pytest.raises(ParameterError):
            Ellipsoid([0.0], [0.0])


class TestBall:
    def test_is_round(self):
        ball = Ball([0.0, 0.0], 2.0)
        assert ball.contains(np.array([[1.99, 0.0], [0.0, 1.99]])).all()
        assert not ball.contains(np.array([[1.5, 1.5]]))[0]

    def test_volume_matches_formula(self):
        ball = Ball([0.0, 0.0, 0.0], 1.0)
        assert ball.volume == pytest.approx(4.0 / 3.0 * np.pi)

    def test_rejects_bad_radius(self):
        with pytest.raises(ParameterError):
            Ball([0.0], 0.0)
