"""Tests for full-dataset label assignment from a clustered sample."""

import numpy as np
import pytest

from repro.clustering import CureClustering, assign_to_clusters
from repro.clustering.base import ClusteringResult
from repro.exceptions import ParameterError
from repro.utils.streams import DataStream


@pytest.fixture
def blobs_and_sample():
    rng = np.random.default_rng(0)
    data = np.vstack(
        [rng.normal(c, 0.08, size=(500, 2)) for c in ((0, 0), (3, 3))]
    )
    sample_idx = rng.choice(1000, size=150, replace=False)
    return data, data[sample_idx]


class TestAssignment:
    def test_full_dataset_labelled(self, blobs_and_sample):
        data, sample = blobs_and_sample
        result = CureClustering(n_clusters=2).fit(sample)
        labels = assign_to_clusters(data, result)
        assert labels.shape == (1000,)
        # Blob membership must be nearly pure.
        first = np.bincount(labels[:500]).argmax()
        second = np.bincount(labels[500:]).argmax()
        assert first != second
        assert (labels[:500] == first).mean() > 0.95
        assert (labels[500:] == second).mean() > 0.95

    def test_policies_agree_on_spherical_blobs(self, blobs_and_sample):
        data, sample = blobs_and_sample
        result = CureClustering(n_clusters=2).fit(sample)
        by_reps = assign_to_clusters(data, result, policy="representatives")
        by_centers = assign_to_clusters(data, result, policy="centers")
        assert (by_reps == by_centers).mean() > 0.98

    def test_representatives_follow_shape(self):
        """For elongated clusters nearest-representative beats
        nearest-center at the cluster tips."""
        rng = np.random.default_rng(1)
        stripe = np.column_stack(
            [rng.uniform(0, 10, 400), rng.normal(0, 0.05, 400)]
        )
        blob = rng.normal((5.0, 2.0), 0.1, size=(400, 2))
        data = np.vstack([stripe, blob])
        result = CureClustering(n_clusters=2, remove_outliers=False).fit(data)
        labels = assign_to_clusters(data, result, policy="representatives")
        tip = data[np.argmax(data[:, 0])]  # far right stripe tip
        tip_label = labels[np.argmax(data[:, 0])]
        stripe_label = np.bincount(labels[:400]).argmax()
        assert tip[1] < 0.5  # sanity: the tip is on the stripe
        assert tip_label == stripe_label

    def test_one_pass(self, blobs_and_sample):
        data, sample = blobs_and_sample
        result = CureClustering(n_clusters=2).fit(sample)
        stream = DataStream(data)
        assign_to_clusters(None, result, stream=stream)
        assert stream.passes == 1

    def test_rejects_unknown_policy(self, blobs_and_sample):
        data, sample = blobs_and_sample
        result = CureClustering(n_clusters=2).fit(sample)
        with pytest.raises(ParameterError, match="policy"):
            assign_to_clusters(data, result, policy="nearest")

    def test_rejects_empty_result(self, blobs_and_sample):
        data, _ = blobs_and_sample
        empty = ClusteringResult(
            labels=np.empty(0, dtype=np.int64), centers=np.empty((0, 2))
        )
        with pytest.raises(ParameterError, match="no clusters"):
            assign_to_clusters(data, empty)
