"""Chaos suite: fault injection, hardening policies, and retry behaviour.

Every test here drives the *real* code path — the same RowQuarantine /
RetryPolicy layer production streams apply — under seeded, replayable
faults from a FaultPlan. The suite asserts the three contracts the
hardening layer advertises:

* typed failures: strict mode raises DataValidationError naming the
  offending pass and chunk offset; exhausted retries raise
  StreamReadError;
* exact accounting: ``rows_quarantined`` equals the injected
  invalid-row count, per the run manifest;
* determinism: byte-identical results for a fixed seed across repeated
  runs and across ``n_jobs`` in {1, 2}.
"""

import numpy as np
import pytest

from repro import ApproximateClusteringPipeline
from repro.clustering import CureClustering
from repro.core import DensityBiasedSampler
from repro.datasets import cure_dataset1
from repro.evaluation import count_found_clusters
from repro.exceptions import (
    DataValidationError,
    ParameterError,
    StreamReadError,
    TransientIOError,
)
from repro.faults import (
    FaultPlan,
    FaultyStream,
    RetryPolicy,
    RowQuarantine,
    get_fault_policy,
    resolve_fault_policy,
    use_fault_policy,
)
from repro.obs import Recorder, RunManifest, use_recorder
from repro.utils.streams import DataStream

pytestmark = pytest.mark.chaos


@pytest.fixture
def clean_data():
    rng = np.random.default_rng(42)
    return rng.normal(size=(2000, 3))


class TestFaultPlan:
    def test_chunk_faults_deterministic(self):
        plan = FaultPlan(
            seed=7,
            nan_row_rate=0.05,
            inf_row_rate=0.05,
            corrupt_cell_rate=0.01,
            short_read_rate=0.3,
        )
        a = plan.chunk_faults(3, 500, 4)
        b = plan.chunk_faults(3, 500, 4)
        np.testing.assert_array_equal(a.nan_rows, b.nan_rows)
        np.testing.assert_array_equal(a.inf_rows, b.inf_rows)
        np.testing.assert_array_equal(a.corrupt_rows, b.corrupt_rows)
        np.testing.assert_array_equal(a.corrupt_values, b.corrupt_values)
        assert a.n_truncated == b.n_truncated

    def test_chunks_get_independent_decisions(self):
        plan = FaultPlan(seed=0, nan_row_rate=0.1)
        rows = [tuple(plan.chunk_faults(i, 400, 2).nan_rows) for i in range(8)]
        assert len(set(rows)) > 1

    def test_nan_and_inf_rows_disjoint(self):
        plan = FaultPlan(seed=1, nan_row_rate=0.4, inf_row_rate=0.4)
        for chunk_index in range(5):
            faults = plan.chunk_faults(chunk_index, 300, 2)
            assert np.intersect1d(faults.nan_rows, faults.inf_rows).size == 0

    def test_value_faults_only_hit_delivered_rows(self):
        plan = FaultPlan(
            seed=2,
            nan_row_rate=0.2,
            inf_row_rate=0.2,
            corrupt_cell_rate=0.05,
            short_read_rate=1.0,
            short_read_fraction=0.5,
        )
        faults = plan.chunk_faults(0, 200, 3)
        delivered = 200 - faults.n_truncated
        assert faults.n_truncated == 100
        for rows in (faults.nan_rows, faults.inf_rows, faults.corrupt_rows):
            assert rows.size == 0 or rows.max() < delivered

    def test_io_failures_keyed_by_pass_and_chunk(self):
        plan = FaultPlan(seed=3, io_error_rate=1.0, io_failures=2)
        assert plan.io_failures_for(1, 0) == 2
        assert plan.io_failures_for(1, 0) == 2
        clean = FaultPlan(seed=3, io_error_rate=0.0)
        assert clean.io_failures_for(1, 0) == 0
        # Mid-rate plans must not fail identically on every (pass, chunk).
        flaky = FaultPlan(seed=4, io_error_rate=0.5)
        outcomes = {
            flaky.io_failures_for(p, c) for p in (1, 2, 3) for c in range(6)
        }
        assert outcomes == {0, 1}

    def test_rates_validated(self):
        with pytest.raises(ParameterError):
            FaultPlan(nan_row_rate=1.5)
        with pytest.raises(ParameterError):
            FaultPlan(io_failures=0)

    def test_corrupt_detectable_by(self):
        plan = FaultPlan(corrupt_cell_rate=0.01, corrupt_magnitude=1e30)
        assert not plan.corrupt_detectable_by(RowQuarantine("quarantine"))
        assert plan.corrupt_detectable_by(
            RowQuarantine("quarantine", max_abs=1e6)
        )


class TestRetryPolicy:
    def test_deterministic_backoff_schedule(self):
        policy = RetryPolicy(max_retries=3, base_delay=0.5, multiplier=2.0)
        assert policy.delays() == [0.5, 1.0, 2.0]

    def test_recovers_within_budget_and_counts(self):
        policy = RetryPolicy(max_retries=3)
        calls = []

        def attempt(index):
            calls.append(index)
            if index < 2:
                raise TransientIOError("flaky")
            return "ok"

        recorder = Recorder()
        with use_recorder(recorder):
            assert policy.call(attempt) == "ok"
        assert calls == [0, 1, 2]
        assert recorder.counters["retries"] == 2

    def test_exhaustion_raises_stream_read_error(self):
        policy = RetryPolicy(max_retries=2)

        def attempt(index):
            raise TransientIOError("always down")

        with pytest.raises(StreamReadError) as excinfo:
            policy.call(attempt, describe="chunk 9 read")
        assert "chunk 9 read" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, TransientIOError)

    def test_stream_read_error_is_not_retryable(self):
        # The give-up signal must never match retry_on=(OSError,), or a
        # nested retry loop would swallow its own failure.
        assert not issubclass(StreamReadError, OSError)
        assert issubclass(TransientIOError, IOError)

    def test_non_retryable_errors_propagate(self):
        policy = RetryPolicy(max_retries=5)

        def attempt(index):
            raise ValueError("not an IO problem")

        with pytest.raises(ValueError):
            policy.call(attempt)

    def test_sleep_called_with_planned_delays(self):
        slept = []
        policy = RetryPolicy(
            max_retries=3, base_delay=1.0, multiplier=3.0, sleep=slept.append
        )

        def attempt(index):
            if index < 2:
                raise TransientIOError("flaky")
            return index

        assert policy.call(attempt) == 2
        assert slept == [1.0, 3.0]


class TestRowQuarantine:
    def _chunk(self):
        chunk = np.arange(20.0).reshape(5, 4)
        chunk[1] = np.nan
        chunk[3, 2] = np.inf
        return chunk

    def test_strict_names_pass_and_chunk_offset(self):
        with pytest.raises(DataValidationError) as excinfo:
            RowQuarantine("strict").apply(
                self._chunk(), origin="data", pass_index=2, start=128
            )
        message = str(excinfo.value)
        assert "pass 2" in message
        assert "chunk offset 128" in message
        assert "quarantine" in message  # points at the recovery knob

    def test_quarantine_drops_and_counts(self):
        recorder = Recorder()
        with use_recorder(recorder):
            clean = RowQuarantine("quarantine").apply(self._chunk())
        assert clean.shape == (3, 4)
        assert np.isfinite(clean).all()
        assert recorder.counters["rows_quarantined"] == 2

    def test_repair_imputes_chunk_column_means(self):
        chunk = np.array([[1.0, 10.0], [np.nan, 40.0], [3.0, np.inf]])
        recorder = Recorder()
        with use_recorder(recorder):
            repaired = RowQuarantine("repair").apply(chunk)
        assert repaired.shape == chunk.shape
        # Column means over the *valid* cells: (1+3)/2 and (10+40)/2.
        assert repaired[1, 0] == pytest.approx(2.0)
        assert repaired[2, 1] == pytest.approx(25.0)
        assert recorder.counters["rows_repaired"] == 2
        assert recorder.counters["cells_repaired"] == 2

    def test_max_abs_flags_finite_garbage(self):
        chunk = np.array([[1.0, 2.0], [1e12, 3.0], [4.0, 5.0]])
        policy = RowQuarantine("quarantine", max_abs=1e9)
        assert policy.count_invalid_rows(chunk) == 1
        clean = policy.apply(chunk)
        assert clean.shape == (2, 2)
        assert RowQuarantine("quarantine").count_invalid_rows(chunk) == 0

    def test_ambient_policy_context(self):
        assert get_fault_policy().mode == "strict"
        with use_fault_policy("repair"):
            assert get_fault_policy().mode == "repair"
            assert resolve_fault_policy(None).mode == "repair"
        assert get_fault_policy().mode == "strict"

    def test_resolve_rejects_unknown_mode(self):
        with pytest.raises(ParameterError):
            resolve_fault_policy("lenient")


class TestFaultyStream:
    def test_n_points_matches_delivery_every_pass(self, clean_data):
        stream = FaultyStream(
            DataStream(clean_data, chunk_size=256),
            FaultPlan(seed=11, nan_row_rate=0.02, short_read_rate=0.2),
            fault_policy="quarantine",
        )
        for _ in range(3):
            total = sum(chunk.shape[0] for chunk in stream)
            assert total == stream.n_points == len(stream)
        assert stream.n_points < clean_data.shape[0]

    def test_materialize_byte_identical(self, clean_data):
        def build():
            return FaultyStream(
                DataStream(clean_data, chunk_size=256),
                FaultPlan(seed=5, nan_row_rate=0.01, io_error_rate=0.3),
                fault_policy="quarantine",
            )

        first = build().materialize()
        second = build().materialize()
        assert first.tobytes() == second.tobytes()
        assert np.isfinite(first).all()

    def test_quarantined_matches_injected_exactly(self, clean_data):
        recorder = Recorder()
        stream = FaultyStream(
            DataStream(clean_data, chunk_size=256),
            FaultPlan(seed=9, nan_row_rate=0.03, inf_row_rate=0.01),
            fault_policy="quarantine",
        )
        with use_recorder(recorder):
            stream.materialize()
        assert recorder.counters["rows_quarantined"] > 0
        assert (
            recorder.counters["rows_quarantined"]
            == recorder.counters["fault_rows_injected"]
        )

    def test_transient_errors_recovered_within_budget(self, clean_data):
        recorder = Recorder()
        stream = FaultyStream(
            DataStream(clean_data, chunk_size=512),
            FaultPlan(seed=1, io_error_rate=1.0, io_failures=2),
            fault_policy="strict",
            retry_policy=RetryPolicy(max_retries=3),
        )
        with use_recorder(recorder):
            out = stream.materialize()
        np.testing.assert_array_equal(out, clean_data)
        assert recorder.counters["retries"] == recorder.counters[
            "io_errors_injected"
        ]
        assert recorder.counters["io_errors_injected"] == 2 * 4  # 4 chunks

    def test_exhausted_retries_raise_stream_read_error(self, clean_data):
        stream = FaultyStream(
            DataStream(clean_data, chunk_size=512),
            FaultPlan(seed=1, io_error_rate=1.0, io_failures=5),
            fault_policy="strict",
            retry_policy=RetryPolicy(max_retries=2),
        )
        with pytest.raises(StreamReadError):
            stream.materialize()

    def test_strict_raises_typed_error_with_location(self, clean_data):
        stream = FaultyStream(
            DataStream(clean_data, chunk_size=256),
            FaultPlan(seed=2, nan_row_rate=0.05),
            fault_policy="strict",
        )
        with pytest.raises(DataValidationError) as excinfo:
            list(stream)
        message = str(excinfo.value)
        assert "pass 1" in message
        assert "chunk offset" in message

    def test_repair_keeps_every_delivered_row(self, clean_data):
        stream = FaultyStream(
            DataStream(clean_data, chunk_size=256),
            FaultPlan(seed=3, nan_row_rate=0.05),
            fault_policy="repair",
        )
        out = stream.materialize()
        assert out.shape == clean_data.shape
        assert np.isfinite(out).all()

    def test_undetectable_corruption_passes_through(self, clean_data):
        # Finite garbage with no max_abs bound: nothing to quarantine,
        # every row survives — and the accounting knows it.
        stream = FaultyStream(
            DataStream(clean_data, chunk_size=256),
            FaultPlan(seed=4, corrupt_cell_rate=0.005),
            fault_policy="quarantine",
        )
        assert stream.n_points == clean_data.shape[0]
        out = stream.materialize()
        assert (np.abs(out) > 1e20).any()

    def test_max_abs_catches_corrupt_cells(self, clean_data):
        stream = FaultyStream(
            DataStream(clean_data, chunk_size=256),
            FaultPlan(seed=4, corrupt_cell_rate=0.005),
            fault_policy=RowQuarantine("quarantine", max_abs=1e6),
        )
        assert stream.n_points < clean_data.shape[0]
        out = stream.materialize()
        assert out.shape[0] == stream.n_points
        assert (np.abs(out) <= 1e6).all()

    def test_plan_leaving_no_survivors_rejected(self):
        data = np.ones((10, 2))
        with pytest.raises(DataValidationError):
            FaultyStream(
                DataStream(data),
                FaultPlan(seed=0, nan_row_rate=1.0),
                fault_policy="quarantine",
            )


FAULT_KINDS = {
    "nan_rows": FaultPlan(seed=21, nan_row_rate=0.02),
    "inf_rows": FaultPlan(seed=22, inf_row_rate=0.02),
    "corrupt_cells": FaultPlan(seed=23, corrupt_cell_rate=0.002),
    "short_reads": FaultPlan(seed=24, short_read_rate=0.3),
    "io_errors": FaultPlan(seed=25, io_error_rate=0.5, io_failures=1),
    "everything": FaultPlan(
        seed=26,
        nan_row_rate=0.01,
        inf_row_rate=0.01,
        corrupt_cell_rate=0.001,
        short_read_rate=0.2,
        io_error_rate=0.3,
    ),
}

#: Fault kinds that put invalid *values* in delivered rows (strict mode
#: must reject the run; short reads and IO errors deliver clean values).
VALUE_FAULTS = {"nan_rows", "inf_rows", "everything"}


class TestPipelineChaosMatrix:
    @pytest.fixture(scope="class")
    def dataset(self):
        return cure_dataset1(n_points=1500, random_state=0)

    def _run(self, dataset, plan, policy):
        stream = FaultyStream(
            DataStream(dataset.points, chunk_size=256),
            plan,
            fault_policy=policy,
        )
        pipeline = ApproximateClusteringPipeline(
            n_clusters=5,
            sampler=DensityBiasedSampler(
                sample_size=300, exponent=0.5, random_state=0
            ),
            random_state=0,
        )
        return pipeline.fit(None, stream=stream), stream

    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    @pytest.mark.parametrize("mode", ["strict", "quarantine", "repair"])
    def test_completes_or_raises_documented_error(self, dataset, kind, mode):
        plan = FAULT_KINDS[kind]
        if mode == "strict" and kind in VALUE_FAULTS:
            with pytest.raises(DataValidationError):
                self._run(dataset, plan, mode)
            return
        result, stream = self._run(dataset, plan, mode)
        assert result.labels.shape[0] == stream.n_points
        assert np.isfinite(result.clustering.centers).all()


class TestFig3Acceptance:
    """The issue's acceptance scenario on the fig3 (CURE dataset1) data."""

    SEED = 0
    PLAN = FaultPlan(seed=0, nan_row_rate=0.01)  # seeded 1% row corruption

    @pytest.fixture(scope="class")
    def dataset(self):
        return cure_dataset1(n_points=4000, random_state=self.SEED)

    def _run(self, dataset, n_jobs=None):
        recorder = Recorder()
        with use_recorder(recorder):
            stream = FaultyStream(
                DataStream(dataset.points, chunk_size=512),
                self.PLAN,
                fault_policy="quarantine",
            )
            pipeline = ApproximateClusteringPipeline(
                n_clusters=5,
                sampler=DensityBiasedSampler(
                    sample_size=600, exponent=0.5, random_state=self.SEED
                ),
                clusterer=CureClustering(n_clusters=5),
                random_state=self.SEED,
                n_jobs=n_jobs,
            )
            result = pipeline.fit(None, stream=stream)
        manifest = RunManifest.from_recorder(
            recorder, name="fig3-chaos", seed=self.SEED
        )
        return result, manifest

    def test_quarantine_run_completes_with_exact_accounting(self, dataset):
        result, manifest = self._run(dataset)
        assert manifest.counters["rows_quarantined"] > 0
        assert (
            manifest.counters["rows_quarantined"]
            == manifest.counters["fault_rows_injected"]
        )
        assert result.labels.shape[0] < dataset.points.shape[0]

    def test_cluster_recovery_survives_quarantine(self, dataset):
        result, _ = self._run(dataset)
        found = count_found_clusters(result.clustering, dataset.clusters)
        assert found >= 4

    def test_byte_identical_across_runs_and_n_jobs(self, dataset):
        baseline, manifest1 = self._run(dataset)
        repeat, manifest2 = self._run(dataset)
        parallel, manifest3 = self._run(dataset, n_jobs=2)
        assert baseline.labels.tobytes() == repeat.labels.tobytes()
        assert baseline.labels.tobytes() == parallel.labels.tobytes()
        assert (
            baseline.clustering.centers.tobytes()
            == parallel.clustering.centers.tobytes()
        )
        for key in ("rows_quarantined", "fault_rows_injected", "data_passes"):
            assert manifest1.counters[key] == manifest2.counters[key]
            assert manifest1.counters[key] == manifest3.counters[key]

    def test_strict_variant_raises_naming_pass_and_offset(self, dataset):
        stream = FaultyStream(
            DataStream(dataset.points, chunk_size=512),
            self.PLAN,
            fault_policy="strict",
        )
        pipeline = ApproximateClusteringPipeline(
            n_clusters=5, random_state=self.SEED
        )
        with pytest.raises(DataValidationError) as excinfo:
            pipeline.fit(None, stream=stream)
        message = str(excinfo.value)
        assert "pass" in message
        assert "chunk offset" in message


class TestPipelineFaultPolicyArgument:
    def test_pipeline_applies_policy_to_plain_arrays(self):
        rng = np.random.default_rng(0)
        data = np.vstack(
            [rng.normal(c, 0.05, (600, 2)) for c in ((0, 0), (1, 1))]
        )
        data[::100] = np.nan  # 12 poisoned rows
        with pytest.raises(DataValidationError):
            ApproximateClusteringPipeline(n_clusters=2, random_state=0).fit(
                data
            )
        result = ApproximateClusteringPipeline(
            n_clusters=2, random_state=0, fault_policy="quarantine"
        ).fit(data)
        assert result.labels.shape[0] == data.shape[0] - 12

    def test_run_experiment_exposes_fault_policy(self):
        import io

        from repro.experiments import run_experiment

        result = run_experiment(
            "fig3",
            scale=0.02,
            seed=0,
            verbose=False,
            out=io.StringIO(),
            fault_policy="quarantine",
        )
        assert result.manifest is not None
        assert result.manifest.params["fault_policy"] == "quarantine"

    def test_cli_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "fig3", "--fault-policy", "repair"]
        )
        assert args.fault_policy == "repair"
