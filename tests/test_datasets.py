"""Tests for the dataset generators."""

import os
import tempfile

import numpy as np
import pytest

from repro.datasets import (
    california_dataset,
    cure_dataset1,
    ds1_dataset,
    ds2_dataset,
    forest_cover_dataset,
    load_dataset,
    make_clustered_dataset,
    make_fig4_dataset,
    make_fig5_dataset,
    make_outlier_dataset,
    northeast_dataset,
    save_dataset,
)
from repro.datasets.synthetic import NOISE_LABEL, add_noise
from repro.exceptions import DataValidationError, ParameterError
from repro.outliers import IndexedOutlierDetector


class TestClusteredGenerator:
    def test_point_and_label_counts(self):
        data = make_clustered_dataset(
            n_points=2000, n_clusters=5, noise_fraction=0.25, random_state=0
        )
        assert data.n_points == 2500
        assert (data.labels == NOISE_LABEL).sum() == 500
        assert data.n_clusters == 5

    def test_labels_match_shapes(self):
        data = make_clustered_dataset(
            n_points=3000, n_clusters=4, random_state=1
        )
        for label, shape in enumerate(data.clusters):
            members = data.points[data.labels == label]
            assert shape.contains(members).all()

    def test_cluster_sizes_sum(self):
        data = make_clustered_dataset(
            n_points=1000, n_clusters=3, noise_fraction=0.1, random_state=2
        )
        assert data.cluster_sizes().sum() == 1000

    def test_density_ratio_realised(self):
        data = make_clustered_dataset(
            n_points=50_000, n_clusters=6, density_ratio=10.0, random_state=3
        )
        densities = [
            (data.labels == i).sum() / shape.volume
            for i, shape in enumerate(data.clusters)
        ]
        assert max(densities) / min(densities) > 4.0

    def test_size_ratio_realised(self):
        data = make_clustered_dataset(
            n_points=50_000, n_clusters=6, size_ratio=10.0, random_state=4
        )
        sizes = data.cluster_sizes()
        assert sizes.max() / sizes.min() > 4.0

    def test_dimensionality(self):
        for d in (2, 3, 5):
            data = make_clustered_dataset(
                n_points=500, n_clusters=3, n_dims=d, random_state=0
            )
            assert data.n_dims == d

    def test_deterministic(self):
        a = make_clustered_dataset(n_points=500, n_clusters=3, random_state=7)
        b = make_clustered_dataset(n_points=500, n_clusters=3, random_state=7)
        np.testing.assert_array_equal(a.points, b.points)

    def test_shuffled(self):
        data = make_clustered_dataset(
            n_points=2000, n_clusters=4, random_state=0
        )
        # Labels must not be sorted (generation order destroyed).
        assert (np.diff(data.labels) < 0).any()

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            make_clustered_dataset(n_points=5, n_clusters=10)
        with pytest.raises(ParameterError):
            make_clustered_dataset(density_ratio=0.5)

    def test_add_noise(self):
        base = make_clustered_dataset(
            n_points=1000, n_clusters=3, random_state=0
        )
        noisy = add_noise(base, 0.5, random_state=1)
        assert noisy.n_points == 1500
        assert noisy.noise_fraction == 0.5


class TestNamedConfigurations:
    def test_fig4_configuration(self):
        data = make_fig4_dataset(
            n_dims=3, noise_fraction=0.4, n_points=5000, random_state=0
        )
        assert data.n_dims == 3
        assert data.n_clusters == 10
        assert data.n_points == 7000

    def test_fig5_density_spread(self):
        data = make_fig5_dataset(n_points=50_000, random_state=0)
        sizes = data.cluster_sizes()
        assert sizes.max() / sizes.min() > 3.0

    def test_ds1_equal_clusters(self):
        data = ds1_dataset(n_points=10_000, random_state=0)
        sizes = data.cluster_sizes()
        assert sizes.max() - sizes.min() <= 1
        assert data.noise_fraction == 0.5

    def test_ds2_variable_clusters(self):
        data = ds2_dataset(n_points=10_000, random_state=0)
        sizes = data.cluster_sizes()
        assert sizes.max() / sizes.min() > 5.0
        assert data.noise_fraction == 0.2


class TestCureDataset:
    def test_five_clusters(self):
        data = cure_dataset1(n_points=5000, random_state=0)
        assert data.n_clusters == 5
        assert data.n_dims == 2

    def test_large_cluster_dominates(self):
        data = cure_dataset1(n_points=10_000, random_state=0)
        sizes = data.cluster_sizes()
        assert sizes[0] == sizes.max()
        assert sizes[0] >= 0.45 * 10_000

    def test_points_inside_shapes(self):
        data = cure_dataset1(n_points=3000, random_state=1)
        for label, shape in enumerate(data.clusters):
            members = data.points[data.labels == label]
            assert shape.contains(members).all()

    def test_rejects_tiny(self):
        with pytest.raises(ParameterError):
            cure_dataset1(n_points=50)


class TestGeospatial:
    @pytest.mark.parametrize(
        "factory,n_metros", [(northeast_dataset, 3), (california_dataset, 3)]
    )
    def test_structure(self, factory, n_metros):
        data = factory(n_points=20_000, random_state=0)
        assert data.n_clusters == n_metros
        assert data.n_dims == 2
        # Metro cores hold a large minority; scatter dominates the rest.
        metro_points = (data.labels >= 0).sum()
        assert 0.2 < metro_points / data.n_points < 0.8

    def test_metros_are_dense(self):
        data = northeast_dataset(n_points=50_000, random_state=0)
        overall_density = data.n_points  # unit square
        for shape in data.clusters:
            inside = shape.contains(data.points).sum()
            assert inside / shape.volume > 5 * overall_density


class TestForest:
    def test_shape(self):
        data = forest_cover_dataset(n_points=5000, n_dims=6, random_state=0)
        assert data.n_dims == 6
        assert data.n_clusters == 7

    def test_imbalanced_classes(self):
        data = forest_cover_dataset(n_points=20_000, random_state=0)
        sizes = data.cluster_sizes()
        assert sizes.max() / max(sizes.min(), 1) > 5.0


class TestOutlierDataset:
    def test_planted_points_are_db_outliers(self):
        data = make_outlier_dataset(
            n_points=3000, n_outliers=8, random_state=0
        )
        exact = IndexedOutlierDetector(
            k=data.guaranteed_radius, p=0
        ).detect(data.points)
        assert set(data.outlier_indices.tolist()) <= set(
            exact.indices.tolist()
        )

    def test_indices_point_at_planted_rows(self):
        data = make_outlier_dataset(
            n_points=2000, n_outliers=5, random_state=1
        )
        # Every planted row must be far from all other rows.
        for idx in data.outlier_indices:
            d = np.linalg.norm(data.points - data.points[idx], axis=1)
            d[idx] = np.inf
            assert d.min() >= data.guaranteed_radius

    def test_zero_outliers(self):
        data = make_outlier_dataset(
            n_points=1000, n_outliers=0, random_state=0
        )
        assert data.outlier_indices.shape == (0,)

    def test_impossible_separation_raises(self):
        with pytest.raises(ParameterError, match="separation"):
            make_outlier_dataset(
                n_points=2000, n_outliers=500, separation=0.5, random_state=0
            )


class TestLoaders:
    def test_roundtrip(self):
        data = make_clustered_dataset(
            n_points=500, n_clusters=3, noise_fraction=0.2, random_state=0
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "data.npz")
            save_dataset(data, path)
            loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.points, data.points)
        np.testing.assert_array_equal(loaded.labels, data.labels)
        assert loaded.noise_fraction == data.noise_fraction

    def test_missing_file(self):
        with pytest.raises(DataValidationError, match="no dataset file"):
            load_dataset("/nonexistent/file.npz")

    def test_wrong_archive(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "other.npz")
            np.savez(path, foo=np.zeros(3))
            with pytest.raises(DataValidationError, match="not a repro"):
                load_dataset(path)
