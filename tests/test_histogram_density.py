"""Tests for the grid-histogram density estimator."""

import numpy as np
import pytest

from repro.density import GridDensityEstimator
from repro.exceptions import NotFittedError, ParameterError
from repro.utils.streams import DataStream


class TestFitting:
    def test_two_passes_without_bounds(self):
        stream = DataStream(np.random.default_rng(0).random((100, 2)))
        GridDensityEstimator(bins_per_dim=4).fit(stream=stream)
        assert stream.passes == 2  # bounding box + counting

    def test_one_pass_with_bounds(self):
        stream = DataStream(np.random.default_rng(0).random((100, 2)))
        GridDensityEstimator(
            bins_per_dim=4, bounds=([0.0, 0.0], [1.0, 1.0])
        ).fit(stream=stream)
        assert stream.passes == 1

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GridDensityEstimator().evaluate([[0.0, 0.0]])

    def test_rejects_bad_bins(self):
        with pytest.raises(ParameterError):
            GridDensityEstimator(bins_per_dim=0)

    def test_occupied_cells_tracked(self):
        data = np.array([[0.1, 0.1], [0.9, 0.9], [0.12, 0.11]])
        est = GridDensityEstimator(bins_per_dim=2).fit(data)
        assert est.n_occupied_cells_ == 2


class TestEvaluation:
    def test_density_proportional_to_counts(self):
        # 30 points in the left half-cell, 10 in the right.
        rng = np.random.default_rng(1)
        left = rng.uniform((0.0, 0.0), (0.5, 1.0), size=(30, 2))
        right = rng.uniform((0.5, 0.0), (1.0, 1.0), size=(10, 2))
        est = GridDensityEstimator(
            bins_per_dim=2, bounds=([0.0, 0.0], [1.0, 1.0])
        ).fit(np.vstack([left, right]))
        f_left = est.evaluate([[0.25, 0.25]])[0] + est.evaluate([[0.25, 0.75]])[0]
        f_right = (
            est.evaluate([[0.75, 0.25]])[0] + est.evaluate([[0.75, 0.75]])[0]
        )
        assert f_left == pytest.approx(3.0 * f_right)

    def test_integrates_to_n(self):
        rng = np.random.default_rng(2)
        data = rng.random((1000, 2))
        est = GridDensityEstimator(
            bins_per_dim=8, bounds=([0.0, 0.0], [1.0, 1.0])
        ).fit(data)
        # Sum over cell centers times cell volume recovers n exactly.
        grid = np.linspace(1 / 16, 1 - 1 / 16, 8)
        xs, ys = np.meshgrid(grid, grid)
        centers = np.column_stack([xs.ravel(), ys.ravel()])
        total = est.evaluate(centers).sum() * est.cell_volume_
        assert total == pytest.approx(1000)

    def test_empty_cells_zero(self):
        data = np.full((10, 2), 0.1)
        est = GridDensityEstimator(
            bins_per_dim=4, bounds=([0.0, 0.0], [1.0, 1.0])
        ).fit(data)
        assert est.evaluate([[0.9, 0.9]])[0] == 0.0

    def test_unscaled_domain(self):
        """Works on raw coordinates far outside the unit cube."""
        rng = np.random.default_rng(3)
        data = rng.uniform(100.0, 200.0, size=(500, 2))
        est = GridDensityEstimator(bins_per_dim=4).fit(data)
        f = est.evaluate([[150.0, 150.0]])[0]
        # Uniform over a 100x100 box: density ~ 500 / 10000.
        assert f == pytest.approx(0.05, rel=0.6)

    def test_out_of_box_queries_clamp(self):
        data = np.random.default_rng(4).random((100, 2))
        est = GridDensityEstimator(bins_per_dim=4).fit(data)
        assert est.evaluate([[5.0, 5.0]]).shape == (1,)
