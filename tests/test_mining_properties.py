"""Property-based tests for the mining subpackage."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mining import TransactionDataset, apriori, association_rules
from repro.mining.sampled_apriori import negative_border

transaction_matrices = hnp.arrays(
    dtype=bool,
    shape=st.tuples(st.integers(1, 40), st.integers(2, 10)),
)


class TestAprioriProperties:
    @settings(max_examples=60, deadline=None)
    @given(matrix=transaction_matrices, support=st.floats(0.05, 0.9))
    def test_downward_closure_always(self, matrix, support):
        from itertools import combinations

        data = TransactionDataset(matrix=matrix, patterns=[])
        frequent = apriori(data, min_support=support)
        for itemset in frequent:
            assert frequent[itemset] >= support
            for r in range(1, len(itemset)):
                for subset in combinations(sorted(itemset), r):
                    assert frozenset(subset) in frequent

    @settings(max_examples=40, deadline=None)
    @given(matrix=transaction_matrices, support=st.floats(0.05, 0.9))
    def test_supports_exact(self, matrix, support):
        data = TransactionDataset(matrix=matrix, patterns=[])
        frequent = apriori(data, min_support=support)
        for itemset, value in frequent.items():
            direct = matrix[:, sorted(itemset)].all(axis=1).mean()
            assert abs(value - direct) < 1e-12

    @settings(max_examples=40, deadline=None)
    @given(matrix=transaction_matrices)
    def test_border_disjoint_from_frequent(self, matrix):
        data = TransactionDataset(matrix=matrix, patterns=[])
        frequent = set(apriori(data, min_support=0.3))
        border = negative_border(frequent, data.n_items)
        assert not (border & frequent)

    @settings(max_examples=30, deadline=None)
    @given(
        matrix=transaction_matrices,
        confidence=st.floats(0.1, 1.0),
    )
    def test_rule_invariants(self, matrix, confidence):
        data = TransactionDataset(matrix=matrix, patterns=[])
        frequent = apriori(data, min_support=0.2)
        rules = association_rules(frequent, min_confidence=confidence)
        for rule in rules:
            assert rule.confidence >= confidence - 1e-12
            assert rule.confidence <= 1.0 + 1e-12
            assert not (rule.antecedent & rule.consequent)
            # Rule support equals the union itemset's support.
            union = rule.antecedent | rule.consequent
            assert abs(rule.support - frequent[union]) < 1e-12


class TestDecisionTreeProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        points=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(4, 60), st.integers(1, 3)),
            elements=st.floats(-100, 100),
        ),
        seed=st.integers(0, 100),
    )
    def test_training_accuracy_beats_majority(self, points, seed):
        """A depth-4 tree's training accuracy is at least the majority
        class share (the root prediction alone achieves that)."""
        from repro.mining import DecisionTreeClassifier

        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=points.shape[0])
        tree = DecisionTreeClassifier(max_depth=4).fit(points, labels)
        majority = np.bincount(labels).max() / labels.shape[0]
        assert tree.score(points, labels) >= majority - 1e-12
