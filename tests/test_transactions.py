"""Tests for the transaction container and Quest-style generator."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.mining import TransactionDataset, make_transaction_dataset


class TestTransactionDataset:
    @pytest.fixture
    def tiny(self):
        matrix = np.array(
            [
                [1, 1, 0, 0],
                [1, 1, 1, 0],
                [0, 1, 0, 1],
                [1, 0, 0, 0],
            ],
            dtype=bool,
        )
        return TransactionDataset(matrix=matrix, patterns=[])

    def test_dimensions(self, tiny):
        assert tiny.n_transactions == 4
        assert tiny.n_items == 4

    def test_transaction_items(self, tiny):
        assert tiny.transaction(0) == (0, 1)
        assert tiny.transaction(3) == (0,)

    def test_lengths(self, tiny):
        assert tiny.lengths().tolist() == [2, 3, 2, 1]

    def test_support(self, tiny):
        assert tiny.support({0}) == 0.75
        assert tiny.support({0, 1}) == 0.5
        assert tiny.support({0, 3}) == 0.0
        assert tiny.support(set()) == 1.0

    def test_subset(self, tiny):
        sub = tiny.subset([0, 2])
        assert sub.n_transactions == 2
        assert sub.support({1}) == 1.0


class TestGenerator:
    def test_shapes(self):
        data = make_transaction_dataset(
            n_transactions=500, n_items=50, random_state=0
        )
        assert data.matrix.shape == (500, 50)
        assert data.matrix.dtype == bool

    def test_patterns_recorded(self):
        data = make_transaction_dataset(
            n_transactions=100, n_patterns=7, random_state=0
        )
        assert len(data.patterns) == 7
        assert all(len(p) >= 1 for p in data.patterns)

    def test_planted_patterns_are_frequent(self):
        """The most popular pattern must have clearly super-random
        support."""
        data = make_transaction_dataset(
            n_transactions=3000,
            n_items=100,
            n_patterns=5,
            corruption=0.0,
            random_state=1,
        )
        top = data.patterns[0]
        assert data.support(top) > 0.15

    def test_corruption_lowers_support(self):
        clean = make_transaction_dataset(
            n_transactions=2000, corruption=0.0, random_state=2
        )
        noisy = make_transaction_dataset(
            n_transactions=2000, corruption=0.6, random_state=2
        )
        # Compare the same pattern (same seed => same patterns).
        pattern = clean.patterns[0]
        assert noisy.support(pattern) < clean.support(pattern)

    def test_deterministic(self):
        a = make_transaction_dataset(n_transactions=200, random_state=5)
        b = make_transaction_dataset(n_transactions=200, random_state=5)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            make_transaction_dataset(n_transactions=0)
        with pytest.raises(ParameterError):
            make_transaction_dataset(n_patterns=0)
        with pytest.raises(ParameterError):
            make_transaction_dataset(corruption=1.0)
