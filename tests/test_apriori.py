"""Tests for Apriori and association rules."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.mining import TransactionDataset, apriori, association_rules
from repro.mining import make_transaction_dataset


@pytest.fixture
def tiny():
    matrix = np.array(
        [
            [1, 1, 0],
            [1, 1, 1],
            [1, 1, 0],
            [0, 1, 1],
            [1, 0, 0],
        ],
        dtype=bool,
    )
    return TransactionDataset(matrix=matrix, patterns=[])


class TestApriori:
    def test_exact_supports(self, tiny):
        frequent = apriori(tiny, min_support=0.4)
        assert frequent[frozenset({0})] == pytest.approx(0.8)
        assert frequent[frozenset({1})] == pytest.approx(0.8)
        assert frequent[frozenset({0, 1})] == pytest.approx(0.6)
        assert frozenset({2}) in frequent  # support 0.4
        assert frozenset({0, 2}) not in frequent  # support 0.2

    def test_downward_closure(self):
        """Every subset of a frequent set is frequent (Apriori property
        must be visible in the output)."""
        data = make_transaction_dataset(n_transactions=1000, random_state=0)
        frequent = apriori(data, min_support=0.05)
        from itertools import combinations

        for itemset in frequent:
            for r in range(1, len(itemset)):
                for subset in combinations(sorted(itemset), r):
                    assert frozenset(subset) in frequent

    def test_supports_match_direct_counting(self):
        data = make_transaction_dataset(n_transactions=500, random_state=1)
        frequent = apriori(data, min_support=0.1)
        for itemset, support in frequent.items():
            assert support == pytest.approx(data.support(itemset))

    def test_threshold_monotonic(self):
        data = make_transaction_dataset(n_transactions=800, random_state=2)
        loose = apriori(data, min_support=0.05)
        tight = apriori(data, min_support=0.15)
        assert set(tight) <= set(loose)

    def test_max_length(self, tiny):
        frequent = apriori(tiny, min_support=0.2, max_length=1)
        assert all(len(s) == 1 for s in frequent)

    def test_weighted_supports(self, tiny):
        """Up-weighting the {1,2} transactions changes supports
        accordingly."""
        weights = np.array([1.0, 1.0, 1.0, 10.0, 1.0])
        frequent = apriori(tiny, min_support=0.2, transaction_weights=weights)
        # support({1,2}) = (1 + 10) / 14
        assert frequent[frozenset({1, 2})] == pytest.approx(11 / 14)

    def test_rejects_bad_args(self, tiny):
        with pytest.raises(ParameterError):
            apriori(tiny, min_support=0.0)
        with pytest.raises(ParameterError):
            apriori(tiny, min_support=0.5, max_length=0)
        with pytest.raises(ParameterError):
            apriori(tiny, min_support=0.5, transaction_weights=np.ones(3))


class TestAssociationRules:
    def test_confidence_computation(self, tiny):
        frequent = apriori(tiny, min_support=0.2)
        rules = association_rules(frequent, min_confidence=0.7)
        by_pair = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))): r
            for r in rules
        }
        # conf({0} -> {1}) = 0.6 / 0.8 = 0.75
        rule = by_pair[((0,), (1,))]
        assert rule.confidence == pytest.approx(0.75)
        assert rule.support == pytest.approx(0.6)
        # lift = 0.75 / 0.8
        assert rule.lift == pytest.approx(0.75 / 0.8)

    def test_min_confidence_filters(self, tiny):
        frequent = apriori(tiny, min_support=0.2)
        strict = association_rules(frequent, min_confidence=0.99)
        loose = association_rules(frequent, min_confidence=0.3)
        assert len(strict) < len(loose)
        assert all(r.confidence >= 0.99 for r in strict)

    def test_sorted_by_confidence(self):
        data = make_transaction_dataset(n_transactions=600, random_state=3)
        rules = association_rules(
            apriori(data, min_support=0.08), min_confidence=0.4
        )
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_rejects_bad_confidence(self, tiny):
        with pytest.raises(ParameterError):
            association_rules({}, min_confidence=0.0)
