"""Tests for repro.utils.scaling."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.utils.scaling import MinMaxScaler


class TestMinMaxScaler:
    def test_transform_maps_to_unit_cube(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        unit = MinMaxScaler().fit_transform(data)
        assert unit.min() == 0.0
        assert unit.max() == 1.0

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(50, 3))
        scaler = MinMaxScaler().fit(data)
        back = scaler.inverse_transform(scaler.transform(data))
        np.testing.assert_allclose(back, data, atol=1e-12)

    def test_constant_column_maps_to_half(self):
        data = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        unit = MinMaxScaler().fit_transform(data)
        assert (unit[:, 1] == 0.5).all()

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform([[1.0]])

    def test_partial_fit_matches_full_fit(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100, 2))
        full = MinMaxScaler().fit(data)
        streamed = MinMaxScaler()
        streamed.partial_fit(data[:30])
        streamed.partial_fit(data[30:70])
        streamed.partial_fit(data[70:])
        np.testing.assert_allclose(full.data_min_, streamed.data_min_)
        np.testing.assert_allclose(full.data_max_, streamed.data_max_)

    def test_out_of_range_points_extrapolate(self):
        scaler = MinMaxScaler().fit([[0.0], [10.0]])
        assert scaler.transform([[20.0]])[0, 0] == 2.0

    def test_volume(self):
        scaler = MinMaxScaler().fit([[0.0, 0.0], [2.0, 5.0]])
        assert scaler.volume_ == 10.0

    def test_volume_ignores_degenerate_dims(self):
        scaler = MinMaxScaler().fit([[0.0, 3.0], [2.0, 3.0]])
        assert scaler.volume_ == 2.0
