"""Tests for the one-pass kernel density estimator."""

import numpy as np
import pytest

from repro.density import KernelDensityEstimator
from repro.exceptions import NotFittedError, ParameterError
from repro.utils.streams import DataStream


@pytest.fixture
def bimodal_data():
    rng = np.random.default_rng(0)
    dense = rng.normal(0.0, 0.05, size=(3000, 2))
    sparse = rng.normal(3.0, 0.5, size=(1000, 2))
    return np.vstack([dense, sparse])


class TestFitting:
    def test_one_pass_fit(self, bimodal_data):
        stream = DataStream(bimodal_data)
        KernelDensityEstimator(n_kernels=100, random_state=0).fit(stream=stream)
        assert stream.passes == 1

    def test_records_dataset_size(self, bimodal_data):
        kde = KernelDensityEstimator(n_kernels=50, random_state=0)
        kde.fit(bimodal_data)
        assert kde.n_points_ == 4000
        assert kde.n_dims_ == 2

    def test_kernel_count_capped_by_data(self):
        kde = KernelDensityEstimator(n_kernels=100, random_state=0)
        kde.fit(np.random.default_rng(0).normal(size=(20, 2)))
        assert kde.centers_.shape[0] == 20

    def test_unfitted_evaluate_raises(self):
        with pytest.raises(NotFittedError):
            KernelDensityEstimator().evaluate([[0.0, 0.0]])

    def test_rejects_zero_kernels(self):
        with pytest.raises(ParameterError):
            KernelDensityEstimator(n_kernels=0)

    def test_deterministic_with_seed(self, bimodal_data):
        a = KernelDensityEstimator(n_kernels=64, random_state=5).fit(
            bimodal_data
        )
        b = KernelDensityEstimator(n_kernels=64, random_state=5).fit(
            bimodal_data
        )
        np.testing.assert_array_equal(a.centers_, b.centers_)


class TestEvaluation:
    def test_dense_region_denser(self, bimodal_data):
        kde = KernelDensityEstimator(n_kernels=200, random_state=0).fit(
            bimodal_data
        )
        f_dense = kde.evaluate([[0.0, 0.0]])[0]
        f_sparse = kde.evaluate([[3.0, 3.0]])[0]
        f_empty = kde.evaluate([[10.0, 10.0]])[0]
        assert f_dense > f_sparse > f_empty
        assert f_empty == 0.0  # Epanechnikov has compact support

    def test_non_negative_everywhere(self, bimodal_data):
        kde = KernelDensityEstimator(n_kernels=100, random_state=0).fit(
            bimodal_data
        )
        grid = np.random.default_rng(1).uniform(-1, 4, size=(500, 2))
        assert (kde.evaluate(grid) >= 0).all()

    def test_integrates_to_n(self):
        """Grid integration over the support should recover ~n."""
        rng = np.random.default_rng(2)
        data = rng.uniform(0.0, 1.0, size=(5000, 1))
        kde = KernelDensityEstimator(n_kernels=300, random_state=0).fit(data)
        xs = np.linspace(-0.5, 1.5, 4001).reshape(-1, 1)
        integral = np.trapezoid(kde.evaluate(xs), xs.ravel())
        assert integral == pytest.approx(5000, rel=0.05)

    def test_dimension_mismatch_raises(self, bimodal_data):
        kde = KernelDensityEstimator(n_kernels=50, random_state=0).fit(
            bimodal_data
        )
        with pytest.raises(ValueError, match="dims"):
            kde.evaluate([[0.0, 0.0, 0.0]])

    def test_1d_query_row_accepted(self, bimodal_data):
        kde = KernelDensityEstimator(n_kernels=50, random_state=0).fit(
            bimodal_data
        )
        assert kde.evaluate([0.0, 0.0]).shape == (1,)

    def test_callable_alias(self, bimodal_data):
        kde = KernelDensityEstimator(n_kernels=50, random_state=0).fit(
            bimodal_data
        )
        q = [[0.0, 0.0]]
        np.testing.assert_array_equal(kde(q), kde.evaluate(q))

    def test_chunked_evaluation_consistent(self, bimodal_data):
        """Large query batches must agree with row-by-row evaluation."""
        kde = KernelDensityEstimator(n_kernels=128, random_state=0).fit(
            bimodal_data
        )
        queries = np.random.default_rng(3).normal(size=(50, 2))
        batched = kde.evaluate(queries)
        single = np.array([kde.evaluate(q[None, :])[0] for q in queries])
        np.testing.assert_allclose(batched, single, rtol=1e-10)

    def test_gaussian_kernel_backend(self, bimodal_data):
        kde = KernelDensityEstimator(
            n_kernels=100, kernel="gaussian", random_state=0
        ).fit(bimodal_data)
        assert kde.evaluate([[0.0, 0.0]])[0] > 0


class TestBallMass:
    def test_ball_mass_counts_neighbors(self):
        rng = np.random.default_rng(4)
        data = rng.uniform(0.0, 1.0, size=(20_000, 2))
        kde = KernelDensityEstimator(n_kernels=2000, random_state=0).fit(data)
        radius = 0.05
        mass = kde.ball_mass([[0.5, 0.5]], radius, n_mc=2000, random_state=0)
        # Against the true count (uniform density), generously: the KDE
        # itself has O(1/sqrt(n_kernels)) noise.
        expected = 20_000 * np.pi * radius**2
        assert mass[0] == pytest.approx(expected, rel=0.5)
        # Against the estimator's own density (tight): for a small ball
        # the integral must match f(center) * volume up to MC error.
        f_center = kde.evaluate([[0.5, 0.5]])[0]
        assert mass[0] == pytest.approx(
            f_center * np.pi * radius**2, rel=0.1
        )

    def test_ball_mass_zero_far_away(self):
        data = np.random.default_rng(5).normal(size=(1000, 2))
        kde = KernelDensityEstimator(n_kernels=100, random_state=0).fit(data)
        mass = kde.ball_mass([[50.0, 50.0]], 0.1, random_state=0)
        assert mass[0] == 0.0


class TestFitFromCenters:
    def test_manual_construction(self):
        kde = KernelDensityEstimator(kernel="epanechnikov")
        kde.fit_from_centers([[0.0], [1.0]], n_points=100, bandwidths=0.5)
        assert kde.evaluate([[0.0]])[0] > 0
        assert kde.n_points_ == 100

    def test_rule_name_without_std_rejected(self):
        """Regression: a rule name used to be resolved against a
        fabricated unit spread; it must demand the real one."""
        kde = KernelDensityEstimator(kernel="epanechnikov")
        with pytest.raises(ParameterError, match="std"):
            kde.fit_from_centers(
                [[0.0], [1.0]], n_points=100, bandwidths="scott"
            )

    def test_rule_name_with_explicit_std(self):
        kde = KernelDensityEstimator(kernel="epanechnikov")
        kde.fit_from_centers(
            [[0.0, 0.0], [1.0, 1.0]],
            n_points=100,
            bandwidths="scott",
            std=[1.0, 3.0],
        )
        # The resolved widths track the supplied spread per attribute.
        assert kde.bandwidths_[1] == pytest.approx(3.0 * kde.bandwidths_[0])
