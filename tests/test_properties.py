"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import DensityBiasedSampler, theory
from repro.core.weights import effective_sample_size
from repro.density import KernelDensityEstimator, get_kernel
from repro.faults import FaultPlan, FaultyStream
from repro.utils.streams import DataStream
from repro.utils.geometry import (
    ball_volume,
    pairwise_sq_distances,
    sq_distances_to,
)
from repro.utils.heaps import IndexedMinHeap
from repro.utils.scaling import MinMaxScaler

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def point_arrays(min_rows=2, max_rows=60, min_cols=1, max_cols=4):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
        ),
        elements=finite_floats,
    )


class TestGeometryProperties:
    @given(point_arrays())
    def test_pairwise_symmetric_nonnegative(self, pts):
        d = pairwise_sq_distances(pts)
        assert (d >= 0).all()
        np.testing.assert_allclose(d, d.T, atol=1e-6)

    @given(point_arrays(max_rows=20), point_arrays(max_rows=20))
    def test_cross_distances_match_norm(self, a, b):
        if a.shape[1] != b.shape[1]:
            b = np.resize(b, (b.shape[0], a.shape[1]))
        d = sq_distances_to(a, b)
        i, j = 0, b.shape[0] - 1
        direct = float(((a[i] - b[j]) ** 2).sum())
        # Relative tolerance: catastrophic cancellation is bounded by the
        # squared norms involved.
        scale = max(1.0, (a[i] ** 2).sum() + (b[j] ** 2).sum())
        assert abs(d[i, j] - direct) <= 1e-7 * scale

    @given(
        st.floats(min_value=1e-3, max_value=1e3),
        st.integers(min_value=1, max_value=10),
    )
    def test_ball_volume_monotone_in_radius(self, radius, dim):
        assert ball_volume(radius * 1.1, dim) > ball_volume(radius, dim)


class TestScalerProperties:
    @given(point_arrays(min_rows=2))
    def test_transform_lands_in_unit_cube(self, pts):
        unit = MinMaxScaler().fit_transform(pts)
        assert (unit >= -1e-9).all() and (unit <= 1 + 1e-9).all()

    @given(point_arrays(min_rows=2))
    def test_roundtrip(self, pts):
        scaler = MinMaxScaler().fit(pts)
        back = scaler.inverse_transform(scaler.transform(pts))
        np.testing.assert_allclose(back, pts, atol=1e-6, rtol=1e-9)


class TestHeapProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), finite_floats),
            min_size=1,
            max_size=100,
        )
    )
    def test_pops_in_sorted_order(self, items):
        heap = IndexedMinHeap()
        reference = {}
        for item, key in items:
            heap.push(item, key)
            reference[item] = key
        drained = []
        while len(heap):
            item, key = heap.pop()
            assert reference.pop(item) == key
            drained.append(key)
        assert drained == sorted(drained)
        assert not reference


class TestKernelProperties:
    @given(
        st.sampled_from(
            ["epanechnikov", "gaussian", "uniform", "triangular", "biweight"]
        ),
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 50),
            elements=st.floats(-5, 5),
        ),
    )
    def test_kernels_nonnegative_and_symmetric(self, name, u):
        kernel = get_kernel(name)
        values = kernel(u)
        assert (values >= 0).all()
        np.testing.assert_allclose(values, kernel(-u), atol=1e-12)


class TestSamplerProperties:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        exponent=st.floats(min_value=-1.5, max_value=1.5),
        seed=st.integers(0, 1000),
    )
    def test_probabilities_valid_for_any_exponent(self, exponent, seed):
        rng = np.random.default_rng(0)
        data = np.vstack(
            [
                rng.normal(0.0, 0.05, size=(300, 2)),
                rng.uniform(-1.0, 1.0, size=(300, 2)),
            ]
        )
        sampler = DensityBiasedSampler(
            sample_size=100,
            exponent=exponent,
            estimator=KernelDensityEstimator(n_kernels=64, random_state=0),
            random_state=seed,
        )
        sample = sampler.sample(data)
        probs = sampler.probabilities_
        assert np.isfinite(probs).all()
        # a > 0 may assign probability exactly 0 to zero-density points;
        # sampled points always carry a positive probability.
        assert (probs >= 0).all() and (probs <= 1).all()
        assert (sample.probabilities > 0).all()
        # Expected size never exceeds the budget (clipping only shrinks).
        assert probs.sum() <= 100 + 1e-6
        # Sampled indices are unique and in range.
        assert np.unique(sample.indices).shape[0] == len(sample)
        assert len(sample) == 0 or sample.indices.max() < 600

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(100, 10**6),
        frac=st.floats(0.001, 0.5),
        eta=st.floats(0.01, 0.9),
        delta=st.floats(0.01, 0.5),
    )
    def test_guha_bound_dominates_eta_n(self, n, frac, eta, delta):
        """The uniform bound is always at least eta*n (you must at least
        take the points you want) and grows as delta shrinks."""
        cluster = max(1, int(frac * n))
        s = theory.uniform_sample_size(n, cluster, eta, delta)
        assert s >= eta * n
        tighter = theory.uniform_sample_size(n, cluster, eta, delta / 2)
        assert tighter >= s

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1000, 10**6),
        frac=st.floats(0.001, 0.2),
        p=st.floats(0.001, 1.0),
    )
    def test_theorem1_crossover_property(self, n, frac, p):
        cluster = max(1, int(frac * n))
        s = theory.uniform_sample_size(n, cluster, 0.2, 0.1)
        s_r = theory.biased_sample_size(n, cluster, 0.2, 0.1, p)
        if theory.theorem1_holds(n, cluster, p):
            assert s_r <= s * (1 + 1e-9)
        else:
            assert s_r >= s * (1 - 1e-9)


#: Seeded fault plans that always leave a usable number of survivors.
fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 50),
    nan_row_rate=st.floats(0.0, 0.08),
    inf_row_rate=st.floats(0.0, 0.04),
    short_read_rate=st.floats(0.0, 0.25),
    io_error_rate=st.floats(0.0, 0.3),
)


def _faulted_stream(data_seed: int, plan: FaultPlan) -> FaultyStream:
    """A quarantining stream over seeded Gaussian data with ``plan``."""
    data = np.random.default_rng(data_seed).normal(size=(400, 2))
    return FaultyStream(
        DataStream(data, chunk_size=64), plan, fault_policy="quarantine"
    )


class TestFaultedStreamProperties:
    """Sampler invariants must survive quarantined fault-laced streams."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data_seed=st.integers(0, 100), plan=fault_plans)
    def test_sampled_rows_are_survivors(self, data_seed, plan):
        stream = _faulted_stream(data_seed, plan)
        survivors = stream.materialize()
        assert survivors.shape[0] == stream.n_points
        sampler = DensityBiasedSampler(
            sample_size=60,
            exponent=0.5,
            estimator=KernelDensityEstimator(n_kernels=32, random_state=0),
            random_state=data_seed,
        )
        sample = sampler.sample(None, stream=stream)
        # Every sampled row is exactly a surviving row (no quarantined
        # row leaks into the sample, no repair blending happens).
        np.testing.assert_array_equal(
            sample.points, survivors[sample.indices]
        )
        assert np.isfinite(sample.points).all()
        assert sample.n_source == stream.n_points

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data_seed=st.integers(0, 100), plan=fault_plans)
    def test_expected_size_monotone_in_budget(self, data_seed, plan):
        stream = _faulted_stream(data_seed, plan)
        estimator = KernelDensityEstimator(n_kernels=32, random_state=0)
        estimator.fit(stream=stream)
        expectations = []
        for budget in (20, 60, 180):
            sampler = DensityBiasedSampler(
                sample_size=budget,
                exponent=0.5,
                estimator=estimator,
                random_state=0,
            )
            sampler.sample(None, stream=stream)
            expectations.append(sampler.probabilities_.sum())
        assert expectations[0] <= expectations[1] + 1e-9
        assert expectations[1] <= expectations[2] + 1e-9

    @settings(max_examples=3, deadline=None)
    @given(plan=fault_plans)
    def test_ht_weight_sum_unbiased_over_survivors(self, plan):
        """Horvitz-Thompson: E[sum of 1/p over the sample] equals the
        number of surviving rows with positive inclusion probability."""
        stream = _faulted_stream(7, plan)
        estimator = KernelDensityEstimator(n_kernels=32, random_state=0)
        estimator.fit(stream=stream)
        sampler = DensityBiasedSampler(
            sample_size=80, exponent=0.5, estimator=estimator, random_state=0
        )
        sampler.sample(None, stream=stream)
        probs = sampler.probabilities_
        reachable = probs > 0
        variance = float(((1 - probs[reachable]) / probs[reachable]).sum())
        rounds = 25
        totals = []
        for draw_seed in range(rounds):
            sampler.random_state = draw_seed
            sample = sampler.sample(None, stream=stream)
            totals.append(float(sample.weights.sum()))
        tolerance = 5.0 * np.sqrt(max(variance, 1e-12) / rounds)
        assert abs(np.mean(totals) - reachable.sum()) <= tolerance


class TestWeightProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 50),
            elements=st.floats(1e-3, 1e3),
        )
    )
    def test_ess_bounded_by_n(self, weights):
        ess = effective_sample_size(weights)
        assert 1.0 - 1e-9 <= ess <= weights.shape[0] + 1e-9


class TestCFTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        pts=point_arrays(min_rows=3, max_rows=80, min_cols=1, max_cols=3),
        threshold=st.floats(0.0, 2.0),
        branching=st.integers(2, 8),
    )
    def test_cf_statistics_conserved(self, pts, threshold, branching):
        """Whatever the insertion order, splits and absorptions, the
        leaf CFs must sum to the dataset's (n, LS, SS)."""
        from repro.clustering.birch import CFEntry, CFTree

        tree = CFTree(threshold=threshold, branching_factor=branching)
        for row in pts:
            tree.insert(CFEntry.from_point(row))
        leaves = tree.leaf_entries()
        assert sum(e.n for e in leaves) == pts.shape[0]
        np.testing.assert_allclose(
            np.sum([e.ls for e in leaves], axis=0),
            pts.sum(axis=0),
            rtol=1e-6,
            atol=1e-6,
        )
        total_ss = sum(e.ss for e in leaves)
        np.testing.assert_allclose(
            total_ss, (pts**2).sum(), rtol=1e-6, atol=1e-6
        )
