"""Edge-case tests for the shared AST substrate (``tools/astkit``).

The call graph and both analysers resolve module-level names through
``ModuleInfo.top_level_bindings`` / ``bindings_of``, so scoping mistakes
here silently break cross-module resolution everywhere downstream. The
cases below pin the subtle corners: walrus targets (including PEP 572's
comprehension-scope escape), augmented assignment to attributes vs
names, ``try/finally`` re-binding, and nested unpacking targets.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from tools.astkit import (
    ModuleInfo,
    bindings_of,
    build_model,
    collect_python_files,
    module_name,
    parse_suppressions,
)


def _bindings(source: str) -> set[str]:
    tree = ast.parse(textwrap.dedent(source))
    bound: set[str] = set()
    for node in tree.body:
        bound.update(bindings_of(node))
    return bound


# ---------------------------------------------------------------------------
# Plain binding statements


class TestBasicBindings:
    def test_defs_classes_imports(self):
        assert _bindings(
            """
            import os
            import os.path
            import numpy as np
            from sys import argv, path as syspath
            from x import *

            def f():
                pass

            class C:
                pass
            """
        ) == {"os", "np", "argv", "syspath", "f", "C"}

    def test_tuple_and_starred_unpacking(self):
        assert _bindings("a, (b, [c, *rest]) = value\n") == {
            "a",
            "b",
            "c",
            "rest",
        }

    def test_conditional_definitions(self):
        assert _bindings(
            """
            if fast:
                impl = 1
            else:
                impl = 2
            try:
                import ujson as json
            except ImportError:
                import json
            """
        ) == {"impl", "json"}


# ---------------------------------------------------------------------------
# Augmented assignment


class TestAugAssign:
    def test_aug_assign_to_name_binds(self):
        assert _bindings("total += 1\n") == {"total"}

    def test_aug_assign_to_attribute_binds_nothing(self):
        # ``self.x += 1`` mutates the object bound to ``self``; it must
        # not surface ``self`` (or anything) as a module-level binding.
        assert _bindings("obj.count += 1\n") == set()

    def test_subscript_stores_bind_nothing(self):
        assert _bindings("d[key] = value\nd[key] += 1\n") == set()

    def test_attribute_assign_binds_nothing(self):
        assert _bindings("cfg.debug = True\n") == set()


# ---------------------------------------------------------------------------
# try/finally


class TestTryFinally:
    def test_finally_rebinding_is_seen(self):
        # A name (re)bound only in the ``finally`` block is still a
        # module-level binding — finally always runs.
        assert _bindings(
            """
            try:
                handle = acquire()
            finally:
                released = True
            """
        ) == {"handle", "released"}

    def test_handler_and_orelse_bindings(self):
        assert _bindings(
            """
            try:
                a = 1
            except ValueError:
                b = 2
            else:
                c = 3
            finally:
                d = 4
            """
        ) == {"a", "b", "c", "d"}


# ---------------------------------------------------------------------------
# Walrus (PEP 572)


class TestWalrus:
    def test_walrus_in_expression_statement(self):
        assert _bindings("(n := 10)\n") == {"n"}

    def test_walrus_in_if_test(self):
        assert _bindings(
            """
            if (m := compute()) > 0:
                use(m)
            """
        ) == {"m"}

    def test_walrus_in_top_level_comprehension_binds_module_scope(self):
        # PEP 572: the comprehension's walrus binds in the *containing*
        # scope — at top level, the module namespace. The comprehension
        # variable itself stays comprehension-local.
        assert _bindings("ys = [y := f(x) for x in data]\n") == {"ys", "y"}

    def test_comprehension_loop_variable_stays_local(self):
        assert _bindings("squares = [x * x for x in data]\n") == {"squares"}

    def test_walrus_inside_function_body_stays_local(self):
        assert _bindings(
            """
            def f():
                return (hidden := 1)
            """
        ) == {"f"}

    def test_walrus_in_default_binds_module_scope(self):
        # Parameter defaults evaluate in the enclosing scope at def
        # time, so their walruses bind module-level names.
        assert _bindings(
            """
            def f(x=(fallback := 3)):
                return x
            """
        ) == {"f", "fallback"}

    def test_walrus_in_lambda_body_stays_local(self):
        assert _bindings("g = lambda: (tmp := 1)\n") == {"g"}

    def test_walrus_in_nested_comprehension(self):
        # Nested comprehensions: the inner walrus still propagates to
        # the scope containing the *outermost* comprehension.
        assert _bindings(
            "grid = [[v := g(i, j) for j in cols] for i in rows]\n"
        ) == {"grid", "v"}


# ---------------------------------------------------------------------------
# ModuleInfo / model plumbing


class TestModelPlumbing:
    def test_top_level_bindings_via_build_model(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            textwrap.dedent(
                """
                import ast

                try:
                    fast = True
                finally:
                    slow = False

                if (flag := probe()):
                    alt = 1
                """
            )
        )
        project, issues = build_model(collect_python_files([tmp_path]))
        assert issues == []
        (info,) = project.modules
        assert isinstance(info, ModuleInfo)
        assert info.top_level_bindings() == {
            "ast",
            "fast",
            "slow",
            "flag",
            "alt",
        }

    def test_module_name_walks_packages(self, tmp_path):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        mod = pkg / "leaf.py"
        mod.write_text("x = 1\n")
        assert module_name(mod) == "pkg.sub.leaf"

    def test_parse_suppressions_tool_scoped(self):
        src = "# repro-audit: disable=RA005, RA006\n# repro-lint: disable=RL001\n"
        assert parse_suppressions(src, tool="repro-audit") == frozenset(
            {"RA005", "RA006"}
        )
        assert parse_suppressions(src) == frozenset({"RL001"})

    def test_syntax_error_becomes_issue(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        project, issues = build_model([bad])
        assert project.modules == []
        assert len(issues) == 1
        assert "syntax error" in issues[0].message


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
