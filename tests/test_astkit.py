"""Edge-case tests for the shared AST substrate (``tools/astkit``).

The call graph and both analysers resolve module-level names through
``ModuleInfo.top_level_bindings`` / ``bindings_of``, so scoping mistakes
here silently break cross-module resolution everywhere downstream. The
cases below pin the subtle corners: walrus targets (including PEP 572's
comprehension-scope escape), augmented assignment to attributes vs
names, ``try/finally`` re-binding, and nested unpacking targets.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from tools.astkit import (
    ModuleInfo,
    bindings_of,
    build_model,
    collect_python_files,
    module_name,
    parse_suppressions,
)


def _bindings(source: str) -> set[str]:
    tree = ast.parse(textwrap.dedent(source))
    bound: set[str] = set()
    for node in tree.body:
        bound.update(bindings_of(node))
    return bound


# ---------------------------------------------------------------------------
# Plain binding statements


class TestBasicBindings:
    def test_defs_classes_imports(self):
        assert _bindings(
            """
            import os
            import os.path
            import numpy as np
            from sys import argv, path as syspath
            from x import *

            def f():
                pass

            class C:
                pass
            """
        ) == {"os", "np", "argv", "syspath", "f", "C"}

    def test_tuple_and_starred_unpacking(self):
        assert _bindings("a, (b, [c, *rest]) = value\n") == {
            "a",
            "b",
            "c",
            "rest",
        }

    def test_conditional_definitions(self):
        assert _bindings(
            """
            if fast:
                impl = 1
            else:
                impl = 2
            try:
                import ujson as json
            except ImportError:
                import json
            """
        ) == {"impl", "json"}


# ---------------------------------------------------------------------------
# Augmented assignment


class TestAugAssign:
    def test_aug_assign_to_name_binds(self):
        assert _bindings("total += 1\n") == {"total"}

    def test_aug_assign_to_attribute_binds_nothing(self):
        # ``self.x += 1`` mutates the object bound to ``self``; it must
        # not surface ``self`` (or anything) as a module-level binding.
        assert _bindings("obj.count += 1\n") == set()

    def test_subscript_stores_bind_nothing(self):
        assert _bindings("d[key] = value\nd[key] += 1\n") == set()

    def test_attribute_assign_binds_nothing(self):
        assert _bindings("cfg.debug = True\n") == set()


# ---------------------------------------------------------------------------
# try/finally


class TestTryFinally:
    def test_finally_rebinding_is_seen(self):
        # A name (re)bound only in the ``finally`` block is still a
        # module-level binding — finally always runs.
        assert _bindings(
            """
            try:
                handle = acquire()
            finally:
                released = True
            """
        ) == {"handle", "released"}

    def test_handler_and_orelse_bindings(self):
        assert _bindings(
            """
            try:
                a = 1
            except ValueError:
                b = 2
            else:
                c = 3
            finally:
                d = 4
            """
        ) == {"a", "b", "c", "d"}


# ---------------------------------------------------------------------------
# Walrus (PEP 572)


class TestWalrus:
    def test_walrus_in_expression_statement(self):
        assert _bindings("(n := 10)\n") == {"n"}

    def test_walrus_in_if_test(self):
        assert _bindings(
            """
            if (m := compute()) > 0:
                use(m)
            """
        ) == {"m"}

    def test_walrus_in_top_level_comprehension_binds_module_scope(self):
        # PEP 572: the comprehension's walrus binds in the *containing*
        # scope — at top level, the module namespace. The comprehension
        # variable itself stays comprehension-local.
        assert _bindings("ys = [y := f(x) for x in data]\n") == {"ys", "y"}

    def test_comprehension_loop_variable_stays_local(self):
        assert _bindings("squares = [x * x for x in data]\n") == {"squares"}

    def test_walrus_inside_function_body_stays_local(self):
        assert _bindings(
            """
            def f():
                return (hidden := 1)
            """
        ) == {"f"}

    def test_walrus_in_default_binds_module_scope(self):
        # Parameter defaults evaluate in the enclosing scope at def
        # time, so their walruses bind module-level names.
        assert _bindings(
            """
            def f(x=(fallback := 3)):
                return x
            """
        ) == {"f", "fallback"}

    def test_walrus_in_lambda_body_stays_local(self):
        assert _bindings("g = lambda: (tmp := 1)\n") == {"g"}

    def test_walrus_in_nested_comprehension(self):
        # Nested comprehensions: the inner walrus still propagates to
        # the scope containing the *outermost* comprehension.
        assert _bindings(
            "grid = [[v := g(i, j) for j in cols] for i in rows]\n"
        ) == {"grid", "v"}


# ---------------------------------------------------------------------------
# ModuleInfo / model plumbing


class TestModelPlumbing:
    def test_top_level_bindings_via_build_model(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            textwrap.dedent(
                """
                import ast

                try:
                    fast = True
                finally:
                    slow = False

                if (flag := probe()):
                    alt = 1
                """
            )
        )
        project, issues = build_model(collect_python_files([tmp_path]))
        assert issues == []
        (info,) = project.modules
        assert isinstance(info, ModuleInfo)
        assert info.top_level_bindings() == {
            "ast",
            "fast",
            "slow",
            "flag",
            "alt",
        }

    def test_module_name_walks_packages(self, tmp_path):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        mod = pkg / "leaf.py"
        mod.write_text("x = 1\n")
        assert module_name(mod) == "pkg.sub.leaf"

    def test_parse_suppressions_tool_scoped(self):
        src = "# repro-audit: disable=RA005, RA006\n# repro-lint: disable=RL001\n"
        assert parse_suppressions(src, tool="repro-audit") == frozenset(
            {"RA005", "RA006"}
        )
        assert parse_suppressions(src) == frozenset({"RL001"})

    def test_syntax_error_becomes_issue(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        project, issues = build_model([bad])
        assert project.modules == []
        assert len(issues) == 1
        assert "syntax error" in issues[0].message


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))


# ---------------------------------------------------------------------------
# Control-flow graphs


def _cfg(source: str):
    from tools.astkit import build_cfg

    tree = ast.parse(textwrap.dedent(source).lstrip("\n"))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func), func


def _stmt(func: ast.FunctionDef, kind, *, line: int | None = None):
    """First statement of ``kind`` (optionally at ``line``) in ``func``."""
    for node in ast.walk(func):
        if isinstance(node, kind) and (line is None or node.lineno == line):
            return node
    raise AssertionError(f"no {kind.__name__} in function")


class TestCfgStructure:
    def test_straight_line_reaches_exit(self):
        cfg, func = _cfg(
            """
            def f(x):
                y = x + 1
                return y
            """
        )
        ret = _stmt(func, ast.Return)
        block = cfg.block_index(ret)
        assert block is not None
        assert cfg.exit_index in cfg.blocks[block].succs

    def test_may_raise_statement_terminates_its_block(self):
        cfg, func = _cfg(
            """
            def f(x):
                a = 1
                b = g(x)
                c = 2
                return c
            """
        )
        call_assign = _stmt(func, ast.Assign, line=3)
        after = _stmt(func, ast.Assign, line=4)
        b1 = cfg.block_index(call_assign)
        b2 = cfg.block_index(after)
        assert b1 != b2
        # The call may raise: an exception edge escapes to the exit.
        assert cfg.exit_index in cfg.blocks[b1].exc_succs
        # The non-raising assignments carry no exception edges.
        assert not cfg.blocks[b2].exc_succs

    def test_if_branches_rejoin(self):
        cfg, func = _cfg(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        then_block = cfg.block_index(_stmt(func, ast.Assign, line=3))
        else_block = cfg.block_index(_stmt(func, ast.Assign, line=5))
        ret_block = cfg.block_index(_stmt(func, ast.Return))
        assert then_block != else_block
        assert ret_block in cfg.blocks[then_block].succs
        assert ret_block in cfg.blocks[else_block].succs

    def test_loop_back_edge_and_exit(self):
        cfg, func = _cfg(
            """
            def f(xs):
                total = 0
                for x in xs:
                    total = total + x
                return total
            """
        )
        loop = _stmt(func, ast.For)
        header = cfg.block_index(loop)
        body_block = cfg.block_index(_stmt(func, ast.Assign, line=4))
        ret_block = cfg.block_index(_stmt(func, ast.Return))
        assert header in cfg.blocks[body_block].succs  # back edge
        # Zero-iteration path: the header reaches the loop exit.
        reachable = {header}
        stack = [header]
        while stack:
            for succ in cfg.blocks[stack[-1]].succs | set():
                pass
            node = stack.pop()
            for succ in cfg.successors(node):
                if succ not in reachable:
                    reachable.add(succ)
                    stack.append(succ)
        assert ret_block in reachable


class TestCfgExceptionEdges:
    def test_call_edges_to_handler_and_escape(self):
        cfg, func = _cfg(
            """
            def f(x):
                try:
                    y = g(x)
                except ValueError:
                    y = 0
                return y
            """
        )
        risky = cfg.block_index(_stmt(func, ast.Assign, line=3))
        handler_assign = cfg.block_index(_stmt(func, ast.Assign, line=5))
        exc = cfg.blocks[risky].exc_succs
        # Handlers are not type-matched: the edge reaches the handler
        # entry AND escapes past it (ValueError is not a catch-all).
        assert any(
            handler_assign in cfg.successors(target) or target == handler_assign
            for target in exc
        )
        assert cfg.exit_index in exc

    def test_catch_all_handler_stops_escape(self):
        cfg, func = _cfg(
            """
            def f(x):
                try:
                    y = g(x)
                except Exception:
                    y = 0
                return y
            """
        )
        risky = cfg.block_index(_stmt(func, ast.Assign, line=3))
        assert cfg.exit_index not in cfg.blocks[risky].exc_succs

    def test_bare_raise_has_only_exception_successors(self):
        cfg, func = _cfg(
            """
            def f(x):
                raise ValueError(x)
            """
        )
        block = cfg.block_index(_stmt(func, ast.Raise))
        assert not cfg.blocks[block].succs
        assert cfg.exit_index in cfg.blocks[block].exc_succs


class TestCfgFinally:
    def test_exception_path_runs_finally(self):
        cfg, func = _cfg(
            """
            def f(path):
                handle = acquire(path)
                try:
                    use(handle)
                finally:
                    release(handle)
                return None
            """
        )
        risky = cfg.block_index(
            _stmt(func, ast.Expr, line=4)
        )
        fin = cfg.block_index(_stmt(func, ast.Expr, line=6))
        # Raising inside the try lands in the finally, not the exit.
        assert fin in cfg.blocks[risky].exc_succs
        assert cfg.exit_index not in cfg.blocks[risky].exc_succs

    def test_return_routes_through_finally(self):
        cfg, func = _cfg(
            """
            def f(x):
                try:
                    return x
                finally:
                    cleanup()
            """
        )
        ret = cfg.block_index(_stmt(func, ast.Return))
        fin = cfg.block_index(_stmt(func, ast.Expr, line=5))
        assert fin in cfg.blocks[ret].succs
        assert cfg.exit_index not in cfg.blocks[ret].succs

    def test_break_inside_try_routes_through_finally(self):
        cfg, func = _cfg(
            """
            def f(xs):
                for x in xs:
                    try:
                        if x:
                            break
                    finally:
                        note(x)
                return 1
            """
        )
        brk = cfg.block_index(_stmt(func, ast.Break))
        fin = cfg.block_index(_stmt(func, ast.Expr, line=7))
        assert fin in cfg.blocks[brk].succs

    def test_break_outside_try_skips_outer_finally(self):
        cfg, func = _cfg(
            """
            def f(xs):
                try:
                    for x in xs:
                        if x:
                            break
                finally:
                    note(xs)
                return 1
            """
        )
        # The loop is INSIDE the try: break only exits the loop and
        # stays inside the try, so it must NOT jump to the finally.
        brk = cfg.block_index(_stmt(func, ast.Break))
        fin = cfg.block_index(_stmt(func, ast.Expr, line=7))
        assert fin not in cfg.blocks[brk].succs


class TestCfgWith:
    def test_with_header_carries_exception_edge(self):
        cfg, func = _cfg(
            """
            def f(path):
                with open(path) as fh:
                    data = fh.read()
                return data
            """
        )
        header = cfg.block_index(_stmt(func, ast.With))
        assert cfg.exit_index in cfg.blocks[header].exc_succs

    def test_with_body_statements_have_blocks(self):
        cfg, func = _cfg(
            """
            def f(path):
                with open(path) as fh:
                    data = fh.read()
                return data
            """
        )
        body_assign = cfg.block_index(_stmt(func, ast.Assign, line=3))
        ret = cfg.block_index(_stmt(func, ast.Return))
        assert body_assign is not None
        assert ret is not None


class TestCfgNestedFunctions:
    def test_nested_def_statements_stay_opaque(self):
        cfg, func = _cfg(
            """
            def f(xs):
                def inner(y):
                    return y + 1
                return inner
            """
        )
        inner = _stmt(func, ast.FunctionDef, line=2)
        inner_return = inner.body[0]
        # The nested def itself occupies a block of the outer CFG...
        assert cfg.block_index(inner) is not None
        # ...but its body statements belong to the inner function's CFG.
        assert cfg.block_index(inner_return) is None

    def test_nested_def_body_calls_do_not_raise_in_outer_cfg(self):
        cfg, func = _cfg(
            """
            def f(xs):
                def inner(y):
                    return g(y)
                return inner
            """
        )
        inner = _stmt(func, ast.FunctionDef, line=2)
        block = cfg.block_index(inner)
        assert not cfg.blocks[block].exc_succs


class TestCfgDominance:
    def test_entry_dominates_everything_reachable(self):
        cfg, func = _cfg(
            """
            def f(x):
                if x:
                    a = g(x)
                return x
            """
        )
        ret = cfg.block_index(_stmt(func, ast.Return))
        assert cfg.dominates(cfg.entry_index, ret)

    def test_branch_does_not_dominate_join(self):
        cfg, func = _cfg(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        then_block = cfg.block_index(_stmt(func, ast.Assign, line=3))
        ret = cfg.block_index(_stmt(func, ast.Return))
        assert not cfg.dominates(then_block, ret)

    def test_postdominance_of_mandatory_join(self):
        cfg, func = _cfg(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                b = a
                return b
            """
        )
        join = cfg.block_index(_stmt(func, ast.Assign, line=6))
        then_block = cfg.block_index(_stmt(func, ast.Assign, line=3))
        assert cfg.postdominates(join, then_block)

    def test_finally_postdominates_try_body(self):
        cfg, func = _cfg(
            """
            def f(x):
                try:
                    y = g(x)
                finally:
                    cleanup()
                return y
            """
        )
        risky = cfg.block_index(_stmt(func, ast.Assign, line=3))
        fin = cfg.block_index(_stmt(func, ast.Expr, line=5))
        assert cfg.postdominates(fin, risky)

    def test_conditional_release_does_not_postdominate(self):
        cfg, func = _cfg(
            """
            def f(x):
                y = g(x)
                if x:
                    cleanup()
                return y
            """
        )
        acquire = cfg.block_index(_stmt(func, ast.Assign, line=2))
        release = cfg.block_index(_stmt(func, ast.Expr, line=4))
        assert not cfg.postdominates(release, acquire)


class TestReachesExitAvoiding:
    def test_leak_path_found_without_finally(self):
        cfg, func = _cfg(
            """
            def f(path):
                handle = acquire(path)
                use(handle)
                release(handle)
                return None
            """
        )
        acquire = cfg.block_index(_stmt(func, ast.Assign, line=2))
        release = cfg.block_index(_stmt(func, ast.Expr, line=4))
        (succ,) = cfg.blocks[acquire].succs
        # use(handle) may raise before release runs: a leak path exists.
        assert cfg.reaches_exit_avoiding(succ, {release})

    def test_no_leak_path_with_try_finally(self):
        cfg, func = _cfg(
            """
            def f(path):
                handle = acquire(path)
                try:
                    use(handle)
                finally:
                    release(handle)
                return None
            """
        )
        acquire = cfg.block_index(_stmt(func, ast.Assign, line=2))
        release = cfg.block_index(_stmt(func, ast.Expr, line=6))
        assert all(
            succ == release or not cfg.reaches_exit_avoiding(succ, {release})
            for succ in cfg.blocks[acquire].succs
        )

    def test_early_return_inside_try_still_crosses_finally(self):
        cfg, func = _cfg(
            """
            def f(path):
                handle = acquire(path)
                try:
                    if quick(path):
                        return handle
                    use(handle)
                finally:
                    release(handle)
                return None
            """
        )
        acquire = cfg.block_index(_stmt(func, ast.Assign, line=2))
        release = cfg.block_index(_stmt(func, ast.Expr, line=8))
        assert all(
            succ == release or not cfg.reaches_exit_avoiding(succ, {release})
            for succ in cfg.blocks[acquire].succs
        )
