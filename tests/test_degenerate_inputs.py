"""Failure injection: degenerate datasets through every pipeline.

Duplicated points, constant attributes, single points, and exact grids
are the classic ways numeric code divides by zero; every public
algorithm must either handle them or refuse loudly.
"""

import numpy as np
import pytest

from repro.baselines import GridBiasedSampler
from repro.clustering import (
    AgglomerativeClustering,
    Birch,
    Clarans,
    CureClustering,
    KMeans,
    KMedoids,
)
from repro.core import DensityBiasedSampler, UniformSampler
from repro.density import (
    DctDensityEstimator,
    GridDensityEstimator,
    KernelDensityEstimator,
    KnnDensityEstimator,
    WaveletDensityEstimator,
)
from repro.outliers import (
    ApproximateOutlierDetector,
    CellBasedOutlierDetector,
    IndexedOutlierDetector,
    NestedLoopOutlierDetector,
)

ALL_IDENTICAL = np.full((200, 2), 3.7)
CONSTANT_COLUMN = np.column_stack(
    [np.linspace(0, 1, 200), np.full(200, 5.0)]
)
SINGLE_POINT = np.array([[1.0, 2.0]])
EXACT_GRID = np.array(
    [[float(i), float(j)] for i in range(10) for j in range(10)]
)

DATASETS = {
    "identical": ALL_IDENTICAL,
    "constant_column": CONSTANT_COLUMN,
    "grid": EXACT_GRID,
}


@pytest.mark.parametrize("name,data", DATASETS.items())
class TestEstimatorsOnDegenerateData:
    @pytest.mark.parametrize(
        "estimator_factory",
        [
            lambda: KernelDensityEstimator(n_kernels=32, random_state=0),
            lambda: GridDensityEstimator(bins_per_dim=4),
            lambda: KnnDensityEstimator(n_sample=50, k=3, random_state=0),
            lambda: WaveletDensityEstimator(bins_per_dim=4,
                                            n_coefficients=8),
            lambda: DctDensityEstimator(bins_per_dim=4, n_coefficients=8),
        ],
        ids=["kde", "grid", "knn", "wavelet", "dct"],
    )
    def test_fit_and_evaluate_finite(self, name, data, estimator_factory):
        estimator = estimator_factory().fit(data)
        values = estimator.evaluate(data[:10])
        assert np.isfinite(values).all()
        assert (values >= 0).all()


@pytest.mark.parametrize("name,data", DATASETS.items())
class TestSamplersOnDegenerateData:
    @pytest.mark.parametrize("exponent", [1.0, 0.0, -0.5])
    def test_biased_sampler_survives(self, name, data, exponent):
        sample = DensityBiasedSampler(
            sample_size=20, exponent=exponent, random_state=0,
            estimator=KernelDensityEstimator(n_kernels=16, random_state=0),
        ).sample(data)
        assert len(sample) <= data.shape[0]
        assert np.isfinite(sample.probabilities).all()

    def test_grid_sampler_survives(self, name, data):
        sample = GridBiasedSampler(
            sample_size=20, exponent=-0.5, random_state=0
        ).sample(data)
        assert np.isfinite(sample.probabilities).all()

    def test_uniform_sampler_survives(self, name, data):
        assert len(UniformSampler(20, random_state=0).sample(data)) >= 0


class TestClusterersOnDegenerateData:
    @pytest.mark.parametrize(
        "clusterer_factory",
        [
            lambda: KMeans(n_clusters=2, random_state=0),
            lambda: KMedoids(n_clusters=2),
            lambda: Clarans(n_clusters=2, random_state=0),
            lambda: AgglomerativeClustering(n_clusters=2),
            lambda: CureClustering(n_clusters=2, remove_outliers=False),
            lambda: Birch(n_clusters=2),
        ],
        ids=["kmeans", "kmedoids", "clarans", "agglo", "cure", "birch"],
    )
    def test_identical_points_form_clusters(self, clusterer_factory):
        result = clusterer_factory().fit(ALL_IDENTICAL[:40])
        assert result.labels.shape == (40,)
        assert np.isfinite(result.centers).all()

    def test_single_point_kmeans(self):
        result = KMeans(n_clusters=1, random_state=0).fit(SINGLE_POINT)
        np.testing.assert_array_equal(result.centers, SINGLE_POINT)

    def test_constant_column_cure(self):
        result = CureClustering(
            n_clusters=2, remove_outliers=False
        ).fit(CONSTANT_COLUMN)
        assert result.n_clusters == 2


class TestOutliersOnDegenerateData:
    @pytest.mark.parametrize(
        "detector_factory",
        [
            lambda: NestedLoopOutlierDetector(k=0.5, p=0),
            lambda: IndexedOutlierDetector(k=0.5, p=0),
            lambda: CellBasedOutlierDetector(k=0.5, p=0),
        ],
        ids=["nested", "indexed", "cell"],
    )
    def test_identical_points_have_no_outliers(self, detector_factory):
        result = detector_factory().detect(ALL_IDENTICAL)
        assert len(result) == 0

    def test_approximate_on_identical_points(self):
        result = ApproximateOutlierDetector(
            k=0.5, p=0, random_state=0
        ).detect(ALL_IDENTICAL)
        assert len(result) == 0

    def test_single_point_is_outlier(self):
        result = IndexedOutlierDetector(k=1.0, p=0).detect(SINGLE_POINT)
        assert result.indices.tolist() == [0]


class TestMiningOnDegenerateData:
    def test_tree_on_constant_features(self):
        from repro.mining import DecisionTreeClassifier

        x = np.full((50, 2), 1.0)
        y = np.array([0] * 25 + [1] * 25)
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        # No split possible: majority leaf.
        assert tree.n_nodes_ == 1

    def test_apriori_on_empty_transactions(self):
        from repro.mining import TransactionDataset, apriori

        data = TransactionDataset(
            matrix=np.zeros((10, 5), dtype=bool), patterns=[]
        )
        assert apriori(data, min_support=0.1) == {}
