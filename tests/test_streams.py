"""Tests for repro.utils.streams (dataset-pass discipline)."""

import numpy as np
import pytest

from repro.utils.streams import DataStream, PassCounter, as_stream


class TestDataStream:
    def test_chunks_cover_data_in_order(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        stream = DataStream(data, chunk_size=3)
        rebuilt = np.vstack(list(stream))
        np.testing.assert_array_equal(rebuilt, data)

    def test_last_chunk_may_be_short(self):
        stream = DataStream(np.zeros((10, 1)), chunk_size=4)
        sizes = [chunk.shape[0] for chunk in stream]
        assert sizes == [4, 4, 2]

    def test_pass_counting(self):
        stream = DataStream(np.zeros((5, 1)))
        assert stream.passes == 0
        list(stream)
        list(stream)
        assert stream.passes == 2

    def test_iter_with_offsets(self):
        data = np.arange(10, dtype=float).reshape(5, 2)
        stream = DataStream(data, chunk_size=2)
        offsets = [off for off, _ in stream.iter_with_offsets()]
        assert offsets == [0, 2, 4]
        assert stream.passes == 1

    def test_materialize_counts_as_pass(self):
        stream = DataStream(np.zeros((5, 1)))
        stream.materialize()
        assert stream.passes == 1

    def test_len_and_dims(self):
        stream = DataStream(np.zeros((7, 3)))
        assert len(stream) == 7
        assert stream.n_dims == 3

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            DataStream(np.zeros((3, 1)), chunk_size=0)


class TestPassCounter:
    def test_counts_passes_in_block(self):
        stream = DataStream(np.zeros((4, 1)))
        list(stream)  # pass outside the counter
        with PassCounter(stream) as counter:
            list(stream)
            list(stream)
        assert counter.passes == 2


class TestAsStream:
    def test_wraps_arrays(self):
        stream = as_stream([[1.0], [2.0]])
        assert isinstance(stream, DataStream)

    def test_passthrough_for_streams(self):
        stream = DataStream(np.zeros((3, 1)))
        assert as_stream(stream) is stream
