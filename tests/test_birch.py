"""Tests for BIRCH and the CF-tree."""

import numpy as np
import pytest

from repro.clustering import Birch
from repro.clustering.birch import CFEntry, CFTree
from repro.exceptions import ParameterError


class TestCFEntry:
    def test_from_point(self):
        entry = CFEntry.from_point(np.array([1.0, 2.0]))
        assert entry.n == 1
        np.testing.assert_array_equal(entry.centroid, [1.0, 2.0])
        assert entry.radius == 0.0

    def test_absorb_updates_statistics(self):
        a = CFEntry.from_point(np.array([0.0, 0.0]))
        b = CFEntry.from_point(np.array([2.0, 0.0]))
        a.absorb(b)
        assert a.n == 2
        np.testing.assert_array_equal(a.centroid, [1.0, 0.0])
        assert a.radius == pytest.approx(1.0)

    def test_merged_radius_predicts_absorb(self):
        a = CFEntry.from_point(np.array([0.0, 0.0]))
        b = CFEntry.from_point(np.array([2.0, 0.0]))
        predicted = a.merged_radius(b)
        a.absorb(b)
        assert predicted == pytest.approx(a.radius)

    def test_radius_never_negative(self):
        entry = CFEntry(3.0, np.array([3.0, 3.0]), 6.0000000001)
        assert entry.radius >= 0.0


class TestCFTree:
    def test_absorbs_within_threshold(self):
        tree = CFTree(threshold=1.0, branching_factor=4)
        tree.insert(CFEntry.from_point(np.array([0.0, 0.0])))
        tree.insert(CFEntry.from_point(np.array([0.1, 0.0])))
        assert tree.n_leaf_entries == 1

    def test_separates_beyond_threshold(self):
        tree = CFTree(threshold=0.01, branching_factor=4)
        tree.insert(CFEntry.from_point(np.array([0.0, 0.0])))
        tree.insert(CFEntry.from_point(np.array([5.0, 0.0])))
        assert tree.n_leaf_entries == 2

    def test_splits_preserve_entries(self):
        rng = np.random.default_rng(0)
        tree = CFTree(threshold=0.0, branching_factor=3)
        pts = rng.random((50, 2))
        for row in pts:
            tree.insert(CFEntry.from_point(row))
        leaves = tree.leaf_entries()
        assert sum(e.n for e in leaves) == 50
        assert tree.n_leaf_entries == 50

    def test_total_cf_conserved(self):
        rng = np.random.default_rng(1)
        pts = rng.random((200, 3))
        tree = CFTree(threshold=0.05, branching_factor=5)
        for row in pts:
            tree.insert(CFEntry.from_point(row))
        leaves = tree.leaf_entries()
        np.testing.assert_allclose(
            np.sum([e.ls for e in leaves], axis=0), pts.sum(axis=0)
        )
        assert sum(e.n for e in leaves) == 200
        assert sum(e.ss for e in leaves) == pytest.approx(
            (pts**2).sum()
        )


class TestBirch:
    @pytest.fixture
    def blobs(self):
        rng = np.random.default_rng(2)
        return np.vstack(
            [rng.normal(c, 0.08, size=(300, 2))
             for c in ((0, 0), (3, 0), (0, 3))]
        )

    def test_recovers_blobs(self, blobs):
        result = Birch(n_clusters=3, max_leaf_entries=100).fit(blobs)
        assert sorted(result.sizes.tolist()) == [300, 300, 300]

    def test_memory_budget_respected(self, blobs):
        model = Birch(n_clusters=3, max_leaf_entries=40)
        model.fit(blobs)
        assert model.n_leaf_entries_ <= 40
        assert model.n_rebuilds_ >= 1

    def test_threshold_grows_on_rebuild(self, blobs):
        model = Birch(n_clusters=3, threshold=0.0, max_leaf_entries=40)
        model.fit(blobs)
        assert model.final_threshold_ > 0.0

    def test_labels_cover_input(self, blobs):
        result = Birch(n_clusters=3, max_leaf_entries=60).fit(blobs)
        assert result.labels.shape == (900,)
        assert (result.labels >= 0).all()

    def test_sizes_are_cf_counts(self, blobs):
        result = Birch(n_clusters=3, max_leaf_entries=60).fit(blobs)
        assert result.sizes.sum() == 900

    def test_no_budget_keeps_initial_threshold(self, blobs):
        model = Birch(n_clusters=3, threshold=0.2)
        model.fit(blobs)
        assert model.final_threshold_ == 0.2
        assert model.n_rebuilds_ == 0

    def test_fewer_points_than_clusters(self):
        result = Birch(n_clusters=10).fit(np.random.default_rng(0).random((4, 2)))
        assert result.n_clusters <= 4

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            Birch(n_clusters=0)
        with pytest.raises(ParameterError):
            Birch(branching_factor=1)
        with pytest.raises(ParameterError):
            Birch(threshold=-0.1)
        with pytest.raises(ParameterError):
            Birch(max_leaf_entries=1)

    def test_rejects_sample_weight(self, blobs):
        with pytest.raises(ParameterError, match="sample_weight"):
            Birch(n_clusters=2).fit(blobs, sample_weight=np.ones(900))

    def test_outlier_entry_discard_ignores_scatter(self):
        """Sparse leaf entries (noise) are excluded from the global
        phase, so scattered points cannot drag centers off the blobs."""
        rng = np.random.default_rng(7)
        blobs = np.vstack(
            [rng.normal(c, 0.05, (400, 2)) for c in ((0, 0), (3, 3))]
        )
        noise = rng.uniform(-1, 4, size=(200, 2))
        pts = np.vstack([blobs, noise])
        with_discard = Birch(
            n_clusters=2, max_leaf_entries=60, outlier_entry_fraction=1.0
        ).fit(pts)
        for target in ((0.0, 0.0), (3.0, 3.0)):
            nearest = np.linalg.norm(
                with_discard.centers - np.array(target), axis=1
            ).min()
            assert nearest < 0.4

    def test_discard_disabled_keeps_all_entries(self):
        rng = np.random.default_rng(8)
        pts = rng.normal(0, 1, size=(300, 2))
        model = Birch(
            n_clusters=3, max_leaf_entries=50, outlier_entry_fraction=0.0
        )
        result = model.fit(pts)
        assert result.n_clusters == 3

    def test_discard_never_leaves_too_few_entries(self):
        """One giant entry plus dust: the guard keeps >= n_clusters.

        The threshold is small enough that the far singletons stay
        separate entries (a large absorbing entry's RMS radius would
        otherwise swallow them); the below-average discard would leave
        only the giant entry without the guard.
        """
        pts = np.vstack(
            [
                np.random.default_rng(9).normal(0, 0.001, (500, 2)),
                [[5.0, 5.0]],
                [[9.0, 9.0]],
            ]
        )
        model = Birch(n_clusters=3, threshold=0.05)
        result = model.fit(pts)
        assert model.n_leaf_entries_ == 3
        assert result.n_clusters == 3

    def test_rejects_negative_discard_fraction(self):
        with pytest.raises(ParameterError):
            Birch(outlier_entry_fraction=-0.5)

    def test_insensitive_to_input_order(self, blobs):
        """Shuffled input must produce the same global centers up to
        tolerance (CF summarisation is order-dependent in the tree but
        the global phase should land on the same blobs)."""
        rng = np.random.default_rng(3)
        shuffled = blobs[rng.permutation(blobs.shape[0])]
        a = Birch(n_clusters=3, max_leaf_entries=100).fit(blobs)
        b = Birch(n_clusters=3, max_leaf_entries=100).fit(shuffled)
        for center in a.centers:
            nearest = np.linalg.norm(b.centers - center, axis=1).min()
            assert nearest < 0.3
