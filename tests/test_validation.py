"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError, ParameterError
from repro.utils.validation import (
    check_array,
    check_fraction,
    check_positive,
    check_random_state,
)


class TestCheckArray:
    def test_accepts_2d_list(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_returns_contiguous(self):
        arr = check_array(np.arange(12).reshape(3, 4)[:, ::2])
        assert arr.flags["C_CONTIGUOUS"]

    def test_rejects_1d_by_default(self):
        with pytest.raises(DataValidationError, match="reshape"):
            check_array([1.0, 2.0])

    def test_allow_1d_reshapes_to_column(self):
        arr = check_array([1.0, 2.0], allow_1d=True)
        assert arr.shape == (2, 1)

    def test_rejects_3d(self):
        with pytest.raises(DataValidationError, match="2-dimensional"):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError, match="at least 1"):
            check_array(np.empty((0, 3)))

    def test_min_rows_enforced(self):
        with pytest.raises(DataValidationError, match="at least 5"):
            check_array(np.zeros((3, 2)), min_rows=5)

    def test_rejects_nan(self):
        with pytest.raises(DataValidationError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(DataValidationError, match="NaN or infinite"):
            check_array([[np.inf, 0.0]])

    def test_rejects_zero_columns(self):
        with pytest.raises(DataValidationError, match="column"):
            check_array(np.empty((3, 0)))

    def test_name_appears_in_error(self):
        with pytest.raises(DataValidationError, match="mydata"):
            check_array(np.zeros((2, 2, 2)), name="mydata")


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_legacy_randomstate_wrapped(self):
        legacy = np.random.RandomState(0)
        assert isinstance(check_random_state(legacy), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(ParameterError, match="random_state"):
            check_random_state("seed")


class TestScalarChecks:
    def test_positive_accepts_floats_and_ints(self):
        assert check_positive(2, name="x") == 2.0
        assert check_positive(0.5, name="x") == 0.5

    def test_positive_rejects_zero_when_strict(self):
        with pytest.raises(ParameterError, match="> 0"):
            check_positive(0, name="x")

    def test_positive_non_strict_allows_zero(self):
        assert check_positive(0, name="x", strict=False) == 0.0

    def test_positive_rejects_bool(self):
        with pytest.raises(ParameterError):
            check_positive(True, name="x")

    def test_fraction_bounds(self):
        assert check_fraction(0.0, name="f") == 0.0
        assert check_fraction(1.0, name="f") == 1.0
        with pytest.raises(ParameterError, match=r"\[0, 1\]"):
            check_fraction(1.5, name="f")

    def test_fraction_exclusive(self):
        with pytest.raises(ParameterError, match=r"\(0, 1\)"):
            check_fraction(0.0, name="f", inclusive=False)
