"""Tests for the k-NN density estimator."""

import numpy as np
import pytest

from repro.density import KnnDensityEstimator
from repro.exceptions import NotFittedError, ParameterError
from repro.utils.streams import DataStream


class TestFitting:
    def test_one_pass(self):
        stream = DataStream(np.random.default_rng(0).random((500, 2)))
        KnnDensityEstimator(n_sample=100, k=5, random_state=0).fit(
            stream=stream
        )
        assert stream.passes == 1

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            KnnDensityEstimator().evaluate([[0.0, 0.0]])

    def test_k_must_fit_sample(self):
        with pytest.raises(ParameterError, match="k must be"):
            KnnDensityEstimator(n_sample=10, k=20)

    def test_small_data_caps_sample(self):
        est = KnnDensityEstimator(n_sample=100, k=3, random_state=0)
        est.fit(np.random.default_rng(0).random((20, 2)))
        assert est.sample_size_ == 20


class TestEvaluation:
    def test_dense_beats_sparse(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(0.0, 0.05, size=(4000, 2))
        sparse = rng.normal(3.0, 0.8, size=(1000, 2))
        est = KnnDensityEstimator(n_sample=500, k=10, random_state=0).fit(
            np.vstack([dense, sparse])
        )
        assert est.evaluate([[0.0, 0.0]])[0] > est.evaluate([[3.0, 3.0]])[0]

    def test_uniform_density_magnitude(self):
        rng = np.random.default_rng(2)
        data = rng.random((20_000, 2))
        est = KnnDensityEstimator(n_sample=2000, k=20, random_state=0).fit(
            data
        )
        f = est.evaluate([[0.5, 0.5]])[0]
        assert f == pytest.approx(20_000, rel=0.5)

    def test_duplicate_points_do_not_blow_up(self):
        data = np.vstack(
            [np.zeros((50, 2)), np.random.default_rng(0).random((50, 2))]
        )
        est = KnnDensityEstimator(n_sample=100, k=5, random_state=0).fit(data)
        f = est.evaluate([[0.0, 0.0]])
        assert np.isfinite(f).all()

    def test_positive_everywhere(self):
        """k-NN density is adaptive: never exactly zero."""
        data = np.random.default_rng(3).random((200, 2))
        est = KnnDensityEstimator(n_sample=100, k=5, random_state=0).fit(data)
        assert est.evaluate([[100.0, 100.0]])[0] > 0
