"""Execute the documentation examples embedded in the library.

Every public docstring example is a tiny contract; this module runs
them all so the docs cannot drift from the code.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

# Discover every repro submodule once at collection time.
_MODULES = sorted(
    name
    for _, name, __ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    # __main__ executes the CLI on import; it has no doctests.
    if name != "repro.__main__"
)


@pytest.mark.parametrize("module_name", _MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s)"


def test_discovery_found_the_library():
    assert "repro.core.biased" in _MODULES
    assert len(_MODULES) > 30
