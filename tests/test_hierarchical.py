"""Tests for generic agglomerative clustering (Lance-Williams)."""

import numpy as np
import pytest

from repro.clustering import AgglomerativeClustering
from repro.exceptions import ParameterError

LINKAGES = ("single", "complete", "average", "centroid")


@pytest.fixture
def blobs():
    rng = np.random.default_rng(1)
    return np.vstack(
        [rng.normal(c, 0.05, size=(30, 2)) for c in ((0, 0), (2, 0), (0, 2))]
    )


@pytest.mark.parametrize("linkage", LINKAGES)
class TestAllLinkages:
    def test_recovers_well_separated_blobs(self, blobs, linkage):
        result = AgglomerativeClustering(n_clusters=3, linkage=linkage).fit(
            blobs
        )
        assert sorted(result.sizes.tolist()) == [30, 30, 30]

    def test_labels_consistent_with_members(self, blobs, linkage):
        result = AgglomerativeClustering(n_clusters=3, linkage=linkage).fit(
            blobs
        )
        for cluster in range(3):
            members = result.cluster_members(cluster)
            assert (result.labels[members] == cluster).all()

    def test_n_clusters_respected(self, blobs, linkage):
        for k in (1, 2, 5):
            result = AgglomerativeClustering(n_clusters=k, linkage=linkage).fit(
                blobs
            )
            assert result.n_clusters == k


class TestSpecificBehaviours:
    def test_single_linkage_chains(self):
        """Single linkage follows a chain of stepping stones; complete
        linkage refuses the long thin cluster."""
        chain = np.column_stack([np.arange(10) * 1.0, np.zeros(10)])
        far = np.array([[100.0, 0.0], [101.0, 0.0]])
        pts = np.vstack([chain, far])
        single = AgglomerativeClustering(n_clusters=2, linkage="single").fit(
            pts
        )
        assert sorted(single.sizes.tolist()) == [2, 10]

    def test_centroid_weighted_merge(self):
        """Weights act as point masses for centroid linkage."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        result = AgglomerativeClustering(
            n_clusters=1, linkage="centroid"
        ).fit(pts, sample_weight=np.array([3.0, 1.0, 1.0]))
        assert result.centers[0, 0] == pytest.approx((0 * 3 + 1 + 10) / 5)

    def test_distance_threshold_stops_early(self, blobs):
        result = AgglomerativeClustering(
            n_clusters=1, linkage="single", distance_threshold=0.5
        ).fit(blobs)
        # Blobs are ~2 apart: merging must stop at the three blobs.
        assert result.n_clusters == 3

    def test_more_clusters_than_points(self):
        pts = np.zeros((3, 2))
        result = AgglomerativeClustering(n_clusters=10).fit(pts)
        assert result.n_clusters == 3

    def test_rejects_unknown_linkage(self):
        with pytest.raises(ParameterError, match="linkage"):
            AgglomerativeClustering(linkage="ward-ish")

    def test_rejects_bad_weights(self):
        with pytest.raises(ParameterError, match="sample_weight"):
            AgglomerativeClustering(n_clusters=1).fit(
                np.zeros((4, 2)), sample_weight=np.ones(2)
            )

    def test_average_between_single_and_complete(self):
        """On any data: single merge distance <= average <= complete, so
        with a shared threshold, cluster counts are ordered."""
        rng = np.random.default_rng(5)
        pts = rng.random((60, 2))
        counts = {}
        for linkage in ("single", "average", "complete"):
            result = AgglomerativeClustering(
                n_clusters=1, linkage=linkage, distance_threshold=0.15
            ).fit(pts)
            counts[linkage] = result.n_clusters
        assert counts["single"] <= counts["average"] <= counts["complete"]
