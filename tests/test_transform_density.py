"""Tests for the wavelet- and DCT-compressed histogram estimators."""

import numpy as np
import pytest

from repro.density import DctDensityEstimator, WaveletDensityEstimator
from repro.density.wavelet import haar_forward, haar_inverse
from repro.exceptions import NotFittedError, ParameterError


class TestHaarTransform:
    def test_roundtrip_1d(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=16)
        np.testing.assert_allclose(
            haar_inverse(haar_forward(values)), values, atol=1e-10
        )

    def test_roundtrip_2d(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(8, 16))
        np.testing.assert_allclose(
            haar_inverse(haar_forward(values)), values, atol=1e-10
        )

    def test_roundtrip_3d(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(4, 4, 8))
        np.testing.assert_allclose(
            haar_inverse(haar_forward(values)), values, atol=1e-10
        )

    def test_orthonormal(self):
        """Energy (L2 norm) is preserved by the transform."""
        rng = np.random.default_rng(3)
        values = rng.normal(size=(16, 16))
        coeffs = haar_forward(values)
        assert np.linalg.norm(coeffs) == pytest.approx(
            np.linalg.norm(values)
        )

    def test_constant_signal_compresses_to_one_coefficient(self):
        coeffs = haar_forward(np.ones(32))
        assert (np.abs(coeffs) > 1e-12).sum() == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ParameterError, match="power-of-two"):
            haar_forward(np.ones(12))


@pytest.mark.parametrize(
    "estimator_cls", [WaveletDensityEstimator, DctDensityEstimator]
)
class TestTransformEstimators:
    def test_dense_beats_sparse(self, estimator_cls):
        rng = np.random.default_rng(0)
        dense = rng.normal((0.25, 0.25), 0.03, size=(5000, 2))
        sparse = rng.uniform(0.5, 1.0, size=(500, 2))
        est = estimator_cls(bins_per_dim=16, n_coefficients=200).fit(
            np.vstack([dense, sparse])
        )
        assert est.evaluate([[0.25, 0.25]])[0] > est.evaluate([[0.75, 0.75]])[0]

    def test_full_coefficients_match_histogram(self, estimator_cls):
        """With every coefficient kept, the reconstruction equals the
        raw histogram — compare against GridDensityEstimator."""
        from repro.density import GridDensityEstimator

        rng = np.random.default_rng(1)
        data = rng.random((2000, 2))
        est = estimator_cls(bins_per_dim=8, n_coefficients=64).fit(data)
        grid = GridDensityEstimator(bins_per_dim=8).fit(data)
        queries = rng.random((50, 2))
        np.testing.assert_allclose(
            est.evaluate(queries), grid.evaluate(queries), rtol=1e-6
        )

    def test_truncation_reduces_stored_coefficients(self, estimator_cls):
        rng = np.random.default_rng(2)
        data = rng.random((3000, 2))
        est = estimator_cls(bins_per_dim=16, n_coefficients=20).fit(data)
        assert est.n_kept_ <= 20

    def test_non_negative_output(self, estimator_cls):
        rng = np.random.default_rng(3)
        data = rng.normal(0.5, 0.1, size=(2000, 2))
        est = estimator_cls(bins_per_dim=16, n_coefficients=30).fit(data)
        queries = rng.random((200, 2))
        assert (est.evaluate(queries) >= 0).all()

    def test_unfitted_raises(self, estimator_cls):
        with pytest.raises(NotFittedError):
            estimator_cls().evaluate([[0.5, 0.5]])

    def test_works_as_sampler_backend(self, estimator_cls):
        from repro.core import DensityBiasedSampler

        rng = np.random.default_rng(4)
        dense = rng.normal((0.2, 0.2), 0.02, size=(4000, 2))
        sparse = rng.uniform(0.5, 1.0, size=(4000, 2))
        data = np.vstack([dense, sparse])
        sample = DensityBiasedSampler(
            sample_size=400,
            exponent=1.0,
            estimator=estimator_cls(bins_per_dim=16, n_coefficients=150),
            random_state=0,
        ).sample(data)
        assert (sample.indices < 4000).mean() > 0.7

    def test_rejects_bad_params(self, estimator_cls):
        with pytest.raises(ParameterError):
            estimator_cls(bins_per_dim=1)
        with pytest.raises(ParameterError):
            estimator_cls(n_coefficients=0)


class TestWaveletSpecific:
    def test_rejects_non_power_of_two_bins(self):
        with pytest.raises(ParameterError, match="power of two"):
            WaveletDensityEstimator(bins_per_dim=12)

    def test_grid_size_guard(self):
        est = WaveletDensityEstimator(bins_per_dim=256)
        with pytest.raises(ParameterError, match="too large"):
            est.fit(np.random.default_rng(0).random((10, 4)))
