"""Tests for file-backed data streams."""

import os
import tempfile

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.utils import CsvFileStream, NpyFileStream


@pytest.fixture
def array():
    return np.random.default_rng(0).normal(size=(257, 3))


@pytest.fixture
def npy_path(array, tmp_path):
    path = os.path.join(tmp_path, "data.npy")
    np.save(path, array)
    return path


@pytest.fixture
def csv_path(array, tmp_path):
    path = os.path.join(tmp_path, "data.csv")
    np.savetxt(path, array, delimiter=",")
    return path


class TestNpyFileStream:
    def test_metadata(self, npy_path, array):
        stream = NpyFileStream(npy_path, chunk_size=100)
        assert len(stream) == 257
        assert stream.n_dims == 3

    def test_chunks_reconstruct(self, npy_path, array):
        stream = NpyFileStream(npy_path, chunk_size=100)
        rebuilt = np.vstack(list(stream))
        np.testing.assert_allclose(rebuilt, array)
        assert stream.passes == 1

    def test_offsets(self, npy_path):
        stream = NpyFileStream(npy_path, chunk_size=100)
        offsets = [off for off, _ in stream.iter_with_offsets()]
        assert offsets == [0, 100, 200]

    def test_materialize(self, npy_path, array):
        stream = NpyFileStream(npy_path)
        np.testing.assert_allclose(stream.materialize(), array)

    def test_missing_file(self):
        with pytest.raises(DataValidationError):
            NpyFileStream("/nonexistent.npy")

    def test_rejects_1d(self, tmp_path):
        path = os.path.join(tmp_path, "flat.npy")
        np.save(path, np.arange(5))
        with pytest.raises(DataValidationError, match="2-D"):
            NpyFileStream(path)

    def test_feeds_estimator(self, npy_path):
        from repro.density import KernelDensityEstimator

        stream = NpyFileStream(npy_path, chunk_size=64)
        kde = KernelDensityEstimator(n_kernels=32, random_state=0)
        kde.fit(stream=stream)
        assert stream.passes == 1
        assert kde.n_points_ == 257


class TestCsvFileStream:
    def test_metadata(self, csv_path):
        stream = CsvFileStream(csv_path, chunk_size=100)
        assert len(stream) == 257
        assert stream.n_dims == 3

    def test_chunks_reconstruct(self, csv_path, array):
        stream = CsvFileStream(csv_path, chunk_size=100)
        rebuilt = np.vstack(list(stream))
        np.testing.assert_allclose(rebuilt, array, rtol=1e-6)

    def test_offsets(self, csv_path):
        stream = CsvFileStream(csv_path, chunk_size=128)
        offsets = [off for off, _ in stream.iter_with_offsets()]
        assert offsets == [0, 128, 256]

    def test_blank_lines_skipped(self, tmp_path):
        path = os.path.join(tmp_path, "gappy.csv")
        with open(path, "w") as handle:
            handle.write("1.0,2.0\n\n3.0,4.0\n")
        stream = CsvFileStream(path)
        assert len(stream) == 2

    def test_ragged_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "ragged.csv")
        with open(path, "w") as handle:
            handle.write("1.0,2.0\n3.0\n")
        with pytest.raises(DataValidationError, match="ragged"):
            CsvFileStream(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "text.csv")
        with open(path, "w") as handle:
            handle.write("1.0,abc\n")
        stream = CsvFileStream(path)
        with pytest.raises(DataValidationError, match="non-numeric"):
            list(stream)

    def test_empty_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "empty.csv")
        open(path, "w").close()
        with pytest.raises(DataValidationError, match="no data"):
            CsvFileStream(path)

    def test_end_to_end_sampling(self, csv_path):
        """The biased sampler runs out-of-core over a CSV file."""
        from repro.core import DensityBiasedSampler

        stream = CsvFileStream(csv_path, chunk_size=64)
        sample = DensityBiasedSampler(
            sample_size=50, exponent=1.0, random_state=0
        ).sample(None, stream=stream)
        assert 10 <= len(sample) <= 120
        assert stream.passes == 3
