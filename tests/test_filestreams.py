"""Tests for file-backed data streams."""

import os

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.faults import RowQuarantine, use_fault_policy
from repro.utils import CsvFileStream, NpyFileStream


@pytest.fixture
def array():
    return np.random.default_rng(0).normal(size=(257, 3))


@pytest.fixture
def npy_path(array, tmp_path):
    path = os.path.join(tmp_path, "data.npy")
    np.save(path, array)
    return path


@pytest.fixture
def csv_path(array, tmp_path):
    path = os.path.join(tmp_path, "data.csv")
    np.savetxt(path, array, delimiter=",")
    return path


class TestNpyFileStream:
    def test_metadata(self, npy_path, array):
        stream = NpyFileStream(npy_path, chunk_size=100)
        assert len(stream) == 257
        assert stream.n_dims == 3

    def test_chunks_reconstruct(self, npy_path, array):
        stream = NpyFileStream(npy_path, chunk_size=100)
        rebuilt = np.vstack(list(stream))
        np.testing.assert_allclose(rebuilt, array)
        assert stream.passes == 1

    def test_offsets(self, npy_path):
        stream = NpyFileStream(npy_path, chunk_size=100)
        offsets = [off for off, _ in stream.iter_with_offsets()]
        assert offsets == [0, 100, 200]

    def test_materialize(self, npy_path, array):
        stream = NpyFileStream(npy_path)
        np.testing.assert_allclose(stream.materialize(), array)

    def test_missing_file(self):
        with pytest.raises(DataValidationError):
            NpyFileStream("/nonexistent.npy")

    def test_rejects_1d(self, tmp_path):
        path = os.path.join(tmp_path, "flat.npy")
        np.save(path, np.arange(5))
        with pytest.raises(DataValidationError, match="2-D"):
            NpyFileStream(path)

    def test_feeds_estimator(self, npy_path):
        from repro.density import KernelDensityEstimator

        stream = NpyFileStream(npy_path, chunk_size=64)
        kde = KernelDensityEstimator(n_kernels=32, random_state=0)
        kde.fit(stream=stream)
        assert stream.passes == 1
        assert kde.n_points_ == 257


class TestCsvFileStream:
    def test_metadata(self, csv_path):
        stream = CsvFileStream(csv_path, chunk_size=100)
        assert len(stream) == 257
        assert stream.n_dims == 3

    def test_chunks_reconstruct(self, csv_path, array):
        stream = CsvFileStream(csv_path, chunk_size=100)
        rebuilt = np.vstack(list(stream))
        np.testing.assert_allclose(rebuilt, array, rtol=1e-6)

    def test_offsets(self, csv_path):
        stream = CsvFileStream(csv_path, chunk_size=128)
        offsets = [off for off, _ in stream.iter_with_offsets()]
        assert offsets == [0, 128, 256]

    def test_blank_lines_skipped(self, tmp_path):
        path = os.path.join(tmp_path, "gappy.csv")
        with open(path, "w") as handle:
            handle.write("1.0,2.0\n\n3.0,4.0\n")
        stream = CsvFileStream(path)
        assert len(stream) == 2

    def test_ragged_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "ragged.csv")
        with open(path, "w") as handle:
            handle.write("1.0,2.0\n3.0\n")
        with pytest.raises(DataValidationError, match="ragged"):
            CsvFileStream(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "text.csv")
        with open(path, "w") as handle:
            handle.write("1.0,abc\n")
        stream = CsvFileStream(path)
        with pytest.raises(DataValidationError, match="non-numeric"):
            list(stream)

    def test_empty_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "empty.csv")
        open(path, "w").close()
        with pytest.raises(DataValidationError, match="no data"):
            CsvFileStream(path)

    def test_end_to_end_sampling(self, csv_path):
        """The biased sampler runs out-of-core over a CSV file."""
        from repro.core import DensityBiasedSampler

        stream = CsvFileStream(csv_path, chunk_size=64)
        sample = DensityBiasedSampler(
            sample_size=50, exponent=1.0, random_state=0
        ).sample(None, stream=stream)
        assert 10 <= len(sample) <= 120
        assert stream.passes == 3


@pytest.fixture
def dirty_npy_path(array, tmp_path):
    """A crafted .npy whose on-disk rows contain NaN and Inf."""
    dirty = array.copy()
    dirty[5] = np.nan
    dirty[123, 1] = np.inf
    dirty[200, 0] = -np.inf
    path = os.path.join(tmp_path, "dirty.npy")
    np.save(path, dirty)
    return path


class TestFileStreamHardening:
    """Regression: on-disk NaN/Inf rows used to bypass stream validation
    and reach the samplers unchecked; file streams now route every chunk
    through the same RowQuarantine policy as the in-memory stream."""

    def test_npy_nan_raises_under_default_strict(self, dirty_npy_path):
        stream = NpyFileStream(dirty_npy_path, chunk_size=100)
        with pytest.raises(DataValidationError) as excinfo:
            list(stream)
        message = str(excinfo.value)
        assert "pass 1" in message
        assert "chunk offset 0" in message

    def test_npy_strict_error_names_offending_chunk(self, dirty_npy_path):
        # Rows 123 and 200 are in the second and third 100-row chunks;
        # consuming chunks lazily pins the error to the right offset.
        stream = NpyFileStream(dirty_npy_path, chunk_size=100)
        iterator = stream.iter_with_offsets()
        with pytest.raises(DataValidationError, match="chunk offset 0"):
            next(iterator)

    def test_npy_quarantine_drops_and_counts(self, dirty_npy_path):
        from repro.obs import Recorder, use_recorder

        stream = NpyFileStream(
            dirty_npy_path, chunk_size=100, fault_policy="quarantine"
        )
        assert stream.n_points == 257 - 3
        recorder = Recorder()
        with use_recorder(recorder):
            out = stream.materialize()
        assert out.shape == (254, 3)
        assert np.isfinite(out).all()
        assert recorder.counters["rows_quarantined"] == 3

    def test_npy_quarantine_offsets_compacted(self, dirty_npy_path):
        stream = NpyFileStream(
            dirty_npy_path, chunk_size=100, fault_policy="quarantine"
        )
        offsets, lengths = [], []
        for offset, chunk in stream.iter_with_offsets():
            offsets.append(offset)
            lengths.append(chunk.shape[0])
        assert offsets == [0, 99, 198]
        assert sum(lengths) == stream.n_points

    def test_npy_repair_imputes(self, dirty_npy_path, array):
        stream = NpyFileStream(
            dirty_npy_path, chunk_size=100, fault_policy="repair"
        )
        out = stream.materialize()
        assert out.shape == array.shape
        assert np.isfinite(out).all()
        # Untouched rows pass through bit-exactly.
        np.testing.assert_array_equal(out[0], array[0])

    def test_npy_sampler_never_sees_dirty_rows(self, dirty_npy_path):
        from repro.core import DensityBiasedSampler

        stream = NpyFileStream(
            dirty_npy_path, chunk_size=64, fault_policy="quarantine"
        )
        sample = DensityBiasedSampler(
            sample_size=50, exponent=1.0, random_state=0
        ).sample(None, stream=stream)
        assert np.isfinite(sample.points).all()
        assert sample.n_source == stream.n_points

    def test_npy_binds_ambient_policy(self, dirty_npy_path):
        with use_fault_policy("quarantine"):
            stream = NpyFileStream(dirty_npy_path, chunk_size=100)
        assert stream.fault_policy.mode == "quarantine"
        assert stream.n_points == 254

    def test_npy_max_abs_quarantines_finite_garbage(self, array, tmp_path):
        dirty = array.copy()
        dirty[17, 2] = 1e30  # finite but absurd: a bit-flip lookalike
        path = os.path.join(tmp_path, "garbage.npy")
        np.save(path, dirty)
        stream = NpyFileStream(
            path,
            chunk_size=100,
            fault_policy=RowQuarantine("quarantine", max_abs=1e9),
        )
        assert stream.n_points == 256
        assert (np.abs(stream.materialize()) <= 1e9).all()

    def test_csv_non_numeric_quarantined(self, tmp_path):
        path = os.path.join(tmp_path, "text.csv")
        with open(path, "w") as handle:
            handle.write("1.0,2.0\n3.0,abc\n5.0,6.0\n")
        stream = CsvFileStream(path, fault_policy="quarantine")
        assert stream.n_points == 2
        np.testing.assert_allclose(
            stream.materialize(), [[1.0, 2.0], [5.0, 6.0]]
        )

    def test_csv_non_numeric_repaired(self, tmp_path):
        path = os.path.join(tmp_path, "text.csv")
        with open(path, "w") as handle:
            handle.write("1.0,2.0\n3.0,abc\n5.0,6.0\n")
        stream = CsvFileStream(path, fault_policy="repair")
        out = stream.materialize()
        assert out.shape == (3, 2)
        assert out[1, 1] == pytest.approx(4.0)  # mean of 2.0 and 6.0

    def test_csv_nan_literal_quarantined(self, tmp_path):
        # float('nan') parses fine, so this exercises the value check
        # rather than the parse fallback.
        path = os.path.join(tmp_path, "nan.csv")
        with open(path, "w") as handle:
            handle.write("1.0,2.0\nnan,4.0\n5.0,6.0\n")
        with pytest.raises(DataValidationError, match="chunk offset"):
            list(CsvFileStream(path))
        stream = CsvFileStream(path, fault_policy="quarantine")
        assert stream.n_points == 2

    def test_retry_recovers_from_transient_open_errors(self, csv_path):
        from repro.faults import RetryPolicy

        failures = {"left": 2}
        real_open = open

        def flaky_open(attempt_index):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("injected open failure")
            return real_open(csv_path)

        stream = CsvFileStream(csv_path, retry_policy=RetryPolicy())
        # Exercise the policy directly against a flaky opener to show the
        # stream's budget masks transient failures.
        handle = stream.retry_policy.call(flaky_open, describe="open")
        handle.close()
        assert failures["left"] == 0

    def test_exhausted_retries_surface_stream_read_error(self, tmp_path):
        from repro.exceptions import StreamReadError
        from repro.faults import RetryPolicy

        def always_down(attempt_index):
            raise OSError("disk gone")

        policy = RetryPolicy(max_retries=2)
        with pytest.raises(StreamReadError):
            policy.call(always_down, describe="chunk read")


class TestCsvTrailingBuffer:
    """The `_raw_chunks` trailing-buffer boundary: every layout of the
    final chunk must give the same row count as `materialize()`."""

    def _write(self, tmp_path, n_rows, trailer=""):
        rows = np.arange(n_rows * 2, dtype=float).reshape(n_rows, 2)
        path = os.path.join(tmp_path, f"rows{n_rows}.csv")
        with open(path, "w") as handle:
            for row in rows:
                handle.write(f"{row[0]},{row[1]}\n")
            handle.write(trailer)
        return path, rows

    @pytest.mark.parametrize("n_rows", [9, 10, 11, 19, 20, 21, 1])
    def test_partial_final_buffer_counts_match(self, tmp_path, n_rows):
        path, rows = self._write(tmp_path, n_rows)
        stream = CsvFileStream(path, chunk_size=10)
        assert stream.n_points == n_rows
        assert stream.materialize().shape[0] == n_rows
        np.testing.assert_array_equal(stream.materialize(), rows)

    @pytest.mark.parametrize("trailer", ["\n", "\n\n\n", "   \n\n"])
    def test_trailing_blank_lines_do_not_add_rows(self, tmp_path, trailer):
        path, rows = self._write(tmp_path, 10, trailer=trailer)
        stream = CsvFileStream(path, chunk_size=4)
        assert stream.n_points == 10
        np.testing.assert_array_equal(stream.materialize(), rows)

    def test_exact_multiple_of_chunk_size(self, tmp_path):
        path, rows = self._write(tmp_path, 12)
        stream = CsvFileStream(path, chunk_size=4)
        chunks = list(stream)
        assert [c.shape[0] for c in chunks] == [4, 4, 4]
        assert sum(c.shape[0] for c in chunks) == stream.n_points
        np.testing.assert_array_equal(np.vstack(chunks), rows)

    def test_no_trailing_newline(self, tmp_path):
        path = os.path.join(tmp_path, "nonewline.csv")
        with open(path, "w") as handle:
            handle.write("1.0,2.0\n3.0,4.0\n5.0,6.0")
        stream = CsvFileStream(path, chunk_size=2)
        assert stream.n_points == 3
        assert stream.materialize().shape == (3, 2)


class TestShardSupportApi:
    """chunk_sizes() / iter_chunk_range() agree with full iteration."""

    @pytest.mark.parametrize("kind", ["npy", "csv"])
    def test_chunk_sizes_match_iteration(self, kind, npy_path, csv_path):
        path = npy_path if kind == "npy" else csv_path
        cls = NpyFileStream if kind == "npy" else CsvFileStream
        stream = cls(path, chunk_size=50)
        sizes = stream.chunk_sizes()
        assert sum(sizes) == stream.n_points
        assert list(sizes) == [c.shape[0] for c in stream]

    @pytest.mark.parametrize("kind", ["npy", "csv"])
    def test_iter_chunk_range_is_a_slice_of_the_pass(
        self, kind, npy_path, csv_path
    ):
        path = npy_path if kind == "npy" else csv_path
        cls = NpyFileStream if kind == "npy" else CsvFileStream
        stream = cls(path, chunk_size=50)
        full = list(stream.iter_with_offsets())
        got = list(stream.iter_chunk_range(1, 4))
        assert [start for start, _ in got] == [start for start, _ in full[1:4]]
        for (_, expected), (_, actual) in zip(full[1:4], got):
            np.testing.assert_array_equal(expected, actual)

    @pytest.mark.parametrize("kind", ["npy", "csv"])
    def test_iter_chunk_range_under_quarantine(self, kind, tmp_path, array):
        dirty = array.copy()
        dirty[10, 0] = np.nan
        dirty[120, 1] = np.inf
        if kind == "npy":
            path = os.path.join(tmp_path, "dirty.npy")
            np.save(path, dirty)
            cls = NpyFileStream
        else:
            path = os.path.join(tmp_path, "dirty.csv")
            np.savetxt(path, dirty, delimiter=",")
            cls = CsvFileStream
        stream = cls(path, chunk_size=50, fault_policy="quarantine")
        full = list(stream.iter_with_offsets())
        n_chunks = len(stream.chunk_sizes())
        got = list(stream.iter_chunk_range(0, n_chunks))
        assert [s for s, _ in got] == [s for s, _ in full]
        for (_, expected), (_, actual) in zip(full, got):
            np.testing.assert_array_equal(expected, actual)

    def test_npy_stream_pickles_and_reopens(self, npy_path, array):
        import pickle

        stream = NpyFileStream(npy_path, chunk_size=64)
        clone = pickle.loads(pickle.dumps(stream))
        np.testing.assert_array_equal(clone.materialize(), array)
        np.testing.assert_array_equal(
            np.vstack(list(clone)), np.vstack(list(stream))
        )
