"""Tests for CLARANS randomized K-medoids."""

import numpy as np
import pytest

from repro.clustering import Clarans, KMedoids
from repro.exceptions import ParameterError


@pytest.fixture
def blobs():
    rng = np.random.default_rng(0)
    return np.vstack(
        [rng.normal(c, 0.1, size=(50, 2)) for c in ((0, 0), (3, 3), (0, 3))]
    )


class TestClarans:
    def test_recovers_blobs(self, blobs):
        result = Clarans(n_clusters=3, random_state=0).fit(blobs)
        assert sorted(result.sizes.tolist()) == [50, 50, 50]

    def test_medoids_are_data_points(self, blobs):
        result = Clarans(n_clusters=3, random_state=0).fit(blobs)
        rows = {tuple(r) for r in blobs}
        assert all(tuple(c) in rows for c in result.centers)

    def test_cost_close_to_pam(self, blobs):
        """Randomized search should land near PAM's optimum."""
        clarans = Clarans(n_clusters=3, num_local=3, random_state=0)
        clarans.fit(blobs)
        pam = KMedoids(n_clusters=3)
        pam.fit(blobs)
        assert clarans.cost_ <= pam.cost_ * 1.15

    def test_deterministic_given_seed(self, blobs):
        a = Clarans(n_clusters=3, random_state=5).fit(blobs)
        b = Clarans(n_clusters=3, random_state=5).fit(blobs)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_more_local_searches_never_hurt(self, blobs):
        one = Clarans(n_clusters=3, num_local=1, random_state=1)
        one.fit(blobs)
        many = Clarans(n_clusters=3, num_local=4, random_state=1)
        many.fit(blobs)
        assert many.cost_ <= one.cost_ + 1e-9

    def test_weighted(self):
        pts = np.array([[0.0], [1.0], [10.0]])
        result = Clarans(n_clusters=1, random_state=0).fit(
            pts, sample_weight=np.array([1.0, 1.0, 50.0])
        )
        assert result.centers[0, 0] == 10.0

    def test_single_cluster(self, blobs):
        result = Clarans(n_clusters=1, random_state=0).fit(blobs)
        assert result.n_clusters == 1
        assert result.sizes[0] == 150

    def test_weight_shape_checked(self, blobs):
        with pytest.raises(ParameterError, match="sample_weight"):
            Clarans(n_clusters=2, random_state=0).fit(
                blobs, sample_weight=np.ones(3)
            )

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            Clarans(n_clusters=0)
        with pytest.raises(ParameterError):
            Clarans(num_local=0)
        with pytest.raises(ParameterError):
            Clarans(max_neighbors=0)

    def test_explicit_max_neighbors(self, blobs):
        result = Clarans(
            n_clusters=3, max_neighbors=50, random_state=0
        ).fit(blobs)
        assert result.n_clusters == 3
