"""Tests for repro.obs: recorders, spans, manifests and instrumentation."""

import json
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ApproximateClusteringPipeline
from repro.core import DensityBiasedSampler
from repro.obs import (
    HISTOGRAM_SCHEMA,
    NULL_RECORDER,
    SCHEMA_VERSION,
    Histogram,
    Recorder,
    RunManifest,
    Span,
    Stopwatch,
    collect_environment,
    format_spans,
    get_recorder,
    recording,
    use_recorder,
)


@pytest.fixture
def blobs():
    rng = np.random.default_rng(0)
    return np.vstack(
        [rng.normal(c, 0.05, (1500, 2)) for c in ((0, 0), (1, 1))]
    )


# ---------------------------------------------------------------------------
# Recorder and spans
# ---------------------------------------------------------------------------


class TestRecorder:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.count("kernel_evals", 10)
        rec.count("kernel_evals", 5)
        rec.count("data_passes")
        assert rec.counters == {"kernel_evals": 15, "data_passes": 1}

    def test_phase_records_counter_deltas(self):
        rec = Recorder()
        rec.count("kernel_evals", 100)
        with rec.phase("fit"):
            rec.count("kernel_evals", 7)
            rec.count("data_passes")
        assert rec.spans[0].counters == {"kernel_evals": 7, "data_passes": 1}
        # Totals are unaffected by span bookkeeping.
        assert rec.counters["kernel_evals"] == 107

    def test_nested_phases_build_tree(self):
        rec = Recorder()
        with rec.phase("outer"):
            with rec.phase("inner_a"):
                rec.count("x", 1)
            with rec.phase("inner_b"):
                rec.count("x", 2)
        (outer,) = rec.spans
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.counters == {"x": 3}
        assert outer.children[0].counters == {"x": 1}
        assert outer.children[1].counters == {"x": 2}

    def test_unchanged_counters_not_in_span_delta(self):
        rec = Recorder()
        rec.count("before", 3)
        with rec.phase("quiet"):
            pass
        assert rec.spans[0].counters == {}

    def test_timers_aggregate_by_name(self):
        rec = Recorder()
        with rec.phase("a"):
            with rec.phase("b"):
                pass
        with rec.phase("b"):
            pass
        timers = rec.timers
        assert set(timers) == {"a", "b"}
        assert all(v >= 0.0 for v in timers.values())

    def test_phase_closes_on_exception(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            with rec.phase("boom"):
                rec.count("x")
                raise ValueError("boom")
        assert rec._stack == []
        assert rec.spans[0].counters == {"x": 1}

    def test_snapshot_shape(self):
        rec = Recorder()
        with rec.phase("p"):
            rec.count("n", 2)
        snap = rec.snapshot()
        assert set(snap) == {"counters", "histograms", "timers", "spans"}
        assert snap["spans"][0]["name"] == "p"
        assert snap["spans"][0]["counters"] == {"n": 2}

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["kernel_evals", "distance_evals", "x"]),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_root_span_delta_equals_totals(self, increments):
        """Counts made anywhere under one root span sum into its delta."""
        rec = Recorder()
        with rec.phase("root"):
            for depth, (name, n) in enumerate(increments):
                if depth % 3 == 0:
                    with rec.phase("child"):
                        rec.count(name, n)
                else:
                    rec.count(name, n)
        totals = {}
        for name, n in increments:
            totals[name] = totals.get(name, 0) + n
        # Touched counters exist even at zero; span deltas drop zeros.
        assert rec.counters == totals
        assert rec.spans[0].counters == {
            k: v for k, v in totals.items() if v != 0
        }


class TestNullRecorder:
    def test_disabled_recorder_accumulates_nothing(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.count("kernel_evals", 10)
        with NULL_RECORDER.phase("fit"):
            NULL_RECORDER.count("data_passes")
        NULL_RECORDER.observe("kde_eval_chunk_seconds", 1.0)
        assert NULL_RECORDER.counters == {}
        assert NULL_RECORDER.spans == []
        assert NULL_RECORDER.histograms == {}
        assert NULL_RECORDER.snapshot() == {
            "counters": {},
            "histograms": {},
            "timers": {},
            "spans": [],
        }


class TestAmbientRecorder:
    def test_default_is_null(self):
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_installs_and_restores(self):
        rec = Recorder()
        with use_recorder(rec) as installed:
            assert installed is rec
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_recording_shorthand(self):
        with recording() as rec:
            get_recorder().count("x", 2)
        assert rec.counters == {"x": 2}

    def test_nested_recorders_restore_outer(self):
        outer, inner = Recorder(), Recorder()
        with use_recorder(outer):
            outer_seen = get_recorder()
            with use_recorder(inner):
                get_recorder().count("x")
            assert get_recorder() is outer_seen
        assert inner.counters == {"x": 1}
        assert outer.counters == {}

    def test_threads_are_isolated(self):
        """Two threads with their own recorders never see each other."""
        results = {}
        barrier = threading.Barrier(2)

        def work(tag, n):
            rec = Recorder()
            with use_recorder(rec):
                barrier.wait()  # both threads inside use_recorder at once
                for _ in range(n):
                    get_recorder().count(tag)
                barrier.wait()
            results[tag] = dict(rec.counters)

        threads = [
            threading.Thread(target=work, args=("a", 11)),
            threading.Thread(target=work, args=("b", 7)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {"a": {"a": 11}, "b": {"b": 7}}
        assert get_recorder() is NULL_RECORDER


class TestStopwatch:
    def test_measures_nonnegative_elapsed(self):
        with Stopwatch() as watch:
            sum(range(100))
        assert watch.elapsed >= 0.0


class TestFormatSpans:
    def test_renders_nested_tree(self):
        rec = Recorder()
        with rec.phase("outer"):
            with rec.phase("inner"):
                rec.count("kernel_evals", 5)
        text = format_spans(rec.snapshot()["spans"])
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "kernel_evals=5" in lines[1]


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------


json_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)


class TestRunManifest:
    def test_from_recorder_captures_state(self):
        rec = Recorder()
        with rec.phase("run"):
            rec.count("sample_size", 42)
        manifest = RunManifest.from_recorder(
            rec, name="fig4", seed=3, params={"scale": 0.5}
        )
        assert manifest.name == "fig4"
        assert manifest.seed == 3
        assert manifest.counters == {"sample_size": 42}
        assert manifest.spans[0]["name"] == "run"
        assert manifest.elapsed == pytest.approx(
            manifest.spans[0]["elapsed_s"]
        )

    def test_elapsed_none_without_spans(self):
        assert RunManifest(name="empty").elapsed is None

    def test_environment_collected_by_default(self):
        env = RunManifest(name="x").environment
        assert sorted(env) == ["numpy", "platform", "python", "repro"]
        assert env["python"] == collect_environment()["python"]

    @given(
        name=st.text(min_size=1, max_size=20),
        seed=st.one_of(st.none(), st.integers(0, 2**31 - 1)),
        params=st.dictionaries(st.text(max_size=10), json_values, max_size=5),
        counters=st.dictionaries(
            st.text(min_size=1, max_size=10),
            st.integers(min_value=0, max_value=10**9),
            max_size=5,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip(self, name, seed, params, counters):
        manifest = RunManifest(
            name=name, seed=seed, params=params, counters=counters
        )
        line = manifest.to_json()
        assert "\n" not in line
        back = RunManifest.from_json(line)
        assert back == manifest

    def test_emit_to_path_appends_json_lines(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        RunManifest(name="a", counters={"data_passes": 1}).emit(path)
        RunManifest(name="b").emit(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"
        assert json.loads(lines[1])["name"] == "b"

    def test_emit_to_stream(self):
        import io

        buffer = io.StringIO()
        RunManifest(name="x").emit(buffer)
        assert json.loads(buffer.getvalue())["name"] == "x"

    def test_emit_to_callable(self):
        received = []
        RunManifest(name="x", seed=9).emit(received.append)
        assert received[0]["seed"] == 9

    def test_emit_default_writes_stderr(self, capsys):
        RunManifest(name="x").emit()
        err = capsys.readouterr().err
        assert json.loads(err)["name"] == "x"

    def test_v2_round_trip_with_histograms(self):
        rec = Recorder()
        with rec.phase("run") as span:
            span.set(rows=10)
            rec.observe("kde_eval_chunk_seconds", 0.02)
            rec.observe("kde_eval_chunk_seconds", 0.2)
        manifest = RunManifest.from_recorder(rec, name="x", seed=1)
        assert manifest.schema_version == SCHEMA_VERSION
        hist = manifest.histograms["kde_eval_chunk_seconds"]
        assert hist["count"] == 2
        assert hist["p50"] > 0.0
        back = RunManifest.from_json(manifest.to_json())
        assert back == manifest
        assert back.spans[0]["attrs"]["rows"] == 10

    def test_v1_fixture_still_loads(self):
        """Manifests written before schema_version must keep loading."""
        fixture = Path(__file__).parent / "data" / "manifest_v1.json"
        manifest = RunManifest.from_json(fixture.read_text())
        assert manifest.schema_version == 1
        assert manifest.name == "fig4"
        assert manifest.counters["data_passes"] == 4
        assert manifest.histograms == {}
        assert manifest.profile == []
        assert manifest.spans[0]["children"][0]["name"] == "fit_density"


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_observe_buckets_and_totals(self):
        h = Histogram("latency_s", (0.1, 1.0))
        for v in (0.05, 0.2, 0.3, 5.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(5.55)

    def test_merge_folds_counts(self):
        a = Histogram("x", (1.0, 2.0))
        b = Histogram("x", (1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        a.merge(b.to_dict())  # dict form (the cross-worker shape)
        assert a.count == 5

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram("x", (1.0, 2.0))
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge(Histogram("x", (1.0, 3.0)))

    def test_merge_rejects_dict_payload_with_mismatched_bounds(self):
        a = Histogram("x", (1.0, 2.0))
        payload = Histogram("x", (1.0, 3.0)).to_dict()
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge(payload)

    @pytest.mark.parametrize("dropped", ["bounds", "counts", "count", "sum"])
    def test_from_dict_missing_key_fails_loudly(self, dropped):
        payload = Histogram("x", (1.0, 2.0)).to_dict()
        del payload[dropped]
        with pytest.raises(ValueError, match=f"missing required key.*{dropped}"):
            Histogram.from_dict(payload, name="x")

    def test_merge_rejects_dict_payload_missing_buckets(self):
        a = Histogram("x", (1.0, 2.0))
        payload = a.to_dict()
        del payload["counts"]
        with pytest.raises(ValueError, match="missing required key"):
            a.merge(payload)

    def test_from_dict_rejects_counts_length_mismatch(self):
        payload = Histogram("x", (1.0, 2.0)).to_dict()
        payload["counts"] = [0, 0]  # needs len(bounds) + 1 == 3
        with pytest.raises(ValueError, match="bucket counts"):
            Histogram.from_dict(payload, name="x")

    def test_quantiles(self):
        h = Histogram("x", (1.0, 2.0, 4.0))
        assert h.quantile(0.5) == 0.0  # empty
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert 0.0 < h.quantile(0.25) <= 1.0
        assert h.quantile(0.99) == 4.0  # overflow clamps to last bound
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_recorder_uses_schema_bounds(self):
        rec = Recorder()
        rec.observe("kde_eval_chunk_seconds", 0.01)
        hist = rec.histograms["kde_eval_chunk_seconds"]
        assert hist.bounds == HISTOGRAM_SCHEMA[
            "kde_eval_chunk_seconds"
        ].buckets

    def test_recorder_merge_histograms(self):
        rec = Recorder()
        rec.observe("stream_chunk_rows", 100)
        worker = Recorder()
        worker.observe("stream_chunk_rows", 200)
        rec.merge_histograms(
            {n: h.to_dict() for n, h in worker.histograms.items()}
        )
        assert rec.histograms["stream_chunk_rows"].count == 2


# ---------------------------------------------------------------------------
# Span attributes and serialisation
# ---------------------------------------------------------------------------


class TestSpanAttrs:
    def test_phase_yields_span_with_attrs(self):
        rec = Recorder()
        with rec.phase("chunk", worker=3) as span:
            assert span.set(rows=500) is span  # chainable
        done = rec.spans[0]
        assert done.attrs == {"worker": 3, "rows": 500}
        assert done.start >= 0.0
        assert done.children == []

    def test_span_dict_round_trip_keeps_parent_links(self):
        rec = Recorder()
        with rec.phase("outer"):
            with rec.phase("inner") as span:
                span.set(chunk=1)
        data = rec.spans[0].to_dict()
        back = Span.from_dict(data)
        assert back.children[0].parent is back
        assert back.children[0].attrs == {"chunk": 1}
        assert back.to_dict() == data

    def test_null_recorder_span_is_inert(self):
        with NULL_RECORDER.phase("x", worker=1) as span:
            assert span.set(rows=5) is span
            assert span.elapsed == 0.0

    def test_adopted_spans_attach_under_open_phase(self):
        rec = Recorder()
        shipped = [{"name": "worker_task", "elapsed_s": 0.1,
                    "attrs": {"worker": 0}}]
        with rec.phase("scan"):
            rec.adopt_spans(shipped)
        scan = rec.spans[0]
        assert [c.name for c in scan.children] == ["worker_task"]
        assert scan.children[0].parent is scan

    def test_profile_attaches_per_function_table(self):
        rec = Recorder(profile=True)
        with rec.phase("work"):
            sum(i * i for i in range(20_000))
        table = rec.spans[0].attrs["profile"]
        assert isinstance(table, list) and table
        assert {"function", "calls", "self_s", "cum_s"} <= set(table[0])


class TestParallelTelemetry:
    def test_counters_and_results_identical_across_n_jobs(self, blobs):
        from repro.parallel import use_n_jobs

        def run(n_jobs):
            with recording() as rec, use_n_jobs(n_jobs):
                sample = DensityBiasedSampler(
                    sample_size=100, exponent=0.5, random_state=7
                ).sample(blobs)
            return dict(rec.counters), sample.indices.tolist()

        serial = run(1)
        assert run(2) == serial
        assert run(4) == serial

    def test_worker_spans_adopted_with_worker_attrs(self, blobs):
        from repro.parallel import use_n_jobs

        with recording() as rec, use_n_jobs(2):
            DensityBiasedSampler(
                sample_size=100, exponent=0.5, random_state=7
            ).sample(blobs)

        tasks = []

        def walk(span):
            if span.name == "worker_task":
                tasks.append(span)
            for child in span.children:
                walk(child)

        for root in rec.spans:
            walk(root)
        assert tasks, "parallel run shipped no worker spans"
        assert all("worker" in t.attrs and "chunk" in t.attrs
                   for t in tasks)


# ---------------------------------------------------------------------------
# Instrumentation through the library
# ---------------------------------------------------------------------------


class TestCounterDeterminism:
    def test_same_seed_identical_counters(self, blobs):
        def run():
            with recording() as rec:
                DensityBiasedSampler(
                    sample_size=100, exponent=0.5, random_state=7
                ).sample(blobs)
            return dict(rec.counters)

        assert run() == run()

    def test_sampler_records_expected_counters(self, blobs):
        with recording() as rec:
            sample = DensityBiasedSampler(
                sample_size=100, exponent=0.5, random_state=7
            ).sample(blobs)
        assert rec.counters["sample_size"] == len(sample)
        assert rec.counters["data_passes"] >= 2  # fit pass + eval pass
        assert rec.counters["kernel_evals"] > 0
        assert [s.name for s in rec.spans] == [
            "fit_density", "eval_density", "draw",
        ]

    def test_results_identical_with_and_without_recording(self, blobs):
        sampler_kwargs = dict(sample_size=100, exponent=0.5, random_state=7)
        plain = DensityBiasedSampler(**sampler_kwargs).sample(blobs)
        with recording():
            observed = DensityBiasedSampler(**sampler_kwargs).sample(blobs)
        np.testing.assert_array_equal(plain.indices, observed.indices)
        np.testing.assert_array_equal(plain.points, observed.points)
        np.testing.assert_array_equal(
            plain.probabilities, observed.probabilities
        )


class TestPipelineIntegration:
    def test_fit_reports_documented_data_passes(self, blobs):
        """Pins the paper's pass accounting: the default pipeline costs
        exactly 4 dataset passes (estimator fit, normaliser, sample
        gather, label assignment)."""
        with recording() as rec:
            result = ApproximateClusteringPipeline(
                n_clusters=2, random_state=0
            ).fit(blobs)
        assert rec.counters["data_passes"] == 4
        assert result.n_passes == 4

    def test_fit_span_tree_without_ambient_recorder(self, blobs):
        """n_passes is derived from a private recorder when none is
        installed, without leaking state into the null recorder."""
        result = ApproximateClusteringPipeline(
            n_clusters=2, random_state=0
        ).fit(blobs)
        assert result.n_passes == 4
        assert NULL_RECORDER.counters == {}

    def test_fit_records_phase_tree(self, blobs):
        with recording() as rec:
            ApproximateClusteringPipeline(
                n_clusters=2, random_state=0
            ).fit(blobs)
        (root,) = rec.spans
        assert root.name == "pipeline_fit"
        names = [child.name for child in root.children]
        assert names == ["sample", "cluster", "assign"]
        assert rec.counters["points_seen"] >= blobs.shape[0]
        assert rec.counters["distance_evals"] > 0
