"""Tests for the experiment harness (registry, reporting, tiny runs)."""

import io

import pytest

from repro.exceptions import ParameterError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    Table,
    get_experiment,
    run_experiment,
)

EXPECTED_IDS = {
    "theorem1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "outliers",
    "scaling",
    "geo",
    "samplesize",
    "lemma1",
    "ablation-estimator",
    "ablation-onepass",
    "ablation-kernels",
    "ext-rules",
    "ext-tree",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_specs_have_descriptions(self):
        for spec in EXPERIMENTS.values():
            assert spec.description
            assert spec.paper_artifact

    def test_get_unknown_raises(self):
        with pytest.raises(ParameterError, match="unknown experiment"):
            get_experiment("fig99")


class TestReporting:
    def test_table_rendering_aligns(self):
        table = Table(title="t", headers=["a", "long_header"])
        table.add_row(1, 2.5)
        table.add_row(100, 0.333333)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "## t"
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_row_length_checked(self):
        table = Table(title="t", headers=["a", "b"])
        with pytest.raises(ValueError, match="columns"):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table(title="t", headers=["x", "y"])
        table.add_row(1, 10)
        table.add_row(2, 20)
        assert table.column("y") == [10, 20]

    def test_result_table_lookup(self):
        result = ExperimentResult(name="e", description="d")
        table = result.new_table("series", ["x"])
        assert result.table("series") is table
        with pytest.raises(KeyError):
            result.table("missing")

    def test_bool_formatting(self):
        table = Table(title="t", headers=["flag"])
        table.add_row(True)
        assert "yes" in table.render()


class TestTinyRuns:
    """Run the cheap experiments end-to-end at minimal scale."""

    def test_theorem1(self):
        result = run_experiment("theorem1", scale=0.05, verbose=False)
        crossover = result.table("biased sample size under rule R")
        assert crossover.column("beats_uniform") == crossover.column(
            "theorem1_predicts"
        )

    def test_lemma1(self):
        result = run_experiment("lemma1", scale=0.1, verbose=False)
        table = result.table("density-order preservation vs exponent")
        preserved = dict(
            zip(table.column("exponent"), table.column("preserved_pair_fraction"))
        )
        # Lemma 1 regime must preserve order far better than a = -2.
        assert preserved[0.5] >= 0.85
        assert preserved[-0.5] >= 0.7
        assert preserved[-2.0] <= preserved[-0.25]

    def test_ablation_onepass(self):
        result = run_experiment("ablation-onepass", scale=0.1, verbose=False)
        table = result.table("two-pass vs one-pass (a=-0.5)")
        errors = table.column("size_error_pct")
        assert errors[0] < 15  # exact normaliser: tight
        assert errors[1] < 60  # estimated normaliser: looser but sane

    def test_ext_rules(self):
        result = run_experiment("ext-rules", scale=0.1, verbose=False)
        table = result.table("sample size sweep (min_support=6%)")
        assert all(r >= 0.5 for r in table.column("recall"))
        assert all(p == 1 for p in table.column("full_passes"))

    def test_ext_tree(self):
        result = run_experiment("ext-tree", scale=0.15, verbose=False)
        table = result.table("test accuracy vs training-sample size")
        full = table.column("full_data")[0]
        assert 0.5 <= full <= 1.0
        assert all(a <= full + 0.05
                   for a in table.column("biased_a0.5_weighted"))

    def test_ablation_estimator(self):
        result = run_experiment(
            "ablation-estimator", scale=0.1, verbose=False
        )
        table = result.table("estimator back-ends (a=-0.5, 1% sample)")
        assert len(table.rows) == 3
        assert all(size > 0 for size in table.column("sample_size"))

    def test_fig3(self):
        result = run_experiment("fig3", scale=0.1, verbose=False)
        head = result.table("found clusters at equal sample size")
        scores = dict(zip(head.column("method"), head.column("found_of_5")))
        assert scores["biased a=0.5"] >= 3

    def test_verbose_prints(self):
        buffer = io.StringIO()
        run_experiment("theorem1", scale=0.05, verbose=True, out=buffer)
        assert "motivating example" in buffer.getvalue()

    def test_plot_rendering(self):
        buffer = io.StringIO()
        run_experiment(
            "theorem1", scale=0.05, verbose=True, plot=True, out=buffer
        )
        assert "[plot]" in buffer.getvalue()

    def test_notes_record_settings(self):
        result = run_experiment("theorem1", scale=0.05, verbose=False)
        assert any("scale=0.05" in note for note in result.notes)
