"""Statistical validation of the sampling distributions.

These tests check the samplers against their advertised probability
laws by repetition — empirical inclusion frequencies must match the
computed per-point probabilities, which is the load-bearing property
behind every Horvitz-Thompson correction in the library.
"""

import numpy as np
import pytest

from repro.baselines import GridBiasedSampler
from repro.core import DensityBiasedSampler, OnePassBiasedSampler, UniformSampler
from repro.density import KernelDensityEstimator


class TestInclusionFrequencies:
    def test_biased_sampler_matches_probabilities(self):
        rng = np.random.default_rng(0)
        data = np.vstack(
            [
                rng.normal(0.0, 0.05, size=(500, 2)),
                rng.uniform(-1.0, 1.0, size=(500, 2)),
            ]
        )
        estimator = KernelDensityEstimator(
            n_kernels=128, random_state=0
        ).fit(data)
        n_runs = 300
        hits = np.zeros(data.shape[0])
        probs = None
        for seed in range(n_runs):
            sampler = DensityBiasedSampler(
                sample_size=200,
                exponent=1.0,
                estimator=estimator,
                random_state=seed,
            )
            sample = sampler.sample(data)
            hits[sample.indices] += 1
            probs = sampler.probabilities_  # same every run (fixed f)
        freq = hits / n_runs
        # Binomial standard error per point ~ sqrt(p(1-p)/n_runs);
        # check deviations stay within ~4 sigma everywhere.
        sigma = np.sqrt(probs * (1 - probs) / n_runs) + 1e-9
        z = np.abs(freq - probs) / sigma
        assert np.quantile(z, 0.99) < 4.0
        assert abs(freq.mean() - probs.mean()) < 0.01

    def test_expected_size_unbiased_over_runs(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3000, 2))
        sizes = [
            len(
                DensityBiasedSampler(
                    sample_size=300, exponent=0.5, random_state=seed
                ).sample(data)
            )
            for seed in range(40)
        ]
        # Mean within 3 standard errors of the target.
        se = np.std(sizes) / np.sqrt(len(sizes))
        assert abs(np.mean(sizes) - 300) < 3 * se + 3

    def test_grid_sampler_group_rates(self):
        """Two groups with e=0 must receive equal expected counts."""
        rng = np.random.default_rng(2)
        heavy = rng.uniform(0.0, 0.24, size=(3600, 2))
        light = rng.uniform(0.76, 0.99, size=(400, 2))
        data = np.vstack([heavy, light])
        heavy_counts, light_counts = [], []
        for seed in range(30):
            sample = GridBiasedSampler(
                sample_size=200, exponent=0.0, bins_per_dim=2,
                random_state=seed,
            ).sample(data)
            heavy_counts.append(int((sample.indices < 3600).sum()))
            light_counts.append(int((sample.indices >= 3600).sum()))
        ratio = np.mean(heavy_counts) / max(np.mean(light_counts), 1e-9)
        assert 0.75 < ratio < 1.3


class TestHorvitzThompsonTotals:
    def test_weighted_count_estimates_n(self):
        """sum of 1/p over the sample estimates the dataset size for
        ANY exponent — the defining HT property."""
        rng = np.random.default_rng(3)
        data = np.vstack(
            [
                rng.normal(0.0, 0.05, size=(2000, 2)),
                rng.uniform(-1.0, 1.0, size=(2000, 2)),
            ]
        )
        for exponent in (1.0, -0.5):
            estimates = []
            for seed in range(25):
                sample = DensityBiasedSampler(
                    sample_size=400, exponent=exponent, random_state=seed
                ).sample(data)
                estimates.append(sample.weights.sum())
            assert np.mean(estimates) == pytest.approx(4000, rel=0.05), (
                exponent
            )

    def test_uniform_sampler_weight_sum(self):
        """The HT estimator of n must be unbiased for the uniform
        sampler too — including the clipped b > n regime where every
        point has probability exactly 1."""
        rng = np.random.default_rng(4)
        data = rng.normal(size=(1500, 2))
        estimates = [
            UniformSampler(300, random_state=seed).sample(data).weights.sum()
            for seed in range(30)
        ]
        assert np.mean(estimates) == pytest.approx(1500, rel=0.05)
        oversized = UniformSampler(5000, random_state=0).sample(data)
        assert oversized.weights.sum() == pytest.approx(1500)

    def test_onepass_sampler_weight_sum(self):
        """The one-pass sampler's estimated normaliser perturbs the
        probabilities, but the weight-sum estimate of n must stay
        unbiased (this is what the self-kernel correction protects)."""
        rng = np.random.default_rng(5)
        data = np.vstack(
            [
                rng.normal(0.0, 0.05, size=(2000, 2)),
                rng.uniform(-1.0, 1.0, size=(2000, 2)),
            ]
        )
        estimates = [
            OnePassBiasedSampler(
                sample_size=400, exponent=1.0, random_state=seed
            )
            .sample(data)
            .weights.sum()
            for seed in range(25)
        ]
        assert np.mean(estimates) == pytest.approx(4000, rel=0.05)
