"""Tests for CURE-style hierarchical clustering."""

import numpy as np
import pytest

from repro.clustering import AgglomerativeClustering, CureClustering
from repro.clustering.cure import select_scattered_points
from repro.exceptions import ParameterError


@pytest.fixture
def blobs():
    rng = np.random.default_rng(0)
    return np.vstack(
        [rng.normal(c, 0.06, size=(80, 2))
         for c in ((0, 0), (1.5, 0), (0, 1.5), (1.5, 1.5))]
    )


class TestScatteredPoints:
    def test_returns_all_when_few(self):
        pts = np.random.default_rng(0).random((5, 2))
        reps = select_scattered_points(pts, pts.mean(axis=0), 10)
        assert reps.shape == (5, 2)

    def test_count_respected(self):
        pts = np.random.default_rng(0).random((100, 2))
        reps = select_scattered_points(pts, pts.mean(axis=0), 7)
        assert reps.shape == (7, 2)

    def test_picks_extremes_of_a_segment(self):
        pts = np.column_stack([np.linspace(0, 1, 50), np.zeros(50)])
        reps = select_scattered_points(pts, pts.mean(axis=0), 2)
        xs = sorted(reps[:, 0])
        assert xs[0] == 0.0 and xs[1] == 1.0

    def test_scattered_points_spread(self):
        """Scattered picks cover the data better than random picks."""
        rng = np.random.default_rng(1)
        pts = rng.random((300, 2))
        reps = select_scattered_points(pts, pts.mean(axis=0), 10)
        from repro.utils.geometry import pairwise_sq_distances

        min_pair = np.sqrt(
            pairwise_sq_distances(reps)[~np.eye(10, dtype=bool)].min()
        )
        assert min_pair > 0.15


class TestClustering:
    def test_recovers_blobs(self, blobs):
        result = CureClustering(n_clusters=4).fit(blobs)
        assert result.n_clusters == 4
        # Each center must sit near a distinct blob center.
        targets = np.array([(0, 0), (1.5, 0), (0, 1.5), (1.5, 1.5)])
        matched = {
            int(np.linalg.norm(targets - c, axis=1).argmin())
            for c in result.centers
        }
        assert matched == {0, 1, 2, 3}

    def test_representatives_shrunk_toward_mean(self, blobs):
        result = CureClustering(
            n_clusters=4, shrink_factor=0.9, remove_outliers=False
        ).fit(blobs)
        for reps, center in zip(result.representatives, result.centers):
            spread = np.linalg.norm(reps - center, axis=1).max()
            assert spread < 0.1  # alpha=0.9 pulls reps close to the mean

    def test_representative_count_capped(self, blobs):
        result = CureClustering(n_clusters=4, n_representatives=6).fit(blobs)
        assert all(reps.shape[0] <= 6 for reps in result.representatives)

    def test_nonspherical_clusters(self):
        """Two parallel elongated clusters: centroid-based K-means-style
        methods struggle, CURE's scattered reps must separate them."""
        rng = np.random.default_rng(2)
        top = np.column_stack(
            [rng.uniform(0, 4, 300), rng.normal(1.0, 0.05, 300)]
        )
        bottom = np.column_stack(
            [rng.uniform(0, 4, 300), rng.normal(0.0, 0.05, 300)]
        )
        pts = np.vstack([top, bottom])
        result = CureClustering(n_clusters=2, remove_outliers=False).fit(pts)
        labels_top = result.labels[:300]
        labels_bottom = result.labels[300:]
        # Majority label of each stripe must differ and be nearly pure.
        top_label = np.bincount(labels_top[labels_top >= 0]).argmax()
        bottom_label = np.bincount(labels_bottom[labels_bottom >= 0]).argmax()
        assert top_label != bottom_label
        assert (labels_top == top_label).mean() > 0.9
        assert (labels_bottom == bottom_label).mean() > 0.9

    def test_outlier_elimination_drops_noise(self):
        rng = np.random.default_rng(3)
        blob_a = rng.normal((0, 0), 0.05, size=(150, 2))
        blob_b = rng.normal((2, 2), 0.05, size=(150, 2))
        noise = rng.uniform(-1, 3, size=(20, 2))
        pts = np.vstack([blob_a, blob_b, noise])
        result = CureClustering(n_clusters=2, remove_outliers=True).fit(pts)
        # Noise points should largely end up unlabelled (-1).
        noise_labels = result.labels[300:]
        assert (noise_labels == -1).mean() > 0.5

    def test_no_outlier_removal_labels_everything(self, blobs):
        result = CureClustering(n_clusters=4, remove_outliers=False).fit(blobs)
        assert (result.labels >= 0).all()

    def test_sizes_sorted_descending(self, blobs):
        result = CureClustering(n_clusters=4).fit(blobs)
        assert (np.diff(result.sizes) <= 0).all()

    def test_single_cluster(self, blobs):
        result = CureClustering(n_clusters=1, remove_outliers=False).fit(blobs)
        assert result.n_clusters == 1
        assert result.sizes[0] == blobs.shape[0]

    def test_n_clusters_geq_points(self):
        pts = np.random.default_rng(0).random((5, 2))
        result = CureClustering(n_clusters=10, remove_outliers=False).fit(pts)
        assert result.n_clusters == 5

    def test_rejects_sample_weight(self, blobs):
        with pytest.raises(ParameterError, match="sample_weight"):
            CureClustering(n_clusters=2).fit(blobs, sample_weight=np.ones(320))

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            CureClustering(n_clusters=0)
        with pytest.raises(ParameterError):
            CureClustering(n_representatives=0)
        with pytest.raises(ParameterError):
            CureClustering(shrink_factor=1.5)

    def test_matches_single_link_limit(self):
        """With 1 representative and no shrinking CURE degenerates to
        centroid-anchored merging; sanity-check it still partitions
        separated blobs like plain agglomerative clustering."""
        rng = np.random.default_rng(4)
        pts = np.vstack(
            [rng.normal(c, 0.05, size=(40, 2)) for c in ((0, 0), (3, 3))]
        )
        cure = CureClustering(
            n_clusters=2, n_representatives=1, shrink_factor=0.0,
            remove_outliers=False,
        ).fit(pts)
        agg = AgglomerativeClustering(n_clusters=2, linkage="single").fit(pts)
        agreement = (cure.labels == agg.labels).mean()
        assert agreement in (0.0, 1.0) or agreement > 0.95  # up to relabel
