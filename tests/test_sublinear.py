"""Tests for the sampling-based approximate K-median."""

import numpy as np
import pytest

from repro.clustering import KMedoids, SublinearKMedian
from repro.exceptions import ParameterError


@pytest.fixture
def blobs():
    rng = np.random.default_rng(1)
    return np.vstack(
        [rng.normal(c, 0.1, (600, 2)) for c in ((0, 0), (4, 0), (0, 4))]
    )


class TestSublinearKMedian:
    def test_recovers_blobs(self, blobs):
        result = SublinearKMedian(n_clusters=3, random_state=0).fit(blobs)
        assert sorted(result.sizes.tolist()) == [600, 600, 600]

    def test_sample_is_sublinear(self, blobs):
        model = SublinearKMedian(n_clusters=3, random_state=0)
        model.fit(blobs)
        assert model.sample_size_ < blobs.shape[0] / 2
        # sqrt(n k) scaling with the default factor 4.
        expected = int(np.ceil(4 * np.sqrt(1800 * 3)))
        assert model.sample_size_ == expected

    def test_cost_near_full_pam(self, blobs):
        """The approximation should land within a modest factor of the
        full PAM cost."""
        approx = SublinearKMedian(n_clusters=3, refine=True, random_state=0)
        approx.fit(blobs)
        exact = KMedoids(n_clusters=3)
        exact.fit(blobs)
        assert approx.cost_ <= 1.25 * exact.cost_

    def test_refinement_does_not_hurt_much(self, blobs):
        plain = SublinearKMedian(
            n_clusters=3, refine=False, random_state=0
        )
        plain.fit(blobs)
        refined = SublinearKMedian(
            n_clusters=3, refine=True, random_state=0
        )
        refined.fit(blobs)
        assert refined.cost_ <= plain.cost_ * 1.1

    def test_medians_are_data_points(self, blobs):
        result = SublinearKMedian(n_clusters=3, random_state=0).fit(blobs)
        rows = {tuple(r) for r in blobs}
        assert all(tuple(c) in rows for c in result.centers)

    def test_deterministic(self, blobs):
        a = SublinearKMedian(n_clusters=3, random_state=7).fit(blobs)
        b = SublinearKMedian(n_clusters=3, random_state=7).fit(blobs)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_exponent_controls_sample(self, blobs):
        small = SublinearKMedian(
            n_clusters=3, sample_exponent=0.4, random_state=0
        )
        small.fit(blobs)
        large = SublinearKMedian(
            n_clusters=3, sample_exponent=0.7, random_state=0
        )
        large.fit(blobs)
        assert small.sample_size_ < large.sample_size_

    def test_rejects_weights(self, blobs):
        with pytest.raises(ParameterError, match="sample_weight"):
            SublinearKMedian(n_clusters=2).fit(
                blobs, sample_weight=np.ones(1800)
            )

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            SublinearKMedian(n_clusters=0)
        with pytest.raises(ParameterError):
            SublinearKMedian(sample_exponent=0.0)
        with pytest.raises(ParameterError):
            SublinearKMedian(sample_factor=0.0)

    def test_tiny_dataset(self):
        pts = np.random.default_rng(0).random((5, 2))
        result = SublinearKMedian(n_clusters=2, random_state=0).fit(pts)
        assert result.n_clusters == 2
