"""Oracle test: the heap/pool CURE against a brute-force reference.

The optimised implementation maintains nearest-neighbour pointers
incrementally through merges; the reference recomputes every
cluster-to-cluster distance from scratch each round. On identical
inputs (and with outlier elimination off) the two must produce the
same partition.
"""

import numpy as np
import pytest

from repro.clustering import CureClustering
from repro.clustering.cure import select_scattered_points
from repro.utils.geometry import sq_distances_to

pytestmark = pytest.mark.slow


def _reference_cure(pts, n_clusters, n_reps, alpha):
    """Brute-force CURE: O(rounds * clusters^2) but unambiguous."""
    clusters = [
        {"members": [i], "mean": pts[i].copy(), "reps": pts[i : i + 1].copy()}
        for i in range(pts.shape[0])
    ]
    while len(clusters) > n_clusters:
        best = (np.inf, None, None)
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                d = np.sqrt(
                    sq_distances_to(
                        clusters[i]["reps"], clusters[j]["reps"]
                    ).min()
                )
                if d < best[0]:
                    best = (d, i, j)
        _, i, j = best
        a, b = clusters[i], clusters[j]
        members = a["members"] + b["members"]
        size_a, size_b = len(a["members"]), len(b["members"])
        mean = (size_a * a["mean"] + size_b * b["mean"]) / (size_a + size_b)
        scattered = select_scattered_points(pts[members], mean, n_reps)
        reps = scattered + alpha * (mean - scattered)
        merged = {"members": members, "mean": mean, "reps": reps}
        clusters = [
            c for k, c in enumerate(clusters) if k not in (i, j)
        ] + [merged]
    labels = np.empty(pts.shape[0], dtype=np.int64)
    order = sorted(range(len(clusters)),
                   key=lambda k: -len(clusters[k]["members"]))
    for new_id, k in enumerate(order):
        labels[clusters[k]["members"]] = new_id
    return labels


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("n_clusters", [2, 4])
def test_optimised_matches_reference(seed, n_clusters):
    rng = np.random.default_rng(seed)
    pts = rng.random((36, 2))
    fast = CureClustering(
        n_clusters=n_clusters,
        n_representatives=4,
        shrink_factor=0.3,
        remove_outliers=False,
    ).fit(pts)
    slow_labels = _reference_cure(pts, n_clusters, n_reps=4, alpha=0.3)
    # Same partition up to label permutation: compare co-membership.
    fast_co = fast.labels[:, None] == fast.labels[None, :]
    slow_co = slow_labels[:, None] == slow_labels[None, :]
    assert (fast_co == slow_co).all()


def test_pool_compaction_path():
    """Force repeated pool compaction and check the result stays sane."""
    rng = np.random.default_rng(3)
    blobs = np.vstack(
        [rng.normal(c, 0.03, size=(60, 2)) for c in ((0, 0), (2, 2), (0, 2))]
    )
    model = CureClustering(
        n_clusters=3, n_representatives=8, remove_outliers=False
    )
    # Shrink the initial pool so growth triggers compaction quickly.
    original = model._init_state

    def tiny_pool(pts):
        original(pts)
        keep = model._pool[: model._pool_used].copy()
        owners = model._owner[: model._pool_used].copy()
        cap = model._pool_used + 4  # nearly full from the start
        model._pool = np.empty((cap, pts.shape[1]))
        model._owner = np.full(cap, -1, dtype=np.int64)
        model._pool[: keep.shape[0]] = keep
        model._owner[: owners.shape[0]] = owners

    model._init_state = tiny_pool
    result = model.fit(blobs)
    assert sorted(result.sizes.tolist()) == [60, 60, 60]
