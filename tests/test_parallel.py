"""Tests for repro.parallel: n_jobs resolution, backend selection, the
order-preserving chunk map with counter aggregation, and the library-wide
determinism contract (byte-identical results for any worker count)."""

import os

import numpy as np
import pytest

from repro.core import DensityBiasedSampler, OnePassBiasedSampler
from repro.density import KernelDensityEstimator
from repro.exceptions import ParameterError
from repro.obs import Recorder, get_recorder, use_recorder
from repro.outliers import NestedLoopOutlierDetector
from repro.parallel import (
    N_JOBS_ENV,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    parallel_map_chunks,
    resolve_n_jobs,
    use_n_jobs,
)
from repro.utils.streams import DataStream


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv(N_JOBS_ENV, raising=False)
    monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)


class TestResolveNJobs:
    def test_default_is_serial(self, clean_env):
        assert resolve_n_jobs() == 1

    def test_explicit_wins(self, clean_env):
        assert resolve_n_jobs(3) == 3

    def test_negative_counts_from_machine(self, clean_env):
        assert resolve_n_jobs(-1) == (os.cpu_count() or 1)

    def test_very_negative_clamps_to_one(self, clean_env):
        assert resolve_n_jobs(-10_000) == 1

    def test_zero_rejected(self, clean_env):
        with pytest.raises(ParameterError):
            resolve_n_jobs(0)

    def test_env_variable(self, clean_env, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "5")
        assert resolve_n_jobs() == 5

    def test_env_variable_garbage_rejected(self, clean_env, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "lots")
        with pytest.raises(ParameterError):
            resolve_n_jobs()

    def test_ambient_default_beats_env(self, clean_env, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "5")
        with use_n_jobs(2):
            assert resolve_n_jobs() == 2
        assert resolve_n_jobs() == 5

    def test_explicit_beats_ambient(self, clean_env):
        with use_n_jobs(2):
            assert resolve_n_jobs(4) == 4

    def test_use_n_jobs_restores_on_exit(self, clean_env):
        with use_n_jobs(8):
            with use_n_jobs(None):
                assert resolve_n_jobs() == 1
            assert resolve_n_jobs() == 8
        assert resolve_n_jobs() == 1


class TestGetBackend:
    def test_serial_for_one_worker(self, clean_env):
        assert isinstance(get_backend(1), SerialBackend)

    def test_thread_is_default_parallel_kind(self, clean_env):
        backend = get_backend(4)
        assert isinstance(backend, ThreadBackend)
        assert backend.n_jobs == 4

    def test_explicit_process_kind(self, clean_env):
        assert isinstance(get_backend(2, "process"), ProcessBackend)

    def test_serial_kind_overrides_count(self, clean_env):
        assert isinstance(get_backend(4, "serial"), SerialBackend)

    def test_env_kind(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        assert isinstance(get_backend(2), ProcessBackend)

    def test_unknown_kind_rejected(self, clean_env):
        with pytest.raises(ParameterError):
            get_backend(2, "gpu")

    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_map_preserves_order(self, clean_env, kind):
        backend = get_backend(4, kind)
        items = list(range(23))
        assert backend.map(_square, items) == [i * i for i in items]


def _square(x):
    return x * x


def _count_and_double(chunk):
    get_recorder().count("rows_seen", int(chunk.shape[0]))
    return chunk * 2.0


class TestParallelMapChunks:
    def test_results_keep_submission_order(self, clean_env):
        chunks = [np.full(3, i, dtype=float) for i in range(17)]
        results = parallel_map_chunks(_count_and_double, chunks, n_jobs=4)
        merged = np.concatenate(results)
        expected = np.concatenate([c * 2.0 for c in chunks])
        np.testing.assert_array_equal(merged, expected)

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_worker_counters_merge_into_ambient(self, clean_env, n_jobs):
        chunks = [np.ones(5), np.ones(7), np.ones(11)]
        recorder = Recorder()
        with use_recorder(recorder):
            parallel_map_chunks(_count_and_double, chunks, n_jobs=n_jobs)
        assert recorder.counters["rows_seen"] == 23

    def test_process_backend_smoke(self, clean_env):
        chunks = [np.arange(4, dtype=float), np.arange(4, 9, dtype=float)]
        results = parallel_map_chunks(
            _count_and_double, chunks, n_jobs=2, backend="process"
        )
        np.testing.assert_array_equal(results[0], np.arange(4) * 2.0)
        np.testing.assert_array_equal(results[1], np.arange(4, 9) * 2.0)


@pytest.fixture(scope="module")
def blob_data():
    rng = np.random.default_rng(11)
    dense = rng.normal(0.0, 0.05, size=(4000, 2))
    sparse = rng.uniform(-2.0, 2.0, size=(4000, 2))
    return np.vstack([dense, sparse])


def _run_recorded(fn):
    """Run ``fn`` under a fresh recorder; return (result, counters)."""
    recorder = Recorder()
    with use_recorder(recorder):
        result = fn()
    return result, dict(recorder.counters)


class TestNJobsEquivalence:
    """The hard requirement: byte-identical results for any n_jobs."""

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_kde_evaluate(self, blob_data, n_jobs):
        queries = blob_data[:5000]

        def run(jobs):
            kde = KernelDensityEstimator(
                n_kernels=400, random_state=0, n_jobs=jobs
            ).fit(blob_data)
            return _run_recorded(lambda: kde.evaluate(queries))

        serial, serial_counters = run(1)
        parallel, parallel_counters = run(n_jobs)
        np.testing.assert_array_equal(serial, parallel)
        assert serial_counters == parallel_counters

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_biased_sampler(self, blob_data, n_jobs):
        def run(jobs):
            sampler = DensityBiasedSampler(
                sample_size=500, exponent=0.75, random_state=3, n_jobs=jobs
            )
            stream = DataStream(blob_data, chunk_size=1024)
            return _run_recorded(lambda: sampler.sample(None, stream=stream))

        serial, serial_counters = run(1)
        parallel, parallel_counters = run(n_jobs)
        np.testing.assert_array_equal(serial.indices, parallel.indices)
        np.testing.assert_array_equal(serial.points, parallel.points)
        np.testing.assert_array_equal(
            serial.probabilities, parallel.probabilities
        )
        assert serial.expected_size == parallel.expected_size
        assert serial_counters == parallel_counters

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_onepass_sampler(self, blob_data, n_jobs):
        def run(jobs):
            sampler = OnePassBiasedSampler(
                sample_size=400, exponent=1.0, random_state=5, n_jobs=jobs
            )
            stream = DataStream(blob_data, chunk_size=1024)
            return _run_recorded(lambda: sampler.sample(None, stream=stream))

        serial, serial_counters = run(1)
        parallel, parallel_counters = run(n_jobs)
        np.testing.assert_array_equal(serial.indices, parallel.indices)
        np.testing.assert_array_equal(serial.points, parallel.points)
        np.testing.assert_array_equal(
            serial.probabilities, parallel.probabilities
        )
        assert serial_counters == parallel_counters

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_nested_loop_detector(self, n_jobs):
        rng = np.random.default_rng(9)
        data = np.vstack(
            [rng.normal(0.0, 0.1, size=(900, 2)), rng.uniform(-4, 4, (30, 2))]
        )

        def run(jobs):
            detector = NestedLoopOutlierDetector(
                k=1.0, fraction=0.97, block_size=128, n_jobs=jobs
            )
            return _run_recorded(lambda: detector.detect(data))

        serial, serial_counters = run(1)
        parallel, parallel_counters = run(n_jobs)
        np.testing.assert_array_equal(serial.indices, parallel.indices)
        np.testing.assert_array_equal(
            serial.neighbor_counts, parallel.neighbor_counts
        )
        assert serial_counters == parallel_counters

    def test_ambient_n_jobs_reaches_sampler(self, blob_data, clean_env):
        serial = DensityBiasedSampler(
            sample_size=300, exponent=1.0, random_state=1
        ).sample(blob_data)
        with use_n_jobs(4):
            parallel = DensityBiasedSampler(
                sample_size=300, exponent=1.0, random_state=1
            ).sample(blob_data)
        np.testing.assert_array_equal(serial.indices, parallel.indices)

    def test_env_n_jobs_reaches_sampler(self, blob_data, monkeypatch):
        serial = DensityBiasedSampler(
            sample_size=300, exponent=1.0, random_state=1
        ).sample(blob_data)
        monkeypatch.setenv(N_JOBS_ENV, "2")
        parallel = DensityBiasedSampler(
            sample_size=300, exponent=1.0, random_state=1
        ).sample(blob_data)
        np.testing.assert_array_equal(serial.indices, parallel.indices)


class TestWorkerContextRestore:
    """A task's worker-local context must never outlive the task.

    ``_run_task`` installs the captured fault policy, a private
    recorder and ``n_jobs=1``; all three installations are token-based
    and reset in a ``finally``, so the coordinator's ambient context is
    restored even when the task raises (regression: a leaked context
    would make the thread/serial backends observe worker state after
    the fan-in).
    """

    def _ambient(self):
        from repro.faults.policy import get_fault_policy

        return (get_recorder(), get_fault_policy(), resolve_n_jobs())

    def test_run_task_restores_ambient_context(self, clean_env):
        from repro.faults.policy import RowQuarantine, use_fault_policy
        from repro.parallel.map import _run_task

        outer = Recorder()
        policy = RowQuarantine("strict")
        with use_recorder(outer), use_fault_policy(policy), use_n_jobs(3):
            before = self._ambient()
            result, state = _run_task(
                lambda chunk: chunk * 2, RowQuarantine("quarantine"), False, 1, (0, 21)
            )
            assert result == 42
            assert self._ambient() == before
            assert get_recorder() is outer

    def test_run_task_restores_context_when_task_raises(self, clean_env):
        from repro.faults.policy import RowQuarantine, use_fault_policy
        from repro.parallel.map import _run_task

        outer = Recorder()
        policy = RowQuarantine("strict")

        def explode(chunk):
            raise RuntimeError("task failure")

        with use_recorder(outer), use_fault_policy(policy), use_n_jobs(3):
            before = self._ambient()
            with pytest.raises(RuntimeError, match="task failure"):
                _run_task(explode, RowQuarantine("quarantine"), False, 1, (0, 1))
            assert self._ambient() == before
            assert get_recorder() is outer

    def test_failed_fan_out_leaves_callers_context(self, clean_env):
        outer = Recorder()

        def explode(chunk):
            raise ValueError("poison chunk")

        with use_recorder(outer):
            with pytest.raises(ValueError, match="poison chunk"):
                parallel_map_chunks(
                    explode, [1, 2, 3], n_jobs=2, backend="thread"
                )
            assert get_recorder() is outer
            assert resolve_n_jobs() == 1
