"""End-to-end integration tests across packages.

Each test runs the paper's full pipeline on a small-but-realistic
workload and asserts the *qualitative* claim the paper makes — the same
claims the benchmarks measure at larger scale.
"""

import numpy as np
import pytest

from repro.clustering import Birch, CureClustering, assign_to_clusters
from repro.core import DensityBiasedSampler, UniformSampler
from repro.datasets import (
    cure_dataset1,
    make_clustered_dataset,
    make_outlier_dataset,
    northeast_dataset,
)
from repro.evaluation import (
    birch_found_clusters,
    count_found_clusters,
    noise_fraction_in_sample,
    outlier_precision_recall,
)
from repro.outliers import ApproximateOutlierDetector, IndexedOutlierDetector
from repro.utils.streams import DataStream


class TestClusteringPipeline:
    def test_biased_beats_uniform_under_heavy_noise(self):
        """The Figure 4 headline at small scale."""
        data = make_clustered_dataset(
            n_points=20_000,
            n_clusters=8,
            noise_fraction=0.8,
            density_ratio=3.0,
            random_state=5,
        )
        budget = 500
        biased = DensityBiasedSampler(
            sample_size=budget, exponent=1.0, random_state=0
        ).sample(data.points)
        uniform = UniformSampler(budget, random_state=0).sample(data.points)
        found_biased = count_found_clusters(
            CureClustering(n_clusters=8).fit(biased.points), data.clusters
        )
        found_uniform = count_found_clusters(
            CureClustering(n_clusters=8).fit(uniform.points), data.clusters
        )
        assert found_biased > found_uniform

    def test_negative_exponent_finds_sparse_clusters(self):
        """The Figure 5 headline: with small sparse clusters dominated
        by large dense ones, a = -0.25 recovers what uniform loses."""
        from repro.datasets import make_fig5_dataset
        from repro.experiments._common import run_biased, run_uniform

        data = make_fig5_dataset(
            n_dims=2, noise_fraction=0.1, n_points=30_000, random_state=2
        )
        budget = 600  # small enough that uniform misses small clusters
        biased = run_biased(
            data, budget, exponent=-0.25, n_clusters=10, seed=0, n_seeds=3
        )
        uniform = run_uniform(data, budget, n_clusters=10, seed=0, n_seeds=3)
        assert biased > uniform

    def test_cure_dataset_full_pipeline(self):
        """Figure 3 end to end, including full-dataset label assignment."""
        data = cure_dataset1(n_points=20_000, random_state=0)
        sample = DensityBiasedSampler(
            sample_size=600, exponent=0.5, random_state=0
        ).sample(data.points)
        clustering = CureClustering(n_clusters=5).fit(sample.points)
        assert count_found_clusters(clustering, data.clusters) >= 4
        labels = assign_to_clusters(data.points, clustering)
        assert labels.shape == (data.n_points,)
        # The big circle (true label 0) must map dominantly to one
        # found cluster.
        big = labels[data.labels == 0]
        assert (big == np.bincount(big).argmax()).mean() > 0.8

    def test_birch_full_dataset_comparison(self):
        data = make_clustered_dataset(
            n_points=15_000, n_clusters=5, noise_fraction=0.1, random_state=1
        )
        result = Birch(n_clusters=5, max_leaf_entries=300).fit(data.points)
        assert len(birch_found_clusters(result, data.clusters)) >= 3

    def test_noise_suppression_mechanism(self):
        """Why Figure 4 works: a=1 strips noise from the sample."""
        data = make_clustered_dataset(
            n_points=10_000, n_clusters=5, noise_fraction=0.6, random_state=3
        )
        biased = DensityBiasedSampler(
            sample_size=400, exponent=1.0, random_state=0
        ).sample(data.points)
        uniform = UniformSampler(400, random_state=0).sample(data.points)
        assert (
            noise_fraction_in_sample(biased, data)
            < 0.5 * noise_fraction_in_sample(uniform, data)
        )

    def test_geospatial_metro_recovery(self):
        data = northeast_dataset(n_points=30_000, random_state=0)
        sample = DensityBiasedSampler(
            sample_size=600, exponent=1.0, random_state=0
        ).sample(data.points)
        clustering = CureClustering(n_clusters=5).fit(sample.points)
        assert count_found_clusters(clustering, data.clusters) >= 2


class TestOutlierPipeline:
    def test_full_detection_with_pass_budget(self):
        data = make_outlier_dataset(
            n_points=8000, n_outliers=15, random_state=4
        )
        stream = DataStream(data.points)
        result = ApproximateOutlierDetector(
            k=data.guaranteed_radius, p=0, random_state=0
        ).detect(None, stream=stream)
        precision, recall = outlier_precision_recall(
            result.indices, data.outlier_indices
        )
        assert recall == 1.0
        assert precision == pytest.approx(1.0, abs=0.3)
        assert stream.passes <= 3

    def test_agreement_with_exact_on_geospatial(self):
        data = northeast_dataset(n_points=10_000, random_state=1)
        k, p = 0.03, 1
        exact = IndexedOutlierDetector(k=k, p=p).detect(data.points)
        approx = ApproximateOutlierDetector(
            k=k, p=p, random_state=0
        ).detect(data.points)
        precision, recall = outlier_precision_recall(
            approx.indices, exact.indices
        )
        assert precision == 1.0  # verification is exact
        assert recall > 0.8


class TestSamplerContracts:
    def test_all_samplers_share_result_type(self):
        from repro.baselines import GridBiasedSampler
        from repro.core import OnePassBiasedSampler

        data = make_clustered_dataset(
            n_points=5000, n_clusters=3, random_state=0
        ).points
        samplers = [
            DensityBiasedSampler(sample_size=100, random_state=0),
            OnePassBiasedSampler(sample_size=100, random_state=0),
            UniformSampler(100, random_state=0),
            GridBiasedSampler(sample_size=100, random_state=0),
        ]
        for sampler in samplers:
            sample = sampler.sample(data)
            assert sample.points.shape[0] == sample.indices.shape[0]
            assert (sample.probabilities > 0).all()
            assert sample.n_source == 5000
            np.testing.assert_array_equal(
                sample.points, data[sample.indices]
            )
