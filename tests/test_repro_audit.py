"""Tests for tools/repro_audit: every rule positive + negative +
suppression, why-traces, the SARIF reporter (validated against an
embedded SARIF 2.1.0 subset schema), the CLI exit codes, and the tier
gates that pin ``src/repro`` audit-clean and the samplers' static pass
counts."""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.astkit import build_model, collect_python_files  # noqa: E402
from tools.repro_audit import audit_paths, iter_rules  # noqa: E402
from tools.repro_audit.__main__ import main  # noqa: E402
from tools.repro_audit.graph import CallGraph  # noqa: E402
from tools.repro_audit.reporting import render_json, render_sarif  # noqa: E402
from tools.repro_audit.rules_passes import entry_pass_counts  # noqa: E402
from tools.repro_audit.rules_space import (  # noqa: E402
    B,
    CHUNK,
    CONST,
    M,
    N,
    UNBOUNDED,
    entry_space_bounds,
    parse_bound,
)


def audit_snippet(tmp_path: Path, source: str, *, select=None, name="mod.py"):
    """Write ``source`` to a scratch module and audit it."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return audit_paths([path], select=select)


def codes(findings) -> list[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# RA001 — pass-count audit
# ---------------------------------------------------------------------------


ONE_SCAN_SAMPLER = """
    class GoodSampler:
        '''One-scan sampler.

        Dataset passes: 1

        Memory: O(n)
        '''

        __n_passes__ = 1
        __space__ = "O(n)"

        def sample(self, data=None, *, stream=None):
            out = []
            for chunk in stream:
                out.append(chunk)
            return out
    """


class TestRA001:
    def test_declared_matching_scan_count_clean(self, tmp_path):
        assert audit_snippet(tmp_path, ONE_SCAN_SAMPLER, select=["RA001"]) == []

    def test_mismatched_declaration_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class DoubleScan:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    for chunk in stream:
                        pass
                    for chunk in stream:
                        pass
            """,
            select=["RA001"],
        )
        assert codes(found) == ["RA001"]
        assert "__n_passes__ declares 1" in found[0].message
        assert "2" in found[0].message

    def test_missing_declaration_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Undeclared:
                def sample(self, data=None, *, stream=None):
                    for chunk in stream:
                        pass
            """,
            select=["RA001"],
        )
        assert codes(found) == ["RA001"]
        assert "no __n_passes__" in found[0].message

    def test_scan_inside_loop_unbounded(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Rescanner:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    while True:
                        for chunk in stream:
                            pass
            """,
            select=["RA001"],
        )
        assert any("unbounded" in f.message for f in found)

    def test_cross_function_scan_carries_why_trace(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _drain(source):
                for chunk in source:
                    pass

            class Delegating:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    _drain(stream)
                    _drain(stream)
            """,
            select=["RA001"],
        )
        assert codes(found) == ["RA001"]
        # The mismatch finding explains *where* the scans are via the
        # call-graph trace: the hops reach the helper's scan on line 3.
        assert found[0].trace
        assert any("mod.py:3" in hop for hop in found[0].trace)

    def test_docstring_drift_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Drifted:
                '''Dataset passes: 2'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    for chunk in stream:
                        pass
            """,
            select=["RA001"],
        )
        assert codes(found) == ["RA001"]
        assert "Dataset passes: 2" in found[0].message
        assert found[0].anchor.endswith("__doc__")

    def test_branches_take_max_not_sum(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Either:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None, fast=True):
                    if fast:
                        for chunk in stream:
                            pass
                    else:
                        for chunk in stream:
                            pass
            """,
            select=["RA001"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA002 — parallel-determinism audit
# ---------------------------------------------------------------------------


class TestRA002:
    def test_rng_in_worker_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            import numpy as np

            def _worker(chunk):
                rng = np.random.default_rng()
                return rng.random(3)

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA002"],
        )
        assert "RA002" in codes(found)
        assert any("default_rng" in f.message for f in found)
        # The trace walks from the dispatch site into the worker.
        flagged = [f for f in found if "default_rng" in f.message][0]
        assert any("dispatched by" in hop for hop in flagged.trace)

    def test_pure_worker_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _worker(chunk):
                return chunk.sum()

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA002"],
        )
        assert found == []

    def test_context_installer_in_worker_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _worker(chunk):
                use_recorder(None)
                return chunk

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA002"],
        )
        assert codes(found) == ["RA002"]
        assert "use_recorder" in found[0].message

    def test_rng_outside_worker_not_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            import numpy as np

            def _worker(chunk):
                return chunk.sum()

            def run(chunks, seed):
                rng = np.random.default_rng(seed)
                order = rng.permutation(len(chunks))
                return parallel_map_chunks(_worker, [chunks[i] for i in order])
            """,
            select=["RA002"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA003 — exception-contract audit
# ---------------------------------------------------------------------------


class TestRA003:
    def test_give_up_inheriting_oserror_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(OSError):
                pass
            """,
            select=["RA003"],
        )
        assert codes(found) == ["RA003"]
        assert "OSError" in found[0].message

    def test_give_up_outside_os_hierarchy_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass
            """,
            select=["RA003"],
        )
        assert found == []

    def test_except_oserror_wrapping_give_up_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass

            def read_all(path):
                try:
                    raise StreamReadError("retries exhausted")
                except OSError:
                    return None
            """,
            select=["RA003"],
        )
        assert codes(found) == ["RA003"]
        assert "except OSError" in found[0].message

    def test_except_oserror_around_plain_io_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass

            def read_all(path):
                try:
                    return open(path).read()
                except OSError:
                    return None
            """,
            select=["RA003"],
        )
        assert found == []

    def test_swallowed_give_up_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass

            def read_all(path):
                try:
                    raise StreamReadError("retries exhausted")
                except StreamReadError:
                    return None
            """,
            select=["RA003"],
        )
        assert codes(found) == ["RA003"]
        assert "swallow" in found[0].message

    def test_reraised_give_up_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass

            def read_all(path):
                try:
                    raise StreamReadError("retries exhausted")
                except StreamReadError:
                    raise
            """,
            select=["RA003"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA004 — counter-schema audit
# ---------------------------------------------------------------------------


class TestRA004:
    def test_unregistered_increment_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            COUNTER_SCHEMA = {"rows_seen": None}

            def f(rec):
                rec.count("rows_seen", 1)
                rec.count("mystery_counter", 1)
            """,
            select=["RA004"],
        )
        assert codes(found) == ["RA004"]
        assert "mystery_counter" in found[0].message
        assert found[0].anchor == "mystery_counter"
        assert found[0].trace  # names the incrementing function

    def test_dead_registry_entry_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            COUNTER_SCHEMA = {"rows_seen": None, "never_bumped": None}

            def f(rec):
                rec.count("rows_seen", 1)
            """,
            select=["RA004"],
        )
        assert codes(found) == ["RA004"]
        assert "never_bumped" in found[0].message

    def test_missing_registry_flagged_once(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def f(rec):
                rec.count("rows_seen", 1)
                rec.count("cols_seen", 1)
            """,
            select=["RA004"],
        )
        assert codes(found) == ["RA004"]
        assert "no COUNTER_SCHEMA" in found[0].message

    def test_annotated_registry_binding_recognised(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            COUNTER_SCHEMA: dict = {"rows_seen": None}

            def f(rec):
                rec.count("rows_seen", 1)
            """,
            select=["RA004"],
        )
        assert found == []

    def test_str_count_lookalike_ignored(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            COUNTER_SCHEMA = {"rows_seen": None}

            def f(rec, text):
                rec.count("rows_seen", 1)
                return "abc".count("a") + [1, 2].count(1)
            """,
            select=["RA004"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA008 — histogram-schema audit
# ---------------------------------------------------------------------------


class TestRA008:
    def test_unregistered_observation_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            HISTOGRAM_SCHEMA = {"chunk_seconds": None}

            def f(rec):
                rec.observe("chunk_seconds", 0.1)
                rec.observe("mystery_histogram", 0.1)
            """,
            select=["RA008"],
        )
        assert codes(found) == ["RA008"]
        assert "mystery_histogram" in found[0].message
        assert found[0].anchor == "mystery_histogram"
        assert found[0].trace  # names the observing function

    def test_dead_registry_entry_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            HISTOGRAM_SCHEMA = {"chunk_seconds": None, "never_observed": None}

            def f(rec):
                rec.observe("chunk_seconds", 0.1)
            """,
            select=["RA008"],
        )
        assert codes(found) == ["RA008"]
        assert "never_observed" in found[0].message

    def test_missing_registry_flagged_once(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def f(rec):
                rec.observe("chunk_seconds", 0.1)
                rec.observe("chunk_rows", 4)
            """,
            select=["RA008"],
        )
        assert codes(found) == ["RA008"]
        assert "no HISTOGRAM_SCHEMA" in found[0].message

    def test_registered_observation_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            HISTOGRAM_SCHEMA = {"chunk_seconds": None}

            def f(rec):
                rec.observe("chunk_seconds", 0.1)
            """,
            select=["RA008"],
        )
        assert found == []

    def test_suppression_comment_honoured(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # repro-audit: disable=RA008
            HISTOGRAM_SCHEMA = {"chunk_seconds": None}

            def f(rec):
                rec.observe("off_the_books", 0.1)
            """,
            select=["RA008"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA005 — space-complexity audit
# ---------------------------------------------------------------------------


class TestParseBound:
    def test_components_join_to_max(self):
        assert parse_bound("O(1)") == CONST
        assert parse_bound("O(b)") == B
        assert parse_bound("O(b + m)") == M
        assert parse_bound("O(m + chunk)") == CHUNK
        assert parse_bound("O(n)") == N
        assert parse_bound("unbounded") == UNBOUNDED

    def test_unknown_component_is_none(self):
        assert parse_bound("O(n log n)") is None
        assert parse_bound("linear") is None


class TestRA005:
    def test_declared_matching_bound_clean(self, tmp_path):
        assert (
            audit_snippet(tmp_path, ONE_SCAN_SAMPLER, select=["RA005"]) == []
        )

    def test_missing_declaration_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Undeclared:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    return stream.materialize()
            """,
            select=["RA005"],
        )
        assert codes(found) == ["RA005"]
        assert "no __space__ declaration" in found[0].message
        # The message carries the statically propagated bound so the
        # fix is copy-pasteable.
        assert "O(n)" in found[0].message

    def test_overclaimed_bound_flagged_with_alloc_trace(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Overclaiming:
                '''Memory: O(b)'''

                __space__ = "O(b)"

                def sample(self, data=None, *, stream=None):
                    return stream.materialize()
            """,
            select=["RA005"],
        )
        assert codes(found) == ["RA005"]
        assert "declares O(b)" in found[0].message
        assert any("materialize" in hop for hop in found[0].trace)

    def test_per_phase_dict_declaration_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class PhasedSampler:
                '''Phased sampler.

                Memory: O(n)
                '''

                __space__ = {"fit": "O(m)", "draw": "O(n)"}

                def sample(self, data=None, *, stream=None):
                    recorder = get_recorder()
                    with recorder.phase("fit"):
                        table = np.zeros(self.n_buckets)
                        for chunk in stream:
                            pass
                    with recorder.phase("draw"):
                        rows = stream.materialize()
                    return rows
            """,
            select=["RA005"],
        )
        assert found == []

    def test_per_phase_dict_mismatch_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class PhasedSampler:
                '''Memory: O(m)'''

                __space__ = {"fit": "O(m)", "draw": "O(m)"}

                def sample(self, data=None, *, stream=None):
                    recorder = get_recorder()
                    with recorder.phase("fit"):
                        table = np.zeros(self.n_buckets)
                    with recorder.phase("draw"):
                        rows = stream.materialize()
                    return rows
            """,
            select=["RA005"],
        )
        assert codes(found) == ["RA005"]
        assert "draw=O(m)" in found[0].message

    def test_masked_selection_charged_expected_size(self, tmp_path):
        # The expected-size rule: accumulating chunk[keep] where keep is
        # a boolean mask is O(b), so the whole draw stays O(b + chunk).
        found = audit_snippet(
            tmp_path,
            """
            class Bernoulli:
                '''Memory: O(b + chunk)'''

                __space__ = "O(b + chunk)"

                def sample(self, data=None, *, stream=None):
                    parts = []
                    for chunk in stream:
                        probs = rng.random(chunk.shape[0])
                        keep = probs < 0.5
                        parts.append(chunk[keep])
                    return np.vstack(parts)
            """,
            select=["RA005"],
        )
        assert found == []

    def test_docstring_memory_line_required(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class NoDocLine:
                '''A sampler with no memory line.'''

                __space__ = "O(n)"

                def sample(self, data=None, *, stream=None):
                    return stream.materialize()
            """,
            select=["RA005"],
        )
        assert codes(found) == ["RA005"]
        assert 'a "Memory: O(n)" line' in found[0].message

    def test_docstring_drift_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Drifted:
                '''Memory: O(b)'''

                __space__ = "O(n)"

                def sample(self, data=None, *, stream=None):
                    return stream.materialize()
            """,
            select=["RA005"],
        )
        assert codes(found) == ["RA005"]
        assert "__space__ joins to O(n)" in found[0].message

    def test_malformed_declaration_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Malformed:
                '''Memory: O(n)'''

                __space__ = "whatever fits"

                def sample(self, data=None, *, stream=None):
                    return stream.materialize()
            """,
            select=["RA005"],
        )
        assert codes(found) == ["RA005"]
        assert 'must be an "O(...)" bound' in found[0].message

    def test_suppression(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # justified: fixture exercises the auditor itself
            # repro-audit: disable=RA005
            class Undeclared:
                def sample(self, data=None, *, stream=None):
                    return stream.materialize()
            """,
            select=["RA005"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA006 — quadratic-growth allocation audit
# ---------------------------------------------------------------------------


class TestRA006:
    def test_self_growing_concatenate_in_loop_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def grow(chunks):
                out = np.empty(0)
                for chunk in chunks:
                    out = np.concatenate([out, chunk])
                return out
            """,
            select=["RA006"],
        )
        assert codes(found) == ["RA006"]
        assert "grows its own operand 'out'" in found[0].message

    def test_vstack_in_stream_loop_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class S:
                def sample(self, data=None, *, stream=None):
                    parts = []
                    for chunk in stream:
                        parts = np.vstack([parts, chunk])
                    return parts
            """,
            select=["RA006"],
        )
        assert codes(found) == ["RA006"]

    def test_concat_wrapping_dispatch_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def collect(blocks):
                return np.concatenate(parallel_map_chunks(f, blocks))
            """,
            select=["RA006"],
        )
        assert codes(found) == ["RA006"]
        assert "preallocat" in found[0].message

    def test_single_post_loop_concat_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class S:
                '''Memory: O(n)'''

                __space__ = "O(n)"

                def sample(self, data=None, *, stream=None):
                    parts = []
                    for chunk in stream:
                        parts.append(chunk)
                    return np.vstack(parts)
            """,
            select=["RA006"],
        )
        assert found == []

    def test_list_append_lookalike_not_flagged(self, tmp_path):
        # ``parts.append(x)`` is amortised O(1) list growth, not the
        # two-argument np.append reallocation idiom.
        found = audit_snippet(
            tmp_path,
            """
            def gather(chunks):
                parts = []
                for chunk in chunks:
                    parts.append(chunk[chunk > 0])
                return parts
            """,
            select=["RA006"],
        )
        assert found == []

    def test_suppression(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # justified: fixture exercises the auditor itself
            # repro-audit: disable=RA006
            def grow(chunks):
                out = np.empty(0)
                for chunk in chunks:
                    out = np.concatenate([out, chunk])
                return out
            """,
            select=["RA006"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA007 — merge-safety contract audit
# ---------------------------------------------------------------------------


class TestRA007:
    def test_worker_mutation_without_combiner_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Estimator:
                def evaluate(self, chunk):
                    self.last_ = chunk
                    return chunk

            def run(est, blocks):
                return parallel_map_chunks(est.evaluate, blocks)
            """,
            select=["RA007"],
        )
        assert codes(found) == ["RA007"]
        assert "no merge-style combiner" in found[0].message
        assert "self.last_" in found[0].message

    def test_uncalled_combiner_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Estimator:
                def evaluate(self, chunk):
                    self.seen_ = chunk
                    return chunk

                def merge(self, other):
                    self.seen_ = self.seen_ + other.seen_

            def run(est, blocks):
                return parallel_map_chunks(est.evaluate, blocks)
            """,
            select=["RA007"],
        )
        assert codes(found) == ["RA007"]
        assert "never called" in found[0].message

    def test_called_combiner_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Estimator:
                def evaluate(self, chunk):
                    self.seen_ = chunk
                    return chunk

                def merge(self, other):
                    self.seen_ = self.seen_ + other.seen_

            def run(est, blocks):
                results = parallel_map_chunks(est.evaluate, blocks)
                for shard in results:
                    est.merge(shard)
                return est
            """,
            select=["RA007"],
        )
        assert found == []

    def test_pure_worker_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Estimator:
                def evaluate(self, chunk):
                    return chunk * 2.0

            def run(est, blocks):
                return parallel_map_chunks(est.evaluate, blocks)
            """,
            select=["RA007"],
        )
        assert found == []

    def test_dynamic_counter_name_in_worker_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Worker:
                def evaluate(self, chunk):
                    get_recorder().count(self.counter_name, chunk.shape[0])
                    return chunk

            def run(w, blocks):
                return parallel_map_chunks(w.evaluate, blocks)
            """,
            select=["RA007"],
        )
        assert codes(found) == ["RA007"]
        assert "dynamic name" in found[0].message

    def test_literal_counter_name_in_worker_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Worker:
                def evaluate(self, chunk):
                    get_recorder().count("kernel_evals", chunk.shape[0])
                    return chunk

            def run(w, blocks):
                return parallel_map_chunks(w.evaluate, blocks)
            """,
            select=["RA007"],
        )
        assert found == []

    def test_no_dispatch_sites_no_findings(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Estimator:
                def evaluate(self, chunk):
                    self.seen_ = chunk
                    return chunk
            """,
            select=["RA007"],
        )
        assert found == []

    def test_suppression(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # justified: fixture exercises the auditor itself
            # repro-audit: disable=RA007
            class Estimator:
                def evaluate(self, chunk):
                    self.last_ = chunk
                    return chunk

            def run(est, blocks):
                return parallel_map_chunks(est.evaluate, blocks)
            """,
            select=["RA007"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA009 — shared-state race audit
# ---------------------------------------------------------------------------


class TestRA009:
    def test_module_global_mutation_in_worker_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            RESULTS = []

            def _worker(chunk):
                RESULTS.append(chunk.sum())
                return chunk

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA009"],
        )
        assert codes(found) == ["RA009"]
        assert "RESULTS" in found[0].message
        assert any("dispatched by" in hop for hop in found[0].trace)

    def test_global_rebinding_in_worker_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            TOTAL = 0.0

            def _worker(chunk):
                global TOTAL
                TOTAL = TOTAL + chunk.sum()
                return chunk

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA009"],
        )
        assert codes(found) == ["RA009"]
        assert "TOTAL" in found[0].message

    def test_mutable_default_mutation_in_worker_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _worker(chunk, cache={}):
                cache[id(chunk)] = chunk.sum()
                return chunk

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA009"],
        )
        assert codes(found) == ["RA009"]
        assert "cache" in found[0].message

    def test_local_state_in_worker_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _worker(chunk):
                out = []
                out.append(chunk.sum())
                return out

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA009"],
        )
        assert found == []

    def test_coordinator_side_mutation_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            RESULTS = []

            def _worker(chunk):
                return chunk.sum()

            def run(chunks):
                for part in parallel_map_chunks(_worker, chunks):
                    RESULTS.append(part)
                return RESULTS
            """,
            select=["RA009"],
        )
        assert found == []

    def test_suppression(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # justified: fixture exercises the auditor itself
            # repro-audit: disable=RA009
            RESULTS = []

            def _worker(chunk):
                RESULTS.append(chunk.sum())
                return chunk

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA009"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA010 — RNG consumption-order audit
# ---------------------------------------------------------------------------


class TestRA010:
    def test_worker_draw_reachable_from_entry_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            import numpy as np

            def _worker(chunk):
                rng = np.random.default_rng(0)
                return rng.random(3)

            class Estimator:
                def fit(self, chunks):
                    return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA010"],
        )
        assert "RA010" in codes(found)
        assert any("fit" in f.message for f in found)

    def test_draw_under_nondeterministic_iteration_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            import os

            def draw(rng, root):
                out = []
                for name in os.listdir(root):
                    out.append(rng.random())
                return out
            """,
            select=["RA010"],
        )
        assert "RA010" in codes(found)
        assert any("listdir" in f.message for f in found)

    def test_draw_over_set_literal_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def sample(rng):
                return [rng.random() for mode in {"a", "b"}]
            """,
            select=["RA010"],
        )
        assert "RA010" in codes(found)

    def test_asymmetric_shard_branch_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def fit(data, rng, n_shards):
                if n_shards > 1:
                    return rng.normal(size=3)
                return rng.random(3)
            """,
            select=["RA010"],
        )
        assert "RA010" in codes(found)
        assert any("branch" in f.message for f in found)

    def test_symmetric_shard_branch_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def fit(data, rng, n_shards):
                if n_shards > 1:
                    return rng.random(3)
                return rng.random(5)
            """,
            select=["RA010"],
        )
        assert found == []

    def test_coordinator_draw_over_ordered_iterable_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _worker(chunk):
                return chunk.sum()

            def fit(rng, chunks):
                parts = parallel_map_chunks(_worker, chunks)
                return [rng.random() for part in parts]
            """,
            select=["RA010"],
        )
        assert found == []

    def test_suppression(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # justified: fixture exercises the auditor itself
            # repro-audit: disable=RA010
            import os

            def draw(rng, root):
                return [rng.random() for name in os.listdir(root)]
            """,
            select=["RA010"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA011 — must-release lifecycle audit
# ---------------------------------------------------------------------------


class TestRA011:
    def test_never_released_handle_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def read_all(path):
                f = open(path)
                data = f.read()
                return data
            """,
            select=["RA011"],
        )
        assert codes(found) == ["RA011"]
        assert "never closed" in found[0].message

    def test_exception_path_leak_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def read_all(path, limit):
                f = open(path)
                data = f.read(limit)
                f.close()
                return data
            """,
            select=["RA011"],
        )
        assert codes(found) == ["RA011"]
        assert "skips its release" in found[0].message

    def test_try_finally_release_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def read_all(path, limit):
                f = open(path)
                try:
                    return f.read(limit)
                finally:
                    f.close()
            """,
            select=["RA011"],
        )
        assert found == []

    def test_with_managed_acquire_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def read_all(path):
                with open(path) as f:
                    return f.read()
            """,
            select=["RA011"],
        )
        assert found == []

    def test_returned_handle_transfers_ownership(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def acquire(path):
                f = open(path)
                return f
            """,
            select=["RA011"],
        )
        assert found == []

    def test_park_on_releasing_owner_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Owner:
                def __init__(self, path):
                    f = open(path)
                    self._handle = f

                def close(self):
                    self._handle.close()
            """,
            select=["RA011"],
        )
        assert found == []

    def test_park_without_release_method_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Hoarder:
                def __init__(self, path):
                    f = open(path)
                    self._handle = f
            """,
            select=["RA011"],
        )
        assert codes(found) == ["RA011"]
        assert "no release" in found[0].message

    def test_suppression(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # justified: fixture exercises the auditor itself
            # repro-audit: disable=RA011
            def read_all(path):
                f = open(path)
                return f.read()
            """,
            select=["RA011"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# Suppression + syntax handling
# ---------------------------------------------------------------------------


class TestRunner:
    def test_file_level_suppression(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # justified: fixture exercises the auditor itself
            # repro-audit: disable=RA001
            class Undeclared:
                def sample(self, data=None, *, stream=None):
                    for chunk in stream:
                        pass
            """,
            select=["RA001"],
        )
        assert found == []

    def test_suppression_is_per_rule(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # repro-audit: disable=RA004
            class StreamReadError(OSError):
                pass
            """,
            select=["RA003"],
        )
        assert codes(found) == ["RA003"]

    def test_syntax_error_reported_not_fatal(self, tmp_path):
        found = audit_snippet(tmp_path, "def broken(:\n    pass\n")
        assert codes(found) == ["RA000"]


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


#: Subset of the SARIF 2.1.0 schema: the structural properties GitHub
#: code scanning requires of an upload. Embedded so validation needs no
#: network access.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                            }
                                        },
                                    },
                                },
                                "codeFlows": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["threadFlows"],
                                    },
                                },
                                "partialFingerprints": {"type": "object"},
                            },
                        },
                    },
                },
            },
        },
    },
}


def _sample_findings(tmp_path):
    return audit_snippet(
        tmp_path,
        """
        class Undeclared:
            def sample(self, data=None, *, stream=None):
                for chunk in stream:
                    pass
        """,
        select=["RA001"],
    )


class TestReporters:
    def test_json_roundtrip(self, tmp_path):
        found = _sample_findings(tmp_path)
        payload = json.loads(render_json(found))
        assert payload["count"] == len(found) > 0
        assert payload["findings"][0]["rule"] == "RA001"

    def test_sarif_validates_against_subset_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        found = _sample_findings(tmp_path)
        log = json.loads(render_sarif(found, iter_rules()))
        jsonschema.validate(log, SARIF_SUBSET_SCHEMA)

    def test_sarif_carries_fingerprints_and_rule_ids(self, tmp_path):
        found = _sample_findings(tmp_path)
        log = json.loads(render_sarif(found, iter_rules()))
        run = log["runs"][0]
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= {
            "RA001",
            "RA002",
            "RA003",
            "RA004",
            "RA005",
            "RA006",
            "RA007",
            "RA008",
            "RA009",
            "RA010",
            "RA011",
        }
        result = run["results"][0]
        assert result["ruleId"] == "RA001"
        assert "reproAudit/v1" in result["partialFingerprints"]

    def test_sarif_code_flow_mirrors_trace(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _drain(source):
                for chunk in source:
                    pass

            class Delegating:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    _drain(stream)
                    _drain(stream)
            """,
            select=["RA001"],
        )
        log = json.loads(render_sarif(found, iter_rules()))
        result = log["runs"][0]["results"][0]
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        # One location per trace hop plus the terminal finding location.
        assert len(locations) == len(found[0].trace) + 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text(textwrap.dedent(ONE_SCAN_SAMPLER))
        assert main([str(path), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("class StreamReadError(OSError):\n    pass\n")
        assert main([str(path), "--no-baseline"]) == 1
        assert "RA003" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("x = 1\n")
        assert main([str(path), "--select", "RA999"]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "absent.py")]) == 2

    def test_baseline_accepts_existing_findings(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("class StreamReadError(OSError):\n    pass\n")
        baseline = tmp_path / "baseline.txt"
        assert main([str(path), "--baseline", str(baseline), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main([str(path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_sarif_output_to_file(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("class StreamReadError(OSError):\n    pass\n")
        out = tmp_path / "audit.sarif"
        assert (
            main(
                [
                    str(path),
                    "--no-baseline",
                    "--format",
                    "sarif",
                    "--output",
                    str(out),
                ]
            )
            == 1
        )
        assert json.loads(out.read_text())["version"] == "2.1.0"


# ---------------------------------------------------------------------------
# Tier gates on the real tree
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def src_graph():
    project, issues = build_model(
        collect_python_files([REPO_ROOT / "src" / "repro"]),
        tool="repro-audit",
    )
    assert issues == []
    return CallGraph(project)


class TestSrcRepro:
    def test_src_repro_is_audit_clean(self):
        assert audit_paths([REPO_ROOT / "src" / "repro"]) == []

    def test_one_pass_sampler_fit_is_statically_one_scan(self, src_graph):
        counts = entry_pass_counts(src_graph, "OnePassBiasedSampler")
        assert counts["fit_density"] == 1
        assert counts == {
            "fit_density": 1,
            "estimate_normalizer": 1,
            "draw": 1,
        }

    def test_two_pass_sampler_totals_three_scans(self, src_graph):
        # The pipeline's documented data_passes == 4 is these three
        # sampler scans plus the full-dataset cluster-assignment pass
        # (pinned at runtime in tests/test_obs.py).
        counts = entry_pass_counts(src_graph, "DensityBiasedSampler")
        assert sum(counts.values()) == 3

    def test_kde_fit_is_one_scan(self, src_graph):
        assert entry_pass_counts(src_graph, "KernelDensityEstimator") == {
            None: 1
        }

    def test_tree_fit_is_two_scans(self, src_graph):
        # Bounds pass + counting pass, exactly as the estimator's
        # docstring declares (and RA001 cross-checks).
        assert entry_pass_counts(src_graph, "TreeDensityEstimator") == {
            None: 2
        }

    def test_one_pass_sampler_fit_state_is_b_plus_m(self, src_graph):
        # The paper's memory claim, proven statically: the fit phases of
        # OnePassBiasedSampler.sample() allocate only O(b + m) state —
        # no O(n) node is reachable from them.
        bounds = entry_space_bounds(src_graph, "OnePassBiasedSampler")
        assert bounds["fit_density"] <= M
        assert bounds["estimate_normalizer"] <= M

    def test_one_pass_sampler_never_materialises_the_stream(self, src_graph):
        # Even the draw scan stays at one bounded window of chunks (the
        # draw_window sub-phase carries the estimator's O(m) state into
        # its parallel workers).
        bounds = entry_space_bounds(src_graph, "OnePassBiasedSampler")
        assert {k: v for k, v in bounds.items() if v > CONST} == {
            "fit_density": M,
            "estimate_normalizer": M,
            "draw": CHUNK,
            "draw_window": M,
        }
        assert max(bounds.values()) < N

    def test_two_pass_sampler_is_linear_by_design(self, src_graph):
        # The exact-normaliser baseline keeps every density: O(n), and
        # the analyzer sees it.
        bounds = entry_space_bounds(src_graph, "DensityBiasedSampler")
        assert bounds["eval_density"] == N

    def test_estimators_fit_in_summary_space(self, src_graph):
        for cls in (
            "KernelDensityEstimator",
            "GridDensityEstimator",
            "KnnDensityEstimator",
            "DctDensityEstimator",
            "WaveletDensityEstimator",
            "TreeDensityEstimator",
        ):
            bounds = entry_space_bounds(src_graph, cls)
            assert max(bounds.values()) == M, cls
