"""Tests for tools/repro_audit: every rule positive + negative +
suppression, why-traces, the SARIF reporter (validated against an
embedded SARIF 2.1.0 subset schema), the CLI exit codes, and the tier
gates that pin ``src/repro`` audit-clean and the samplers' static pass
counts."""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.astkit import build_model, collect_python_files  # noqa: E402
from tools.repro_audit import audit_paths, iter_rules  # noqa: E402
from tools.repro_audit.__main__ import main  # noqa: E402
from tools.repro_audit.graph import CallGraph  # noqa: E402
from tools.repro_audit.reporting import render_json, render_sarif  # noqa: E402
from tools.repro_audit.rules_passes import entry_pass_counts  # noqa: E402


def audit_snippet(tmp_path: Path, source: str, *, select=None, name="mod.py"):
    """Write ``source`` to a scratch module and audit it."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return audit_paths([path], select=select)


def codes(findings) -> list[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# RA001 — pass-count audit
# ---------------------------------------------------------------------------


ONE_SCAN_SAMPLER = """
    class GoodSampler:
        '''One-scan sampler.

        Dataset passes: 1
        '''

        __n_passes__ = 1

        def sample(self, data=None, *, stream=None):
            out = []
            for chunk in stream:
                out.append(chunk)
            return out
    """


class TestRA001:
    def test_declared_matching_scan_count_clean(self, tmp_path):
        assert audit_snippet(tmp_path, ONE_SCAN_SAMPLER, select=["RA001"]) == []

    def test_mismatched_declaration_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class DoubleScan:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    for chunk in stream:
                        pass
                    for chunk in stream:
                        pass
            """,
            select=["RA001"],
        )
        assert codes(found) == ["RA001"]
        assert "__n_passes__ declares 1" in found[0].message
        assert "2" in found[0].message

    def test_missing_declaration_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Undeclared:
                def sample(self, data=None, *, stream=None):
                    for chunk in stream:
                        pass
            """,
            select=["RA001"],
        )
        assert codes(found) == ["RA001"]
        assert "no __n_passes__" in found[0].message

    def test_scan_inside_loop_unbounded(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Rescanner:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    while True:
                        for chunk in stream:
                            pass
            """,
            select=["RA001"],
        )
        assert any("unbounded" in f.message for f in found)

    def test_cross_function_scan_carries_why_trace(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _drain(source):
                for chunk in source:
                    pass

            class Delegating:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    _drain(stream)
                    _drain(stream)
            """,
            select=["RA001"],
        )
        assert codes(found) == ["RA001"]
        # The mismatch finding explains *where* the scans are via the
        # call-graph trace: the hops reach the helper's scan on line 3.
        assert found[0].trace
        assert any("mod.py:3" in hop for hop in found[0].trace)

    def test_docstring_drift_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Drifted:
                '''Dataset passes: 2'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    for chunk in stream:
                        pass
            """,
            select=["RA001"],
        )
        assert codes(found) == ["RA001"]
        assert "Dataset passes: 2" in found[0].message
        assert found[0].anchor.endswith("__doc__")

    def test_branches_take_max_not_sum(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class Either:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None, fast=True):
                    if fast:
                        for chunk in stream:
                            pass
                    else:
                        for chunk in stream:
                            pass
            """,
            select=["RA001"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA002 — parallel-determinism audit
# ---------------------------------------------------------------------------


class TestRA002:
    def test_rng_in_worker_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            import numpy as np

            def _worker(chunk):
                rng = np.random.default_rng()
                return rng.random(3)

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA002"],
        )
        assert "RA002" in codes(found)
        assert any("default_rng" in f.message for f in found)
        # The trace walks from the dispatch site into the worker.
        flagged = [f for f in found if "default_rng" in f.message][0]
        assert any("dispatched by" in hop for hop in flagged.trace)

    def test_pure_worker_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _worker(chunk):
                return chunk.sum()

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA002"],
        )
        assert found == []

    def test_context_installer_in_worker_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _worker(chunk):
                use_recorder(None)
                return chunk

            def run(chunks):
                return parallel_map_chunks(_worker, chunks)
            """,
            select=["RA002"],
        )
        assert codes(found) == ["RA002"]
        assert "use_recorder" in found[0].message

    def test_rng_outside_worker_not_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            import numpy as np

            def _worker(chunk):
                return chunk.sum()

            def run(chunks, seed):
                rng = np.random.default_rng(seed)
                order = rng.permutation(len(chunks))
                return parallel_map_chunks(_worker, [chunks[i] for i in order])
            """,
            select=["RA002"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA003 — exception-contract audit
# ---------------------------------------------------------------------------


class TestRA003:
    def test_give_up_inheriting_oserror_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(OSError):
                pass
            """,
            select=["RA003"],
        )
        assert codes(found) == ["RA003"]
        assert "OSError" in found[0].message

    def test_give_up_outside_os_hierarchy_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass
            """,
            select=["RA003"],
        )
        assert found == []

    def test_except_oserror_wrapping_give_up_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass

            def read_all(path):
                try:
                    raise StreamReadError("retries exhausted")
                except OSError:
                    return None
            """,
            select=["RA003"],
        )
        assert codes(found) == ["RA003"]
        assert "except OSError" in found[0].message

    def test_except_oserror_around_plain_io_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass

            def read_all(path):
                try:
                    return open(path).read()
                except OSError:
                    return None
            """,
            select=["RA003"],
        )
        assert found == []

    def test_swallowed_give_up_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass

            def read_all(path):
                try:
                    raise StreamReadError("retries exhausted")
                except StreamReadError:
                    return None
            """,
            select=["RA003"],
        )
        assert codes(found) == ["RA003"]
        assert "swallow" in found[0].message

    def test_reraised_give_up_clean(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            class StreamReadError(Exception):
                pass

            def read_all(path):
                try:
                    raise StreamReadError("retries exhausted")
                except StreamReadError:
                    raise
            """,
            select=["RA003"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RA004 — counter-schema audit
# ---------------------------------------------------------------------------


class TestRA004:
    def test_unregistered_increment_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            COUNTER_SCHEMA = {"rows_seen": None}

            def f(rec):
                rec.count("rows_seen", 1)
                rec.count("mystery_counter", 1)
            """,
            select=["RA004"],
        )
        assert codes(found) == ["RA004"]
        assert "mystery_counter" in found[0].message
        assert found[0].anchor == "mystery_counter"
        assert found[0].trace  # names the incrementing function

    def test_dead_registry_entry_flagged(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            COUNTER_SCHEMA = {"rows_seen": None, "never_bumped": None}

            def f(rec):
                rec.count("rows_seen", 1)
            """,
            select=["RA004"],
        )
        assert codes(found) == ["RA004"]
        assert "never_bumped" in found[0].message

    def test_missing_registry_flagged_once(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def f(rec):
                rec.count("rows_seen", 1)
                rec.count("cols_seen", 1)
            """,
            select=["RA004"],
        )
        assert codes(found) == ["RA004"]
        assert "no COUNTER_SCHEMA" in found[0].message

    def test_annotated_registry_binding_recognised(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            COUNTER_SCHEMA: dict = {"rows_seen": None}

            def f(rec):
                rec.count("rows_seen", 1)
            """,
            select=["RA004"],
        )
        assert found == []

    def test_str_count_lookalike_ignored(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            COUNTER_SCHEMA = {"rows_seen": None}

            def f(rec, text):
                rec.count("rows_seen", 1)
                return "abc".count("a") + [1, 2].count(1)
            """,
            select=["RA004"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# Suppression + syntax handling
# ---------------------------------------------------------------------------


class TestRunner:
    def test_file_level_suppression(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # justified: fixture exercises the auditor itself
            # repro-audit: disable=RA001
            class Undeclared:
                def sample(self, data=None, *, stream=None):
                    for chunk in stream:
                        pass
            """,
            select=["RA001"],
        )
        assert found == []

    def test_suppression_is_per_rule(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            # repro-audit: disable=RA004
            class StreamReadError(OSError):
                pass
            """,
            select=["RA003"],
        )
        assert codes(found) == ["RA003"]

    def test_syntax_error_reported_not_fatal(self, tmp_path):
        found = audit_snippet(tmp_path, "def broken(:\n    pass\n")
        assert codes(found) == ["RA000"]


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


#: Subset of the SARIF 2.1.0 schema: the structural properties GitHub
#: code scanning requires of an upload. Embedded so validation needs no
#: network access.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                            }
                                        },
                                    },
                                },
                                "codeFlows": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["threadFlows"],
                                    },
                                },
                                "partialFingerprints": {"type": "object"},
                            },
                        },
                    },
                },
            },
        },
    },
}


def _sample_findings(tmp_path):
    return audit_snippet(
        tmp_path,
        """
        class Undeclared:
            def sample(self, data=None, *, stream=None):
                for chunk in stream:
                    pass
        """,
        select=["RA001"],
    )


class TestReporters:
    def test_json_roundtrip(self, tmp_path):
        found = _sample_findings(tmp_path)
        payload = json.loads(render_json(found))
        assert payload["count"] == len(found) > 0
        assert payload["findings"][0]["rule"] == "RA001"

    def test_sarif_validates_against_subset_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        found = _sample_findings(tmp_path)
        log = json.loads(render_sarif(found, iter_rules()))
        jsonschema.validate(log, SARIF_SUBSET_SCHEMA)

    def test_sarif_carries_fingerprints_and_rule_ids(self, tmp_path):
        found = _sample_findings(tmp_path)
        log = json.loads(render_sarif(found, iter_rules()))
        run = log["runs"][0]
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= {
            "RA001",
            "RA002",
            "RA003",
            "RA004",
        }
        result = run["results"][0]
        assert result["ruleId"] == "RA001"
        assert "reproAudit/v1" in result["partialFingerprints"]

    def test_sarif_code_flow_mirrors_trace(self, tmp_path):
        found = audit_snippet(
            tmp_path,
            """
            def _drain(source):
                for chunk in source:
                    pass

            class Delegating:
                '''Dataset passes: 1'''

                __n_passes__ = 1

                def sample(self, data=None, *, stream=None):
                    _drain(stream)
                    _drain(stream)
            """,
            select=["RA001"],
        )
        log = json.loads(render_sarif(found, iter_rules()))
        result = log["runs"][0]["results"][0]
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        # One location per trace hop plus the terminal finding location.
        assert len(locations) == len(found[0].trace) + 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text(textwrap.dedent(ONE_SCAN_SAMPLER))
        assert main([str(path), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("class StreamReadError(OSError):\n    pass\n")
        assert main([str(path), "--no-baseline"]) == 1
        assert "RA003" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("x = 1\n")
        assert main([str(path), "--select", "RA999"]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "absent.py")]) == 2

    def test_baseline_accepts_existing_findings(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("class StreamReadError(OSError):\n    pass\n")
        baseline = tmp_path / "baseline.txt"
        assert main([str(path), "--baseline", str(baseline), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main([str(path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_sarif_output_to_file(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("class StreamReadError(OSError):\n    pass\n")
        out = tmp_path / "audit.sarif"
        assert (
            main(
                [
                    str(path),
                    "--no-baseline",
                    "--format",
                    "sarif",
                    "--output",
                    str(out),
                ]
            )
            == 1
        )
        assert json.loads(out.read_text())["version"] == "2.1.0"


# ---------------------------------------------------------------------------
# Tier gates on the real tree
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def src_graph():
    project, issues = build_model(
        collect_python_files([REPO_ROOT / "src" / "repro"]),
        tool="repro-audit",
    )
    assert issues == []
    return CallGraph(project)


class TestSrcRepro:
    def test_src_repro_is_audit_clean(self):
        assert audit_paths([REPO_ROOT / "src" / "repro"]) == []

    def test_one_pass_sampler_fit_is_statically_one_scan(self, src_graph):
        counts = entry_pass_counts(src_graph, "OnePassBiasedSampler")
        assert counts["fit_density"] == 1
        assert counts == {
            "fit_density": 1,
            "estimate_normalizer": 1,
            "draw": 1,
        }

    def test_two_pass_sampler_totals_three_scans(self, src_graph):
        # The pipeline's documented data_passes == 4 is these three
        # sampler scans plus the full-dataset cluster-assignment pass
        # (pinned at runtime in tests/test_obs.py).
        counts = entry_pass_counts(src_graph, "DensityBiasedSampler")
        assert sum(counts.values()) == 3

    def test_kde_fit_is_one_scan(self, src_graph):
        assert entry_pass_counts(src_graph, "KernelDensityEstimator") == {
            None: 1
        }
