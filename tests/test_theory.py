"""Tests for the sample-size theory (section 2 / Theorem 1)."""

import numpy as np
import pytest

from repro.core import theory
from repro.exceptions import ParameterError


class TestUniformBound:
    def test_papers_example(self):
        """'to guarantee with probability 90% that a fraction 0.2 of a
        cluster with 1000 points is in the sample, we need to sample 25%
        of the dataset' (section 2)."""
        s = theory.uniform_sample_size(
            n=100_000, cluster_size=1000, eta=0.2, delta=0.1
        )
        assert 0.20 <= s / 100_000 <= 0.25

    def test_monotone_in_eta(self):
        lo = theory.uniform_sample_size(10_000, 500, 0.1, 0.1)
        hi = theory.uniform_sample_size(10_000, 500, 0.5, 0.1)
        assert hi > lo

    def test_monotone_in_confidence(self):
        loose = theory.uniform_sample_size(10_000, 500, 0.2, 0.2)
        tight = theory.uniform_sample_size(10_000, 500, 0.2, 0.01)
        assert tight > loose

    def test_smaller_clusters_need_bigger_samples(self):
        small = theory.uniform_sample_size(100_000, 200, 0.2, 0.1)
        large = theory.uniform_sample_size(100_000, 5000, 0.2, 0.1)
        assert small > large

    def test_validates_inputs(self):
        with pytest.raises(ParameterError):
            theory.uniform_sample_size(100, 200, 0.2, 0.1)
        with pytest.raises(ParameterError):
            theory.uniform_sample_size(100, 50, 1.5, 0.1)
        with pytest.raises(ParameterError):
            theory.uniform_sample_size(100, 50, 0.2, 0.0)


class TestTheorem1:
    def test_crossover_at_cluster_fraction(self):
        """s_R <= s exactly when p >= |u|/n."""
        n, u = 100_000, 1000
        s = theory.uniform_sample_size(n, u, 0.2, 0.1)
        at = theory.biased_sample_size(n, u, 0.2, 0.1, p=u / n)
        below = theory.biased_sample_size(n, u, 0.2, 0.1, p=u / n / 2)
        above = theory.biased_sample_size(n, u, 0.2, 0.1, p=2 * u / n)
        assert at == pytest.approx(s)
        assert below > s
        assert above < s

    def test_predicate(self):
        assert theory.theorem1_holds(100_000, 1000, 0.01)
        assert theory.theorem1_holds(100_000, 1000, 0.5)
        assert not theory.theorem1_holds(100_000, 1000, 0.005)

    def test_biased_size_decreases_with_p(self):
        sizes = [
            theory.biased_sample_size(50_000, 500, 0.2, 0.1, p)
            for p in (0.05, 0.2, 0.8)
        ]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_rule_r_probabilities(self):
        inside, outside = theory.rule_r_probabilities(
            n=10_000, cluster_size=500, sample_size=1000, p=0.5
        )
        assert inside == pytest.approx(0.5 * 1000 / 500)
        assert outside == pytest.approx(0.5 * 1000 / 9500)

    def test_rule_r_expected_size(self):
        n, u, b, p = 10_000, 500, 800, 0.4
        inside, outside = theory.rule_r_probabilities(n, u, b, p)
        assert inside * u + outside * (n - u) == pytest.approx(b)

    def test_rule_r_degenerate_all_cluster(self):
        inside, outside = theory.rule_r_probabilities(
            n=100, cluster_size=100, sample_size=10, p=1.0
        )
        assert outside == 0.0


class TestInclusionProbability:
    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        u, q, eta = 400, 0.3, 0.25
        analytic = theory.cluster_inclusion_probability(u, q, eta)
        draws = rng.binomial(u, q, size=20_000)
        empirical = (draws > eta * u).mean()
        assert analytic == pytest.approx(empirical, abs=0.01)

    def test_guarantee_holds_at_bound(self):
        """Sampling at the bound's rate achieves >= 1 - delta success."""
        n, u, eta, delta = 100_000, 1000, 0.2, 0.1
        q = theory.required_inclusion_probability(n, u, eta, delta)
        assert theory.cluster_inclusion_probability(u, q, eta) >= 1 - delta

    def test_extremes(self):
        assert theory.cluster_inclusion_probability(100, 1.0, 0.5) == 1.0
        assert theory.cluster_inclusion_probability(100, 0.0, 0.5) == 0.0
