"""Tests for the weighted CART decision tree."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ParameterError
from repro.mining import DecisionTreeClassifier, make_classification_dataset


class TestBasics:
    def test_axis_aligned_split(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.predict([[0.5], [2.5]]).tolist() == [0, 1]
        assert tree.depth() == 1

    def test_xor_needs_depth_two(self):
        rng = np.random.default_rng(0)
        x = rng.random((400, 2))
        y = ((x[:, 0] > 0.5) ^ (x[:, 1] > 0.5)).astype(int)
        shallow = DecisionTreeClassifier(max_depth=1).fit(x, y)
        deep = DecisionTreeClassifier(max_depth=3).fit(x, y)
        assert deep.score(x, y) > 0.95
        assert shallow.score(x, y) < 0.8

    def test_pure_node_stops(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier(max_depth=5).fit(x, y)
        assert tree.n_nodes_ == 1
        assert tree.predict([[10.0]])[0] == 1

    def test_max_depth_zero_is_majority_vote(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        tree = DecisionTreeClassifier(max_depth=0).fit(x, y)
        assert (tree.predict(x) == 1).all()

    def test_min_samples_leaf(self):
        x = np.arange(10, dtype=float).reshape(-1, 1)
        y = (np.arange(10) >= 9).astype(int)  # 9:1 split needed
        tree = DecisionTreeClassifier(
            max_depth=3, min_samples_leaf=3
        ).fit(x, y)
        # The only useful cut (after index 9) violates the leaf
        # minimum, so the tree must refuse to split there.
        assert all(
            node_count >= 3
            for node_count in _leaf_raw_counts(tree, x)
        )

    def test_generalisation_on_blobs(self):
        x, y = make_classification_dataset(n_points=6000, random_state=0)
        tree = DecisionTreeClassifier(max_depth=8).fit(x[:5000], y[:5000])
        assert tree.score(x[5000:], y[5000:]) > 0.75

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict([[0.0]])

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            DecisionTreeClassifier(max_depth=-1)
        with pytest.raises(ParameterError):
            DecisionTreeClassifier(min_samples_leaf=0)
        with pytest.raises(ParameterError):
            DecisionTreeClassifier(min_impurity_decrease=-0.1)

    def test_label_validation(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(ParameterError):
            tree.fit(np.zeros((3, 1)), np.array([0, 1]))
        with pytest.raises(ParameterError):
            tree.fit(np.zeros((3, 1)), np.array([0, -1, 1]))


def _leaf_raw_counts(tree, x):
    """Raw training-point count reaching each leaf."""
    counts = {}
    for row in x:
        node = tree.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        counts[id(node)] = counts.get(id(node), 0) + 1
    return list(counts.values())


class TestWeights:
    def test_weights_flip_majority(self):
        x = np.array([[0.0], [0.1], [0.2]])
        y = np.array([0, 0, 1])
        heavy = DecisionTreeClassifier(max_depth=0).fit(
            x, y, sample_weight=np.array([1.0, 1.0, 10.0])
        )
        assert heavy.predict([[0.0]])[0] == 1

    def test_weights_shift_split(self):
        """Weighting a region more should win the first split for its
        separating feature."""
        rng = np.random.default_rng(1)
        n = 400
        x = rng.random((n, 2))
        # Feature 0 separates classes weakly, feature 1 strongly but
        # only for the first half of the data.
        y = (x[:, 1] > 0.5).astype(int)
        y[200:] = (x[200:, 0] > 0.5).astype(int)
        w_first = np.ones(n)
        w_first[:200] = 25.0
        tree = DecisionTreeClassifier(max_depth=1).fit(
            x, y, sample_weight=w_first
        )
        assert tree.root_.feature == 1

    def test_biased_sample_with_weights_matches_full_tree(self):
        """Train on an inverse-probability-weighted biased sample and
        compare test accuracy against full-data training."""
        from repro.core import DensityBiasedSampler

        x, y = make_classification_dataset(
            n_points=20_000, n_classes=3, random_state=2
        )
        train_x, train_y = x[:16_000], y[:16_000]
        test_x, test_y = x[16_000:], y[16_000:]
        full = DecisionTreeClassifier(max_depth=6).fit(train_x, train_y)
        sample = DensityBiasedSampler(
            sample_size=1500, exponent=0.5, random_state=0
        ).sample(train_x)
        biased = DecisionTreeClassifier(max_depth=6).fit(
            sample.points,
            train_y[sample.indices],
            sample_weight=sample.weights,
        )
        assert biased.score(test_x, test_y) >= full.score(test_x, test_y) - 0.08

    def test_weight_validation(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(ParameterError):
            tree.fit(
                np.zeros((3, 1)), np.zeros(3, dtype=int),
                sample_weight=np.ones(2),
            )
        with pytest.raises(ParameterError):
            tree.fit(
                np.zeros((3, 1)), np.zeros(3, dtype=int),
                sample_weight=-np.ones(3),
            )
