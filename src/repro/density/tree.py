"""Random-partition forest density estimator (tree backend).

The KDE hot path costs ``points x centers`` kernel evaluations per
query chunk. Following Wells & Ting ("A simple efficient density
estimator that enables fast systematic search"), this module trades the
kernel sum for ``T`` random axis-aligned partition trees built over the
data bounding box: each tree splits every box at a uniformly drawn
fraction of a uniformly drawn attribute, down to a fixed depth, and the
density at ``x`` is the average over trees of ``count(leaf(x)) /
volume(leaf(x))``. A lookup costs ``T x depth`` comparisons — O(log n)
instead of O(m·d) kernel products — and the estimate still integrates
to ``n`` over the domain, which is the normalisation the paper's
biased-sampling algebra needs (section 2.1).

Tree *structure* is drawn once, on the coordinator, from the seeded
generator; the counting scan is pure integer accumulation. Integer
addition is exactly associative, so sharded counting scans merge
byte-identically to the serial scan for any shard count (DESIGN.md
§14) — unlike the FP moment folds of the KDE fit, no ordering
discipline is needed.
"""

from __future__ import annotations

import numpy as np

from repro.density.base import DensityEstimator
from repro.exceptions import ParameterError
from repro.obs import get_recorder
from repro.sharding import (
    ShardPlan,
    bounds_shards,
    resolve_shards,
    tree_count_shards,
)
from repro.utils.scaling import MinMaxScaler
from repro.utils.streams import DataStream
from repro.utils.validation import check_random_state

__all__ = ["TreeDensityEstimator", "tree_leaf_indices"]

#: Query rows routed per evaluation block: keeps the (trees, rows)
#: descent state and gather temporaries inside the cache while leaving
#: the per-row results — each row's leaf path is independent —
#: byte-identical for any blocking.
_EVAL_BLOCK_ROWS = 8192

#: Uniform quantization bins per dimension for the O(1) lookup tables
#: built at fit time. Bin assignment is monotone in the coordinate, so
#: the table lookup resolves to the exact descent leaf for any bin
#: count; finer bins only shrink the (exactly handled) fraction of
#: queries that fall into a bin holding two or more thresholds.
_EVAL_BINS = 4096

#: Ceiling on overlay cells per tree (product over dimensions of
#: thresholds + 1). Above it — high-dimensional forests where the
#: per-dim threshold grid's cross product explodes — evaluation falls
#: back to the level-by-level descent.
_EVAL_CELL_CAP = 1 << 17

#: Split fractions are drawn from [_SPLIT_LO, 1 - _SPLIT_LO] of the
#: parent box width, so every child keeps at least a quarter of the
#: parent's extent and leaf volumes are bounded away from zero.
_SPLIT_LO = 0.25


def tree_leaf_indices(
    points: np.ndarray, features: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """Leaf index of each query row in each tree, shape ``(T, rows)``.

    ``features`` / ``thresholds`` hold the forest in heap order — node
    ``i``'s children are ``2i+1`` (left, ``value <= threshold``) and
    ``2i+2`` — with shape ``(T, n_leaves - 1)``. The descent is
    vectorised level by level across all trees and rows at once; points
    outside the fitted box follow the comparisons to the nearest edge
    leaf, mirroring the grid estimator's clamp semantics.
    """
    n_internal = features.shape[1]
    depth = int(n_internal + 1).bit_length() - 1
    rows = points.shape[0]
    node = np.zeros((features.shape[0], rows), dtype=np.int64)
    cols = points.T
    col_ids = np.arange(rows)[None, :]
    for _level in range(depth):
        feat = np.take_along_axis(features, node, axis=1)
        thr = np.take_along_axis(thresholds, node, axis=1)
        node = 2 * node + 1 + (cols[feat, col_ids] > thr)
    return node - n_internal


class TreeDensityEstimator(DensityEstimator):
    """Forest of random axis-aligned partitions with O(depth) lookups.

    Dataset passes: 2 — one scan finds the bounding box, one counts
    leaf occupancies (the box scan still runs when ``bounds`` is given;
    see Notes for the single-pass escape hatch).

    Memory: O(m) — the forest structure and its leaf-count table,
    ``n_trees * 2^max_depth`` cells; chunks are routed and discarded as
    the scan advances.

    Parameters
    ----------
    n_trees:
        Number of independent random partition trees averaged into the
        estimate. More trees smooth the piecewise-constant surface.
    max_depth:
        Levels of splits per tree; each tree has ``2^max_depth`` leaves.
        Depth trades bias (shallow = blurry) against variance (deep =
        sparse leaves).
    bounds:
        Optional ``(mins, maxs)`` bounding box; when given, fitting
        skips the box-finding pass (see Notes).
    random_state:
        Seed for the generator that draws split attributes and split
        fractions. Trees are drawn once, on the coordinator, so fitted
        state is byte-identical for any ``n_jobs`` / shard count.

    Notes
    -----
    Fitting takes *two* passes when the bounding box is unknown (one to
    find the box, one to count); pass ``bounds=(mins, maxs)`` to fit in
    a single pass like the paper's kernel estimator. When the ambient
    shard count is above one, both scans run as sharded fan-outs whose
    partials merge exactly: elementwise min/max for the box, integer
    leaf-count addition for the occupancies.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(5000, 2))
    >>> est = TreeDensityEstimator(random_state=0).fit(data)
    >>> float(est.evaluate([[0.0, 0.0]])[0]) > float(est.evaluate([[4.0, 4.0]])[0])
    True
    """

    __n_passes__ = 2

    #: Peak working-memory bound of fit()/evaluate() (audited by RA005).
    __space__ = "O(m)"

    def __init__(
        self,
        n_trees: int = 64,
        max_depth: int = 8,
        bounds=None,
        random_state=None,
    ) -> None:
        if n_trees < 1:
            raise ParameterError(f"n_trees must be >= 1; got {n_trees}.")
        if max_depth < 1:
            raise ParameterError(f"max_depth must be >= 1; got {max_depth}.")
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.bounds = bounds
        self.random_state = random_state
        # Fitted state
        self.features_: np.ndarray | None = None
        self.thresholds_: np.ndarray | None = None
        self.leaf_volumes_: np.ndarray | None = None
        self.counts_: np.ndarray | None = None
        self.rate_: np.ndarray | None = None
        self.mins_: np.ndarray | None = None
        self.maxs_: np.ndarray | None = None
        self.n_points_: int | None = None
        self.n_dims_: int | None = None
        # Leaf bounding boxes, kept from the build for the lookup-table
        # construction in _finalize; shape (n_trees, n_leaves, n_dims).
        self._leaf_lo: np.ndarray | None = None
        self._leaf_hi: np.ndarray | None = None
        # O(1)-lookup overlay tables (None when the cell cap is hit).
        self._tables: dict | None = None

    @property
    def n_leaves_(self) -> int:
        """Leaves per tree (``2^max_depth``)."""
        return 1 << self.max_depth

    # -- fitting ---------------------------------------------------------------

    def fit(self, data=None, *, stream: DataStream | None = None):
        """Fit in two scans: bounding box, then integer leaf counts.

        When the ambient shard count (``repro run --shards`` /
        ``REPRO_SHARDS`` / :func:`repro.sharding.use_shards`) is above
        one, each scan is executed as a sharded fan-out instead —
        byte-identical to the serial scans because both partial states
        (box extrema, integer counts) merge exactly (DESIGN.md §14).
        """
        source = self._as_stream(data, stream)
        n_shards = resolve_shards(None)
        if (
            n_shards > 1
            and len(source) > 0
            and hasattr(source, "chunk_sizes")
        ):
            return self._fit_sharded(source, n_shards)
        else:
            if self.bounds is not None:
                mins, maxs = self._explicit_bounds()
            else:
                scaler = MinMaxScaler()
                for chunk in source:
                    scaler.partial_fit(chunk)
                if scaler.data_min_ is None:
                    raise ParameterError(
                        "cannot fit a density estimator on no data."
                    )
                mins, maxs = scaler.data_min_, scaler.data_max_
            self._build_trees(mins, maxs)
            counts = np.zeros(
                (self.n_trees, self.n_leaves_), dtype=np.int64
            )
            n = 0
            for chunk in source:
                n += chunk.shape[0]
                counts += self._chunk_leaf_counts(chunk)
            if n == 0:
                raise ParameterError(
                    "cannot fit a density estimator on no data."
                )
            self._finalize(counts, n)
            return self

    def _fit_sharded(self, source: DataStream, n_shards: int):
        """Both fit scans as shard fan-outs (byte-identical to serial).

        The box partials fold with elementwise min/max and the count
        partials with integer addition — both exactly associative, so
        no ordering discipline beyond the deterministic left fold is
        needed (contrast the KDE's coordinator-side Welford replay).
        Tree structure is still drawn once, on the coordinator, between
        the two scans.
        """
        plan = ShardPlan(source, n_shards)
        if self.bounds is not None:
            mins, maxs = self._explicit_bounds()
        else:
            box = bounds_shards(plan)
            if box.seen == 0:
                raise ParameterError(
                    "cannot fit a density estimator on no data."
                )
            mins, maxs = box.mins, box.maxs
        self._build_trees(mins, maxs)
        state = tree_count_shards(plan, self.features_, self.thresholds_)
        if state.seen == 0:
            raise ParameterError("cannot fit a density estimator on no data.")
        self._finalize(state.counts, state.seen)
        return self

    def _explicit_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        mins = np.atleast_1d(np.asarray(self.bounds[0], dtype=np.float64))
        maxs = np.atleast_1d(np.asarray(self.bounds[1], dtype=np.float64))
        if mins.shape != maxs.shape or (maxs < mins).any():
            raise ParameterError(
                "bounds must be (mins, maxs) arrays of equal shape with "
                "maxs >= mins."
            )
        return mins, maxs

    def _build_trees(self, mins: np.ndarray, maxs: np.ndarray) -> None:
        """Draw the forest structure for the box ``[mins, maxs]``.

        All randomness happens here, on the coordinator, from the
        seeded generator: one attribute draw and one split-fraction
        draw per internal node, level by level across every tree at
        once. Degenerate (constant) attributes are padded to unit width
        so leaf volumes stay positive, mirroring the grid estimator's
        scaler convention.
        """
        mins = np.asarray(mins, dtype=np.float64)
        maxs = np.asarray(maxs, dtype=np.float64)
        degenerate = (maxs - mins) <= np.finfo(np.float64).tiny
        mins = np.where(degenerate, mins - 0.5, mins)
        maxs = np.where(degenerate, maxs + 0.5, maxs)
        rng = check_random_state(self.random_state)
        n_dims = mins.shape[0]
        n_leaves = 1 << self.max_depth
        n_internal = n_leaves - 1
        features = np.zeros((self.n_trees, n_internal), dtype=np.int64)
        thresholds = np.zeros((self.n_trees, n_internal), dtype=np.float64)
        lo = np.broadcast_to(mins, (self.n_trees, 1, n_dims)).copy()
        hi = np.broadcast_to(maxs, (self.n_trees, 1, n_dims)).copy()
        for level in range(self.max_depth):
            width = 1 << level
            start = width - 1
            feat = rng.integers(0, n_dims, size=(self.n_trees, width))
            frac = rng.uniform(
                _SPLIT_LO, 1.0 - _SPLIT_LO, size=(self.n_trees, width)
            )
            lo_f = np.take_along_axis(lo, feat[:, :, None], axis=2)[:, :, 0]
            hi_f = np.take_along_axis(hi, feat[:, :, None], axis=2)[:, :, 0]
            thr = lo_f + frac * (hi_f - lo_f)
            features[:, start : start + width] = feat
            thresholds[:, start : start + width] = thr
            # Children boxes in heap order: node (level, i) has children
            # (level+1, 2i) and (level+1, 2i+1).
            lo = np.repeat(lo, 2, axis=1)
            hi = np.repeat(hi, 2, axis=1)
            tree_ids = np.arange(self.n_trees)[:, None]
            child = 2 * np.arange(width)[None, :]
            hi[tree_ids, child, feat] = thr
            lo[tree_ids, child + 1, feat] = thr
        self.features_ = features
        self.thresholds_ = thresholds
        self.leaf_volumes_ = np.prod(hi - lo, axis=2)
        self._leaf_lo = lo
        self._leaf_hi = hi
        self.mins_ = mins
        self.maxs_ = maxs
        self.n_dims_ = int(n_dims)
        get_recorder().count("tree_nodes_built", self.n_trees * n_internal)

    def _chunk_leaf_counts(self, chunk: np.ndarray) -> np.ndarray:
        """Integer leaf-occupancy counts of one chunk, shape ``(T, leaves)``."""
        leaves = tree_leaf_indices(chunk, self.features_, self.thresholds_)
        offsets = (np.arange(self.n_trees) * self.n_leaves_)[:, None]
        flat = np.bincount(
            (offsets + leaves).ravel(),
            minlength=self.n_trees * self.n_leaves_,
        )
        return flat.reshape(self.n_trees, self.n_leaves_)

    def _finalize(self, counts: np.ndarray, n: int) -> None:
        """Freeze fitted state: counts plus the precomputed density table.

        ``rate_[t, leaf] = counts[t, leaf] / volume[t, leaf]`` makes one
        evaluation a gather plus a mean over trees; each tree's rates
        integrate to ``n`` over the box, so the average does too —
        densities integrate to ``n``, the paper's normalisation.
        """
        self.counts_ = np.asarray(counts, dtype=np.int64)
        self.n_points_ = int(n)
        self.rate_ = self.counts_ / self.leaf_volumes_
        self._build_eval_tables()

    def _build_eval_tables(self) -> None:
        """Precompute the O(1)-lookup overlay for evaluation.

        Each tree's leaves induce, per dimension, a sorted grid ``g`` of
        the thresholds splitting that dimension; the leaf of a query is
        fully determined by its per-dim cell index ``#{g < x}``. Two
        structures make that index a constant-time gather:

        * per tree and dimension, tables over ``_EVAL_BINS`` uniform
          bins spanning the fitted box — ``base[u]`` (thresholds in
          bins before ``u``), ``cut[u]`` (the single threshold inside
          bin ``u``, ``+inf`` when empty) and ``amb[u]`` (bin holds two
          or more thresholds, resolved by exact binary search);
        * per tree, a dense cell table mapping the cross product of
          per-dim cells straight to ``rate_`` — filled by slicing each
          leaf's bounding box into the grid.

        Bin assignment is monotone in the coordinate, so ``base[u] +
        (cut[u] < x)`` equals ``#{g < x}`` exactly — the table route is
        bit-identical to the descent. Trees whose cell cross product
        exceeds ``_EVAL_CELL_CAP`` (high-dimensional forests) disable
        the overlay and evaluation keeps the descent path.
        """
        self._tables = None
        n_dims = self.n_dims_
        grids = [
            [
                np.unique(self.thresholds_[t][self.features_[t] == j])
                for j in range(n_dims)
            ]
            for t in range(self.n_trees)
        ]
        shapes = [
            tuple(grid.size + 1 for grid in per_dim) for per_dim in grids
        ]
        if max(int(np.prod(s)) for s in shapes) > _EVAL_CELL_CAP:
            return
        scale = _EVAL_BINS / (self.maxs_ - self.mins_)
        base = np.zeros((self.n_trees, n_dims, _EVAL_BINS), dtype=np.int64)
        cut = np.full((self.n_trees, n_dims, _EVAL_BINS), np.inf)
        amb = np.zeros((self.n_trees, n_dims, _EVAL_BINS), dtype=bool)
        for t in range(self.n_trees):
            for j in range(n_dims):
                grid = grids[t][j]
                if grid.size == 0:
                    continue
                bins = self._bin_of(grid, j, scale)
                counts = np.bincount(bins, minlength=_EVAL_BINS)
                base[t, j, 1:] = np.cumsum(counts)[:-1]
                cut[t, j, bins] = grid
                amb[t, j] = counts >= 2
                cut[t, j, amb[t, j]] = np.inf
        cells = []
        for t in range(self.n_trees):
            table = np.empty(shapes[t])
            starts = [
                np.searchsorted(
                    grids[t][j], self._leaf_lo[t][:, j], side="right"
                )
                for j in range(n_dims)
            ]
            ends = [
                np.searchsorted(
                    grids[t][j], self._leaf_hi[t][:, j], side="left"
                )
                + 1
                for j in range(n_dims)
            ]
            for leaf in range(self.n_leaves_):
                window = tuple(
                    slice(starts[j][leaf], ends[j][leaf])
                    for j in range(n_dims)
                )
                table[window] = self.rate_[t, leaf]
            cells.append(table.ravel())
        self._tables = {
            "scale": scale,
            "base": base,
            "cut": cut,
            "amb": amb,
            "amb_any": amb.any(axis=2),
            "grids": grids,
            "shapes": shapes,
            "cells": cells,
        }

    def _bin_of(
        self, values: np.ndarray, dim: int, scale: np.ndarray
    ) -> np.ndarray:
        """Uniform bin of each value along ``dim`` (monotone, clamped).

        The same expression quantizes thresholds at build time and
        queries at lookup time; sharing it is what makes the table
        route exact for any rounding behaviour.
        """
        offsets = (values - self.mins_[dim]) * scale[dim]
        return np.clip(offsets, 0.0, _EVAL_BINS - 1.0).astype(np.int64)

    # -- evaluation --------------------------------------------------------------

    def _evaluate(self, points: np.ndarray) -> np.ndarray:
        recorder = get_recorder()
        rows = int(points.shape[0])
        # One lookup = one query row routed through one tree.
        recorder.count("tree_lookups", rows * self.n_trees)
        out = np.empty(rows, dtype=np.float64)
        tree_ids = np.arange(self.n_trees)[:, None]
        with recorder.phase("tree_eval_block") as span:
            span.set(rows=rows, trees=self.n_trees, depth=self.max_depth)
            for begin in range(0, rows, _EVAL_BLOCK_ROWS):
                block = points[begin : begin + _EVAL_BLOCK_ROWS]
                if self._tables is not None:
                    out[begin : begin + block.shape[0]] = (
                        self._evaluate_cells(block)
                    )
                else:
                    leaves = tree_leaf_indices(
                        block, self.features_, self.thresholds_
                    )
                    out[begin : begin + block.shape[0]] = self.rate_[
                        tree_ids, leaves
                    ].mean(axis=0)
        return out

    def _evaluate_cells(self, block: np.ndarray) -> np.ndarray:
        """One block through the overlay tables (see _build_eval_tables).

        Per tree and dimension the cell index is one gather plus one
        comparison; queries landing in a bin that holds several
        thresholds — a handful per block — are re-resolved by exact
        binary search over that tree's per-dim threshold grid, so the
        routed leaf always matches the descent.
        """
        tables = self._tables
        rows = block.shape[0]
        n_dims = self.n_dims_
        cols = [
            np.ascontiguousarray(block[:, j], dtype=np.float64)
            for j in range(n_dims)
        ]
        bins = [
            self._bin_of(cols[j], j, tables["scale"])
            for j in range(n_dims)
        ]
        acc = np.zeros(rows)
        idx = np.empty(rows, dtype=np.int64)
        part = np.empty(rows, dtype=np.int64)
        cutg = np.empty(rows, dtype=np.float64)
        right = np.empty(rows, dtype=bool)
        gathered = np.empty(rows, dtype=np.float64)
        for t in range(self.n_trees):
            shape = tables["shapes"][t]
            for j in range(n_dims):
                target = part if j else idx
                np.take(tables["base"][t, j], bins[j], out=target)
                np.take(tables["cut"][t, j], bins[j], out=cutg)
                np.less(cutg, cols[j], out=right)
                target += right
                if tables["amb_any"][t, j]:
                    pos = np.flatnonzero(tables["amb"][t, j][bins[j]])
                    if pos.size:
                        target[pos] = np.searchsorted(
                            tables["grids"][t][j],
                            cols[j][pos],
                            side="left",
                        )
                if j:
                    idx *= shape[j]
                    idx += part
            np.take(tables["cells"][t], idx, out=gathered)
            acc += gathered
        acc /= self.n_trees
        return acc
