"""Reservoir sampling (Li's Algorithm L) over data streams.

The kernel density estimator picks its kernel centers as a uniform
random sample of the dataset, collected *during* the single fit pass —
reservoir sampling is what makes that possible without knowing ``n`` up
front.

The implementation is the chunk-vectorised form of Algorithm L (Li,
"Reservoir-Sampling Algorithms of Time Complexity O(n(1 + log(N/n)))",
TOMS 1994). Instead of offering every row to the reservoir one at a
time — Vitter's Algorithm R, a pure-Python loop that dominated KDE fit
time — the sampler draws *geometric skip lengths*: after the reservoir
fills, it computes how many rows to jump over before the next
replacement, so per-chunk work is proportional to the handful of
accepted rows (about ``capacity * log(n / capacity)`` in total), not to
the rows seen. Uniform draws come from a small batched buffer so the
skip loop costs a few array reads per acceptance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs import get_recorder
from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import check_random_state

__all__ = [
    "ReservoirPlan",
    "ReservoirSampler",
    "reservoir_sample",
]

#: Uniform draws are floored here before ``log`` so a (measure-zero)
#: 0.0 from the generator cannot produce an infinite skip.
_TINY = 1e-300

#: Uniform draws buffered per refill (batched RNG for the skip loop).
_BUFFER_SIZE = 192


@dataclass(frozen=True)
class ReservoirPlan:
    """Data-free acceptance plan for one reservoir pass over ``n_rows``.

    Algorithm L's draw sequence depends only on the capacity, the row
    count and the generator — never on row *values* or on how the rows
    are chunked — so the whole pass can be planned up front: which
    absolute row indices are accepted, and into which slot each one
    goes. Shard workers then fetch exactly the planned rows with no
    generator of their own, and :meth:`assemble` reproduces the
    reservoir contents byte-identically to a serial pass (see
    :mod:`repro.sharding`).

    Attributes
    ----------
    capacity:
        Reservoir capacity the plan was drawn for.
    n_rows:
        Stream length the plan covers.
    fill:
        Rows copied verbatim during the fill phase
        (``min(capacity, n_rows)``).
    events:
        Post-fill acceptances in stream order:
        ``(absolute row index, reservoir slot)`` pairs.
    """

    capacity: int
    n_rows: int
    fill: int
    events: tuple[tuple[int, int], ...]

    @property
    def accepts(self) -> int:
        """Total acceptances (fill copies plus replacement events)."""
        return self.fill + len(self.events)

    def wanted_indices(self) -> np.ndarray:
        """Sorted absolute indices of every row the plan needs fetched."""
        indices = list(range(self.fill))
        indices.extend(index for index, _ in self.events)
        return np.asarray(indices, dtype=np.int64)

    def assemble(self, rows: dict) -> np.ndarray:
        """Reservoir contents from ``{absolute index: row}`` fetches.

        Applies the fill rows then replays the replacement events in
        stream order — the exact writes :meth:`ReservoirSampler.extend`
        would have performed.
        """
        missing = [int(i) for i in self.wanted_indices() if int(i) not in rows]
        if missing:
            raise ValueError(
                f"reservoir plan is missing {len(missing)} fetched row(s) "
                f"(first: index {missing[0]})."
            )
        if self.fill == 0:
            return np.empty((0, 0))
        n_dims = np.asarray(rows[0]).shape[0]
        reservoir = np.empty((self.fill, n_dims))
        for index in range(self.fill):
            reservoir[index] = rows[index]
        for index, slot in self.events:
            reservoir[slot] = rows[index]
        return reservoir


class ReservoirSampler:
    """Maintains a uniform sample of fixed capacity over a stream.

    Feed chunks with :meth:`extend`; at any moment :attr:`sample` is a
    uniform random subset (without replacement) of everything seen.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained.
    random_state:
        Seed or generator controlling replacement decisions.
    """

    def __init__(self, capacity: int, random_state=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}.")
        self.capacity = int(capacity)
        self._rng = check_random_state(random_state)
        self._reservoir: np.ndarray | None = None
        self._filled = 0
        self.n_seen = 0
        # Algorithm L state: the running weight ``w`` and the absolute
        # (0-based) index of the next accepted row.
        self._w = 1.0
        self._next_accept = 0
        # Batched uniform draws for the skip loop.
        self._buffer = np.empty(0)
        self._buffer_pos = 0
        # Set once plan() has consumed the sampler (see plan()).
        self._planned = False

    def extend(self, chunk) -> None:
        """Offer a chunk of rows to the reservoir."""
        if self._planned:
            raise ValueError(
                "this sampler was consumed by plan(); its generator "
                "state already reflects a full pass, so it cannot be "
                "fed rows."
            )
        chunk = np.atleast_2d(np.asarray(chunk, dtype=np.float64))
        n_rows = chunk.shape[0]
        if n_rows == 0:
            return
        if self._reservoir is None:
            self._reservoir = np.empty((self.capacity, chunk.shape[1]))
        accepts = 0
        pos = 0
        if self._filled < self.capacity:
            # Fill phase: copy rows in bulk until the reservoir is full.
            take = min(self.capacity - self._filled, n_rows)
            self._reservoir[self._filled : self._filled + take] = chunk[:take]
            self._filled += take
            self.n_seen += take
            accepts += take
            pos = take
            if self._filled == self.capacity:
                self._schedule_next(self.n_seen - 1)
            if pos >= n_rows:
                get_recorder().count("reservoir_accepts", accepts)
                return
        # Skip phase: jump straight to each accepted row.
        base = self.n_seen - pos  # absolute index of chunk[0]
        end = base + n_rows
        while self._next_accept < end:
            row = chunk[self._next_accept - base]
            slot = int(self._uniform() * self.capacity)
            self._reservoir[slot] = row
            accepts += 1
            self._schedule_next(self._next_accept)
        self.n_seen = end
        if accepts:
            get_recorder().count("reservoir_accepts", accepts)

    def _schedule_next(self, current: int) -> None:
        """Update ``w`` and draw the geometric skip to the next accept."""
        k = self.capacity
        self._w *= math.exp(math.log(max(self._uniform(), _TINY)) / k)
        log_keep = math.log1p(-self._w)
        if log_keep == 0.0:  # w underflowed to 0: skips are astronomical
            self._next_accept = 2**63
            return
        skip = math.floor(math.log(max(self._uniform(), _TINY)) / log_keep)
        self._next_accept = current + int(skip) + 1

    def _uniform(self) -> float:
        """Next uniform draw from the batched buffer."""
        if self._buffer_pos >= self._buffer.shape[0]:
            self._buffer = self._rng.random(_BUFFER_SIZE)
            self._buffer_pos = 0
        value = self._buffer[self._buffer_pos]
        self._buffer_pos += 1
        return float(value)

    # -- sharding & merging --------------------------------------------------

    def plan(self, n_rows: int) -> ReservoirPlan:
        """Plan one pass over ``n_rows`` rows without seeing any data.

        Consumes this sampler's generator exactly as :meth:`extend`
        over the same rows would (the Algorithm L draw sequence is
        data- and chunking-independent), so after planning the
        generator state matches the post-fit serial state — the
        property that keeps downstream draws byte-identical when a fit
        is sharded. The sampler is consumed by planning: it must be
        fresh, and must not be fed rows afterwards.
        """
        if self.n_seen or self._reservoir is not None:
            raise ValueError(
                "plan() needs a fresh sampler; this one has already "
                f"seen {self.n_seen} row(s)."
            )
        if n_rows < 0:
            raise ValueError(f"n_rows must be >= 0; got {n_rows}.")
        self._planned = True
        fill = min(self.capacity, int(n_rows))
        events: list[tuple[int, int]] = []
        self.n_seen = fill
        if fill == self.capacity:
            self._schedule_next(self.n_seen - 1)
            while self._next_accept < n_rows:
                slot = int(self._uniform() * self.capacity)
                events.append((self._next_accept, slot))
                self._schedule_next(self._next_accept)
            self.n_seen = int(n_rows)
        return ReservoirPlan(
            capacity=self.capacity,
            n_rows=int(n_rows),
            fill=fill,
            events=tuple(events),
        )

    def merge(self, other: "ReservoirSampler") -> "ReservoirSampler":
        """Fold another reservoir into this one.

        The merged reservoir is a uniform sample (without replacement)
        of the union of both input streams: the number of survivors
        kept from each side follows the hypergeometric split of a
        uniform draw over the union, and the subsets themselves are
        drawn uniformly from each reservoir. All randomness comes from
        *this* sampler's generator, so the result is seeded and
        order-deterministic; ``other`` is not mutated. The Algorithm L
        continuation state is re-derived by a data-free replay, so
        :meth:`extend` stays exact after merging.

        This is the statistical merge for reservoirs fitted over
        genuinely independent streams. The sharded fit path does not
        use it — byte-identity there comes from :meth:`plan` instead.
        """
        if not isinstance(other, ReservoirSampler):
            raise TypeError(
                f"can only merge another ReservoirSampler; got "
                f"{type(other).__name__}."
            )
        if other.capacity != self.capacity:
            raise ValueError(
                f"cannot merge reservoirs of different capacities "
                f"({self.capacity} vs {other.capacity})."
            )
        if other.n_seen == 0:
            return self
        if (
            self._reservoir is not None
            and other._reservoir is not None
            and self._reservoir.shape[1] != other._reservoir.shape[1]
        ):
            raise ValueError(
                f"cannot merge reservoirs over different dimensionalities "
                f"({self._reservoir.shape[1]} vs "
                f"{other._reservoir.shape[1]})."
            )
        n_a, n_b = self.n_seen, other.n_seen
        total = n_a + n_b
        size = min(self.capacity, total)
        # Hypergeometric split: how many of the merged sample's rows
        # come from this reservoir's stream. Bounded by each side's
        # survivor count automatically (t <= min(size, n_a), and
        # size - t <= n_b).
        take_a = int(self._rng.hypergeometric(n_a, n_b, size)) if n_a else 0
        take_b = size - take_a
        rows_a = (
            self._reservoir[
                np.sort(self._rng.permutation(self._filled)[:take_a])
            ]
            if take_a
            else np.empty((0, other._reservoir.shape[1]))
        )
        rows_b = other._reservoir[
            np.sort(self._rng.permutation(other._filled)[:take_b])
        ]
        merged = np.vstack([rows_a, rows_b])
        if self._reservoir is None:
            self._reservoir = np.empty(
                (self.capacity, merged.shape[1])
            )
        self._reservoir[:size] = merged
        self._filled = size
        self.n_seen = total
        if self._filled == self.capacity:
            self._replay_schedule(total)
        return self

    def _replay_schedule(self, n_seen: int) -> None:
        """Re-derive (w, next_accept) as a fresh pass over ``n_seen``.

        After a merge the continuation state must be distributed as if
        a single sampler had streamed all ``n_seen`` rows; replaying
        the schedule data-free (consuming only this sampler's
        generator) produces exactly that distribution.
        """
        self._w = 1.0
        self._schedule_next(self.capacity - 1)
        while self._next_accept < n_seen:
            self._uniform()  # the slot draw of the replayed acceptance
            self._schedule_next(self._next_accept)

    @property
    def sample(self) -> np.ndarray:
        """The current reservoir contents, shape ``(min(n, capacity), d)``."""
        if self._reservoir is None:
            return np.empty((0, 0))
        return self._reservoir[: self._filled].copy()


def reservoir_sample(
    data, size: int, random_state=None, *, stream: DataStream | None = None
) -> np.ndarray:
    """One-shot uniform sample of ``size`` rows in a single pass.

    Accepts an array or an existing :class:`DataStream` (pass counting
    then reflects the extra pass this sample costs).
    """
    source = stream if stream is not None else as_stream(data)
    sampler = ReservoirSampler(size, random_state=random_state)
    for chunk in source:
        sampler.extend(chunk)
    return sampler.sample
