"""Reservoir sampling (Li's Algorithm L) over data streams.

The kernel density estimator picks its kernel centers as a uniform
random sample of the dataset, collected *during* the single fit pass —
reservoir sampling is what makes that possible without knowing ``n`` up
front.

The implementation is the chunk-vectorised form of Algorithm L (Li,
"Reservoir-Sampling Algorithms of Time Complexity O(n(1 + log(N/n)))",
TOMS 1994). Instead of offering every row to the reservoir one at a
time — Vitter's Algorithm R, a pure-Python loop that dominated KDE fit
time — the sampler draws *geometric skip lengths*: after the reservoir
fills, it computes how many rows to jump over before the next
replacement, so per-chunk work is proportional to the handful of
accepted rows (about ``capacity * log(n / capacity)`` in total), not to
the rows seen. Uniform draws come from a small batched buffer so the
skip loop costs a few array reads per acceptance.
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs import get_recorder
from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import check_random_state

__all__ = [
    "ReservoirSampler",
    "reservoir_sample",
]

#: Uniform draws are floored here before ``log`` so a (measure-zero)
#: 0.0 from the generator cannot produce an infinite skip.
_TINY = 1e-300

#: Uniform draws buffered per refill (batched RNG for the skip loop).
_BUFFER_SIZE = 192


class ReservoirSampler:
    """Maintains a uniform sample of fixed capacity over a stream.

    Feed chunks with :meth:`extend`; at any moment :attr:`sample` is a
    uniform random subset (without replacement) of everything seen.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained.
    random_state:
        Seed or generator controlling replacement decisions.
    """

    def __init__(self, capacity: int, random_state=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}.")
        self.capacity = int(capacity)
        self._rng = check_random_state(random_state)
        self._reservoir: np.ndarray | None = None
        self._filled = 0
        self.n_seen = 0
        # Algorithm L state: the running weight ``w`` and the absolute
        # (0-based) index of the next accepted row.
        self._w = 1.0
        self._next_accept = 0
        # Batched uniform draws for the skip loop.
        self._buffer = np.empty(0)
        self._buffer_pos = 0

    def extend(self, chunk) -> None:
        """Offer a chunk of rows to the reservoir."""
        chunk = np.atleast_2d(np.asarray(chunk, dtype=np.float64))
        n_rows = chunk.shape[0]
        if n_rows == 0:
            return
        if self._reservoir is None:
            self._reservoir = np.empty((self.capacity, chunk.shape[1]))
        accepts = 0
        pos = 0
        if self._filled < self.capacity:
            # Fill phase: copy rows in bulk until the reservoir is full.
            take = min(self.capacity - self._filled, n_rows)
            self._reservoir[self._filled : self._filled + take] = chunk[:take]
            self._filled += take
            self.n_seen += take
            accepts += take
            pos = take
            if self._filled == self.capacity:
                self._schedule_next(self.n_seen - 1)
            if pos >= n_rows:
                get_recorder().count("reservoir_accepts", accepts)
                return
        # Skip phase: jump straight to each accepted row.
        base = self.n_seen - pos  # absolute index of chunk[0]
        end = base + n_rows
        while self._next_accept < end:
            row = chunk[self._next_accept - base]
            slot = int(self._uniform() * self.capacity)
            self._reservoir[slot] = row
            accepts += 1
            self._schedule_next(self._next_accept)
        self.n_seen = end
        if accepts:
            get_recorder().count("reservoir_accepts", accepts)

    def _schedule_next(self, current: int) -> None:
        """Update ``w`` and draw the geometric skip to the next accept."""
        k = self.capacity
        self._w *= math.exp(math.log(max(self._uniform(), _TINY)) / k)
        log_keep = math.log1p(-self._w)
        if log_keep == 0.0:  # w underflowed to 0: skips are astronomical
            self._next_accept = 2**63
            return
        skip = math.floor(math.log(max(self._uniform(), _TINY)) / log_keep)
        self._next_accept = current + int(skip) + 1

    def _uniform(self) -> float:
        """Next uniform draw from the batched buffer."""
        if self._buffer_pos >= self._buffer.shape[0]:
            self._buffer = self._rng.random(_BUFFER_SIZE)
            self._buffer_pos = 0
        value = self._buffer[self._buffer_pos]
        self._buffer_pos += 1
        return float(value)

    @property
    def sample(self) -> np.ndarray:
        """The current reservoir contents, shape ``(min(n, capacity), d)``."""
        if self._reservoir is None:
            return np.empty((0, 0))
        return self._reservoir[: self._filled].copy()


def reservoir_sample(
    data, size: int, random_state=None, *, stream: DataStream | None = None
) -> np.ndarray:
    """One-shot uniform sample of ``size`` rows in a single pass.

    Accepts an array or an existing :class:`DataStream` (pass counting
    then reflects the extra pass this sample costs).
    """
    source = stream if stream is not None else as_stream(data)
    sampler = ReservoirSampler(size, random_state=random_state)
    for chunk in source:
        sampler.extend(chunk)
    return sampler.sample
