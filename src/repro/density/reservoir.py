"""Reservoir sampling (Vitter's Algorithm R) over data streams.

The kernel density estimator picks its kernel centers as a uniform random
sample of the dataset, collected *during* the single fit pass — reservoir
sampling is what makes that possible without knowing ``n`` up front.
"""

from __future__ import annotations

import numpy as np

from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import check_random_state

__all__ = [
    "ReservoirSampler",
    "reservoir_sample",
]


class ReservoirSampler:
    """Maintains a uniform sample of fixed capacity over a stream.

    Feed chunks with :meth:`extend`; at any moment :attr:`sample` is a
    uniform random subset (without replacement) of everything seen.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained.
    random_state:
        Seed or generator controlling replacement decisions.
    """

    def __init__(self, capacity: int, random_state=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}.")
        self.capacity = int(capacity)
        self._rng = check_random_state(random_state)
        self._reservoir: np.ndarray | None = None
        self._filled = 0
        self.n_seen = 0

    def extend(self, chunk) -> None:
        """Offer a chunk of rows to the reservoir."""
        chunk = np.atleast_2d(np.asarray(chunk, dtype=np.float64))
        for row in chunk:
            self._offer(row)

    def _offer(self, row: np.ndarray) -> None:
        if self._reservoir is None:
            self._reservoir = np.empty((self.capacity, row.shape[0]))
        self.n_seen += 1
        if self._filled < self.capacity:
            self._reservoir[self._filled] = row
            self._filled += 1
            return
        # Classic Algorithm R: element i (1-based) replaces a random slot
        # with probability capacity / i.
        slot = self._rng.integers(0, self.n_seen)
        if slot < self.capacity:
            self._reservoir[slot] = row

    @property
    def sample(self) -> np.ndarray:
        """The current reservoir contents, shape ``(min(n, capacity), d)``."""
        if self._reservoir is None:
            return np.empty((0, 0))
        return self._reservoir[: self._filled].copy()


def reservoir_sample(
    data, size: int, random_state=None, *, stream: DataStream | None = None
) -> np.ndarray:
    """One-shot uniform sample of ``size`` rows in a single pass.

    Accepts an array or an existing :class:`DataStream` (pass counting
    then reflects the extra pass this sample costs).
    """
    source = stream if stream is not None else as_stream(data)
    sampler = ReservoirSampler(size, random_state=random_state)
    for chunk in source:
        sampler.extend(chunk)
    return sampler.sample
