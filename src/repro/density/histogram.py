"""Multi-dimensional histogram ("grid") density estimator.

A drop-in alternative back-end for the biased sampler: partition the
bounding box into ``bins_per_dim^d`` equal cells and estimate the density
inside a cell as ``count / cell_volume``. This is the estimator family the
Palmer-Faloutsos baseline uses (with hashing); here it is exact
(dictionary of occupied cells, no collisions), which isolates the effect
of hash collisions in the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.density.base import DensityEstimator
from repro.exceptions import ParameterError
from repro.utils.scaling import MinMaxScaler
from repro.utils.streams import DataStream

__all__ = ["GridDensityEstimator"]


class GridDensityEstimator(DensityEstimator):
    """Equi-width grid histogram over the data bounding box.

    Dataset passes: 2 — one scan finds the bounding box, one counts
    cell occupancies (the box scan still runs when ``bounds`` is given;
    see Notes for the single-pass escape hatch).

    Memory: O(m) — only occupied cells are stored in the sparse count
    map; chunks are binned and discarded as the scan advances.

    Parameters
    ----------
    bins_per_dim:
        Number of cells along each attribute. Total cells are
        ``bins_per_dim ** d`` but only occupied cells are stored.
    bounds:
        Optional ``(mins, maxs)`` bounding box; when given, fitting
        skips the box-finding pass (see Notes).

    Notes
    -----
    Fitting takes *two* passes when the bounding box is unknown (one to
    find the box, one to count); pass ``bounds=(mins, maxs)`` to fit in a
    single pass like the paper's kernel estimator.
    """

    __n_passes__ = 2

    #: Peak working-memory bound of fit()/evaluate() (audited by RA005).
    __space__ = "O(m)"

    def __init__(self, bins_per_dim: int = 32, bounds=None) -> None:
        if bins_per_dim < 1:
            raise ParameterError(
                f"bins_per_dim must be >= 1; got {bins_per_dim}."
            )
        self.bins_per_dim = int(bins_per_dim)
        self.bounds = bounds
        # Fitted state
        self.scaler_: MinMaxScaler | None = None
        self.cells_: dict[tuple[int, ...], int] | None = None
        self.cell_volume_: float | None = None
        self.n_points_: int | None = None
        self.n_dims_: int | None = None

    def fit(self, data=None, *, stream: DataStream | None = None):
        source = self._as_stream(data, stream)
        scaler = MinMaxScaler()
        if self.bounds is not None:
            mins, maxs = self.bounds
            probe = np.vstack([np.asarray(mins, float), np.asarray(maxs, float)])
            scaler.fit(probe)
        else:
            for chunk in source:
                scaler.partial_fit(chunk)
        self.scaler_ = scaler

        cells: dict[tuple[int, ...], int] = {}
        n = 0
        n_dims = None
        for chunk in source:
            n_dims = chunk.shape[1]
            n += chunk.shape[0]
            idx = self._cell_indices(chunk)
            uniq, counts = np.unique(idx, axis=0, return_counts=True)
            for cell, count in zip(map(tuple, uniq), counts):
                cells[cell] = cells.get(cell, 0) + int(count)
        if n == 0:
            raise ParameterError("cannot fit a density estimator on no data.")
        self.n_points_ = n
        self.n_dims_ = n_dims
        self.cells_ = cells
        # Cell volume in *original* coordinates so densities integrate to n.
        self.cell_volume_ = scaler.volume_ / self.bins_per_dim**n_dims
        return self

    def _cell_indices(self, points: np.ndarray) -> np.ndarray:
        unit = self.scaler_.transform(points)
        idx = np.floor(unit * self.bins_per_dim).astype(np.int64)
        # Points on the max boundary belong to the last cell; points
        # outside the fitted box clamp to the nearest edge cell.
        return np.clip(idx, 0, self.bins_per_dim - 1)

    def _evaluate(self, points: np.ndarray) -> np.ndarray:
        idx = self._cell_indices(points)
        counts = np.fromiter(
            (self.cells_.get(tuple(row), 0) for row in idx),
            dtype=np.float64,
            count=idx.shape[0],
        )
        return counts / self.cell_volume_

    @property
    def n_occupied_cells_(self) -> int:
        """Number of non-empty grid cells after fitting."""
        self._require_fitted()
        return len(self.cells_)
