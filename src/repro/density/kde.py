"""Kernel density estimation fit in one dataset pass.

This is the estimator the paper builds its sampler on (section 2.2,
following Gunopulos et al. SIGMOD 2000): kernel centers are a uniform
random sample of the dataset — collected with reservoir sampling during
the same pass that accumulates the streaming moments used by the
bandwidth rule — and the estimate is a product-kernel sum scaled so it
integrates to ``n`` over the data domain:

``f(x) = (n / m) * sum_{i=1..m} prod_j K((x_j - c_ij) / h_j) / h_j``

where ``m`` is the number of kernels, ``c_i`` the centers and ``h_j`` the
per-attribute bandwidths.
"""

from __future__ import annotations

import numpy as np

from repro.density.bandwidth import resolve_bandwidth
from repro.density.base import DensityEstimator
from repro.density.kernels import get_kernel
from repro.density.reservoir import ReservoirSampler
from repro.exceptions import ParameterError
from repro.obs import get_recorder
from repro.parallel import parallel_map_chunks
from repro.sharding import ShardPlan, fit_shards, merge_partials, resolve_shards
from repro.utils.streams import DataStream
from repro.utils.validation import check_random_state

__all__ = ["KernelDensityEstimator", "chunk_moment_stats"]

#: Scratch budget (elements) for one row tile of the blocked kernel
#: sum: three ``(tile, m)`` float64 buffers of this many elements stay
#: around 1.5 MB total, inside a typical per-core L2 working set.
_EVAL_TILE_ELEMENTS = 65536


def chunk_moment_stats(chunk: np.ndarray) -> tuple[int, np.ndarray, np.ndarray]:
    """One chunk's ``(count, mean, m2)`` moment statistics.

    This is the per-chunk half of the Welford update, split out so
    shard workers can compute it remotely: the fold half
    (:meth:`_StreamingMoments.merge_stats`) is not FP-associative and
    must run on the coordinator in global chunk order to stay
    byte-identical to the serial pass.
    """
    mean_b = chunk.mean(axis=0)
    m2_b = ((chunk - mean_b) ** 2).sum(axis=0)
    return chunk.shape[0], mean_b, m2_b


class _StreamingMoments:
    """Chunk-merged Welford accumulator for per-attribute mean/variance."""

    def __init__(self) -> None:
        self.count = 0
        self.mean: np.ndarray | None = None
        self.m2: np.ndarray | None = None

    def update(self, chunk: np.ndarray) -> None:
        if chunk.shape[0] == 0:
            return
        self.merge_stats(*chunk_moment_stats(chunk))

    def merge_stats(self, count: int, mean: np.ndarray, m2: np.ndarray) -> None:
        """Fold one chunk's ``(count, mean, m2)`` into the running state.

        The exact operation sequence the serial ``update`` always
        performed — sharded fits replay it with the same statistics in
        the same (global chunk) order, so the fitted moments are
        byte-identical.
        """
        if count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = count, mean, m2
            return
        delta = mean - self.mean
        total = self.count + count
        self.mean = self.mean + delta * (count / total)
        self.m2 = self.m2 + m2 + delta**2 * (self.count * count / total)
        self.count = total

    @property
    def std(self) -> np.ndarray:
        if self.count < 2:
            return np.zeros_like(self.mean)
        return np.sqrt(self.m2 / (self.count - 1))


class KernelDensityEstimator(DensityEstimator):
    """Product-kernel density estimator with reservoir-sampled centers.

    Dataset passes: 1 — centers (reservoir) and bandwidth moments are
    both collected in the single fit scan.

    Memory: O(m) — the reservoir of ``n_kernels`` centers plus
    per-attribute moment vectors; evaluation works block by block.

    Parameters
    ----------
    n_kernels:
        Number of kernel centers (the paper recommends 1000; Figure 7
        sweeps 100-1200).
    kernel:
        Kernel name or instance; the paper uses ``"epanechnikov"``.
    bandwidth:
        ``"scott"`` (default), ``"silverman"``, a positive scalar, or a
        per-attribute vector of widths.
    random_state:
        Seed for the reservoir that picks the centers.
    n_jobs:
        Worker count for :meth:`evaluate`'s chunked block evaluation
        (``None`` defers to the ambient default / ``REPRO_N_JOBS``; see
        :mod:`repro.parallel`). Results are byte-identical for any
        value.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(5000, 2))
    >>> kde = KernelDensityEstimator(n_kernels=200, random_state=0).fit(data)
    >>> float(kde.evaluate([[0.0, 0.0]])[0]) > float(kde.evaluate([[4.0, 4.0]])[0])
    True
    """

    __n_passes__ = 1

    #: Peak working-memory bound of fit()/evaluate() (audited by RA005).
    __space__ = "O(m)"

    def __init__(
        self,
        n_kernels: int = 1000,
        kernel: str = "epanechnikov",
        bandwidth="scott",
        random_state=None,
        n_jobs: int | None = None,
    ) -> None:
        if n_kernels < 1:
            raise ParameterError(f"n_kernels must be >= 1; got {n_kernels}.")
        self.n_kernels = int(n_kernels)
        self.kernel = get_kernel(kernel)
        self.bandwidth = bandwidth
        self.random_state = random_state
        self.n_jobs = n_jobs
        # Fitted state
        self.centers_: np.ndarray | None = None
        self.bandwidths_: np.ndarray | None = None
        self.n_points_: int | None = None
        self.n_dims_: int | None = None

    # -- fitting ---------------------------------------------------------------

    def fit(self, data=None, *, stream: DataStream | None = None):
        """Fit in a single pass: reservoir centers + streaming moments.

        When the ambient shard count (``repro run --shards`` /
        ``REPRO_SHARDS`` / :func:`repro.sharding.use_shards`) is above
        one, the single pass is executed as a sharded fan-out instead —
        byte-identical to the serial scan (DESIGN.md §13).
        """
        source = self._as_stream(data, stream)
        n_shards = resolve_shards(None)
        if (
            n_shards > 1
            and len(source) > 0
            and hasattr(source, "chunk_sizes")
        ):
            return self._fit_sharded(source, n_shards)
        else:
            rng = check_random_state(self.random_state)
            reservoir = ReservoirSampler(self.n_kernels, random_state=rng)
            moments = _StreamingMoments()
            for chunk in source:
                reservoir.extend(chunk)
                moments.update(chunk)
            if moments.count == 0:
                raise ParameterError(
                    "cannot fit a density estimator on no data."
                )
            self.n_points_ = moments.count
            self.centers_ = reservoir.sample
            self.n_dims_ = self.centers_.shape[1]
            self.bandwidths_ = resolve_bandwidth(
                self.bandwidth,
                moments.std,
                self.n_points_,
                self.n_dims_,
                self.kernel,
                scale=float(np.abs(moments.mean).max()),
            )
            return self

    def _fit_sharded(self, source: DataStream, n_shards: int):
        """The fit pass as a shard fan-out (byte-identical to serial).

        The coordinator draws the data-free reservoir acceptance plan
        (consuming the generator exactly as the serial pass would, so
        downstream draws are unaffected), shard workers fetch the
        planned rows and per-chunk moment statistics, and the folded
        partials are assembled by :meth:`fit_from_partials`.
        """
        rng = check_random_state(self.random_state)
        reservoir = ReservoirSampler(self.n_kernels, random_state=rng)
        plan = ShardPlan(source, n_shards)
        accept_plan = reservoir.plan(plan.n_rows)
        state = fit_shards(
            plan, accept_plan.wanted_indices(), n_jobs=self.n_jobs
        )
        get_recorder().count("reservoir_accepts", accept_plan.accepts)
        return self.fit_from_partials([state], accept_plan)

    def fit_from_partials(self, partials, plan):
        """Assemble a fitted estimator from shard partial-fit states.

        Parameters
        ----------
        partials:
            ``ShardFitState`` partials in shard (stream) order — one
            per shard, or a single already-folded state.
        plan:
            The :class:`~repro.density.reservoir.ReservoirPlan` the
            shard row fetches were planned against.
        """
        state = merge_partials(list(partials))
        moments = _StreamingMoments()
        for count, mean, m2 in state.chunk_stats:
            moments.merge_stats(count, mean, m2)
        if moments.count == 0:
            raise ParameterError("cannot fit a density estimator on no data.")
        if moments.count != plan.n_rows:
            raise ParameterError(
                f"shard partials cover {moments.count} row(s) but the "
                f"reservoir plan was drawn for {plan.n_rows}; the plan "
                "must be drawn against the same stream the shards read."
            )
        self.n_points_ = moments.count
        self.centers_ = plan.assemble(state.fetched_rows())
        self.n_dims_ = self.centers_.shape[1]
        self.bandwidths_ = resolve_bandwidth(
            self.bandwidth,
            moments.std,
            self.n_points_,
            self.n_dims_,
            self.kernel,
            scale=float(np.abs(moments.mean).max()),
        )
        return self

    def fit_from_centers(self, centers, n_points: int, bandwidths, std=None):
        """Construct a fitted estimator from precomputed pieces.

        Useful for tests and for transplanting an estimator between
        processes without refitting.

        Parameters
        ----------
        centers:
            Kernel centers, shape ``(m, d)``.
        n_points:
            Dataset size the estimator represents.
        bandwidths:
            Numeric bandwidths (scalar or per-attribute vector), or a
            rule name (``"scott"`` / ``"silverman"``) — the latter only
            together with ``std``: a rule resolved against fabricated
            unit spreads would silently produce wrong widths.
        std:
            Per-attribute standard deviations of the *dataset* (not of
            the centers), required when ``bandwidths`` is a rule name.
        """
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        self.centers_ = centers
        self.n_points_ = int(n_points)
        self.n_dims_ = centers.shape[1]
        if isinstance(bandwidths, str) and std is None:
            raise ParameterError(
                f"bandwidth rule {bandwidths!r} needs the dataset's "
                "per-attribute standard deviations; pass std= or give "
                "numeric bandwidths."
            )
        self.bandwidths_ = resolve_bandwidth(
            bandwidths,
            np.ones(self.n_dims_) if std is None else np.asarray(
                std, dtype=np.float64
            ),
            self.n_points_,
            self.n_dims_,
            self.kernel,
        )
        return self

    # -- evaluation --------------------------------------------------------------

    def _evaluate(self, points: np.ndarray) -> np.ndarray:
        # Chunk queries so the (chunk, n_centers) work array stays small.
        chunk_rows = max(1, int(2_000_000 / max(1, self.centers_.shape[0])))
        if points.shape[0] <= chunk_rows:
            return self._evaluate_block(points)
        blocks = [
            points[start : start + chunk_rows]
            for start in range(0, points.shape[0], chunk_rows)
        ]
        # Each block is deterministic, so the ordered slice-fill is
        # byte-identical to the serial loop for any n_jobs. The output
        # length is known up front — fill a preallocated array instead
        # of concatenating the block results (RA006).
        out = np.empty(points.shape[0], dtype=np.float64)
        offset = 0
        for values in parallel_map_chunks(
            self._evaluate_block, blocks, n_jobs=self.n_jobs
        ):
            out[offset : offset + values.shape[0]] = values
            offset += values.shape[0]
        return out

    def _evaluate_block(self, block: np.ndarray) -> np.ndarray:
        m = self.centers_.shape[0]
        rows = int(block.shape[0])
        recorder = get_recorder()
        # One kernel evaluation = one (query point, center) pair.
        recorder.count("kernel_evals", rows * m)
        # Row-tile size: keep the three (tile, m) scratch arrays inside
        # the L2 working set. Tiling over rows only preserves the exact
        # per-row arithmetic (each row's product chain and its axis-1
        # pairwise sum are row-local), so the output is byte-identical
        # to an untiled evaluation.
        tile = max(1, min(rows, int(_EVAL_TILE_ELEMENTS / max(1, m))))
        u = np.empty((tile, m))
        prof = np.empty((tile, m))
        weights = np.empty((tile, m))
        densities = np.empty(rows)
        scale = self.n_points_ / m
        with recorder.phase("kde_eval_block") as span:
            span.set(rows=rows, centers=m)
            for start in range(0, rows, tile):
                stop = min(rows, start + tile)
                r = stop - start
                uu, pp, ww = u[:r], prof[:r], weights[:r]
                ww.fill(1.0)
                # Accumulate the product over dimensions one attribute
                # at a time to avoid materialising a (rows, m, d)
                # tensor; all three scratch buffers are reused across
                # tiles, so the loop allocates nothing per tile.
                for j in range(self.n_dims_):
                    h = self.bandwidths_[j]
                    np.subtract(
                        block[start:stop, j, None],
                        self.centers_[None, :, j],
                        out=uu,
                    )
                    uu /= h
                    self.kernel.profile(uu, out=pp)
                    pp /= h
                    ww *= pp
                np.sum(ww, axis=1, out=densities[start:stop])
                densities[start:stop] *= scale
        if recorder.enabled:
            recorder.observe("kde_eval_chunk_seconds", span.elapsed)
            if span.elapsed > 0:
                recorder.observe(
                    "kde_eval_rows_per_second", rows / span.elapsed
                )
        return densities

    def ball_mass(self, centers, radius, *, n_mc: int = 256, random_state=None):
        """See :meth:`DensityEstimator.ball_mass` (Monte-Carlo over the ball)."""
        return super().ball_mass(
            centers, radius, n_mc=n_mc, random_state=random_state
        )
