"""DCT-compressed histogram density estimator.

The other transform-domain summary the paper cites (Lee, Kim & Chung,
SIGMOD 1999): take the multi-dimensional type-II discrete cosine
transform of an equi-width histogram and keep the ``n_coefficients``
largest-magnitude coefficients. Compared with Haar wavelets the DCT
basis is smooth, so the reconstruction rings less on gradual density
changes and more on sharp cluster edges.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as scipy_fft

from repro.density.base import DensityEstimator
from repro.exceptions import ParameterError
from repro.utils.scaling import MinMaxScaler
from repro.utils.streams import DataStream

__all__ = ["DctDensityEstimator"]


class DctDensityEstimator(DensityEstimator):
    """Top-m DCT coefficients of an equi-width histogram.

    Dataset passes: 2 — a bounding-box scan followed by the histogram
    counting scan the DCT is taken over.

    Memory: O(m) — the dense ``bins_per_dim ** d`` histogram the DCT
    is taken over, then the retained coefficient table.

    Parameters
    ----------
    bins_per_dim:
        Histogram resolution per attribute (any size >= 2).
    n_coefficients:
        DCT coefficients retained.
    """

    __n_passes__ = 2

    #: Peak working-memory bound of fit()/evaluate() (audited by RA005).
    __space__ = "O(m)"

    def __init__(self, bins_per_dim: int = 32, n_coefficients: int = 1000):
        if bins_per_dim < 2:
            raise ParameterError(
                f"bins_per_dim must be >= 2; got {bins_per_dim}."
            )
        if n_coefficients < 1:
            raise ParameterError(
                f"n_coefficients must be >= 1; got {n_coefficients}."
            )
        self.bins_per_dim = int(bins_per_dim)
        self.n_coefficients = int(n_coefficients)
        self.scaler_: MinMaxScaler | None = None
        self.grid_: np.ndarray | None = None
        self.cell_volume_: float | None = None
        self.n_points_: int | None = None
        self.n_dims_: int | None = None
        self.n_kept_: int | None = None

    def fit(self, data=None, *, stream: DataStream | None = None):
        source = self._as_stream(data, stream)
        scaler = MinMaxScaler()
        for chunk in source:
            scaler.partial_fit(chunk)
        self.scaler_ = scaler

        n_dims = source.n_dims
        if self.bins_per_dim**n_dims > 2**24:
            raise ParameterError(
                "DCT grid too large; lower bins_per_dim or the "
                "dimensionality."
            )
        histogram = np.zeros((self.bins_per_dim,) * n_dims)
        n = 0
        for chunk in source:
            n += chunk.shape[0]
            idx = self._cell_indices(chunk)
            np.add.at(histogram, tuple(idx.T), 1.0)
        if n == 0:
            raise ParameterError("cannot fit a density estimator on no data.")

        coeffs = scipy_fft.dctn(histogram, norm="ortho")
        flat = np.abs(coeffs).ravel()
        keep = min(self.n_coefficients, flat.size)
        if keep < flat.size:
            # Exact top-k by magnitude (ties broken arbitrarily, so the
            # summary honours the budget exactly).
            drop = np.argpartition(flat, flat.size - keep)[: flat.size - keep]
            coeffs[np.unravel_index(drop, coeffs.shape)] = 0.0
        self.n_kept_ = int((coeffs != 0).sum())
        self.grid_ = scipy_fft.idctn(coeffs, norm="ortho")
        self.n_points_ = n
        self.n_dims_ = n_dims
        self.cell_volume_ = scaler.volume_ / self.bins_per_dim**n_dims
        return self

    def _cell_indices(self, points: np.ndarray) -> np.ndarray:
        unit = self.scaler_.transform(points)
        idx = np.floor(unit * self.bins_per_dim).astype(np.int64)
        return np.clip(idx, 0, self.bins_per_dim - 1)

    def _evaluate(self, points: np.ndarray) -> np.ndarray:
        idx = self._cell_indices(points)
        values = self.grid_[tuple(idx.T)]
        return np.maximum(values, 0.0) / self.cell_volume_
