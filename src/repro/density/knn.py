"""k-nearest-neighbour density estimation over a uniform sample.

The third density back-end: keep a reservoir sample of the dataset, and
estimate the density at ``x`` from the distance to the sample's k-th
nearest neighbour — ``f(x) = n * k' / (n_sample * V_ball(r_k))`` — the
classic Loftsgaarden-Quesenberry estimator rescaled to integrate to
``n``. Adaptive (bandwidth shrinks where data is dense) but noisier than
the kernel estimator; included for the estimator ablation.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.density.base import DensityEstimator
from repro.density.reservoir import ReservoirSampler
from repro.exceptions import ParameterError
from repro.utils.geometry import ball_volume
from repro.utils.streams import DataStream
from repro.utils.validation import check_random_state

__all__ = ["KnnDensityEstimator"]


class KnnDensityEstimator(DensityEstimator):
    """Density from the distance to the k-th nearest sampled point.

    Dataset passes: 1 — the reservoir that keeps the reference points
    fills in a single fit scan.

    Memory: O(m) — the ``n_sample``-point reservoir is the whole
    fitted state.

    Parameters
    ----------
    n_sample:
        Reservoir size; the estimator keeps this many points.
    k:
        Which neighbour's distance sets the local scale. Must satisfy
        ``k <= n_sample``.
    random_state:
        Seed or generator for the reservoir draws.
    """

    __n_passes__ = 1

    #: Peak working-memory bound of fit()/evaluate() (audited by RA005).
    __space__ = "O(m)"

    def __init__(self, n_sample: int = 1000, k: int = 10, random_state=None):
        if n_sample < 1:
            raise ParameterError(f"n_sample must be >= 1; got {n_sample}.")
        if not 1 <= k <= n_sample:
            raise ParameterError(
                f"k must be in [1, n_sample={n_sample}]; got {k}."
            )
        self.n_sample = int(n_sample)
        self.k = int(k)
        self.random_state = random_state
        self.tree_: cKDTree | None = None
        self.sample_size_: int | None = None
        self.n_points_: int | None = None
        self.n_dims_: int | None = None

    def fit(self, data=None, *, stream: DataStream | None = None):
        source = self._as_stream(data, stream)
        rng = check_random_state(self.random_state)
        reservoir = ReservoirSampler(self.n_sample, random_state=rng)
        n = 0
        for chunk in source:
            reservoir.extend(chunk)
            n += chunk.shape[0]
        if n == 0:
            raise ParameterError("cannot fit a density estimator on no data.")
        sample = reservoir.sample
        self.n_points_ = n
        self.n_dims_ = sample.shape[1]
        self.sample_size_ = sample.shape[0]
        self.tree_ = cKDTree(sample)
        return self

    def _evaluate(self, points: np.ndarray) -> np.ndarray:
        k = min(self.k, self.sample_size_)
        dists, _ = self.tree_.query(points, k=k)
        if k > 1:
            r_k = dists[:, -1]
        else:
            r_k = np.atleast_1d(dists)
        # Guard against r_k == 0 (query point coincides with >= k sample
        # points); substitute the smallest positive distance seen.
        positive = r_k[r_k > 0]
        floor = positive.min() if positive.size else 1e-12
        r_k = np.where(r_k > 0, r_k, floor)
        volumes = np.array([ball_volume(r, self.n_dims_) for r in r_k])
        return self.n_points_ * k / (self.sample_size_ * volumes)
