"""Density estimation substrate.

The biased sampler (``repro.core``) only needs an object with the
:class:`~repro.density.base.DensityEstimator` interface; the paper uses
kernel density estimation (``KernelDensityEstimator``) but stresses the
choice is orthogonal, so grid-histogram and k-NN estimators are provided
as drop-in alternatives (and exercised by the ablation benchmark).
"""

from repro.density.base import DensityEstimator
from repro.density.kernels import (
    Kernel,
    EpanechnikovKernel,
    GaussianKernel,
    UniformKernel,
    TriangularKernel,
    BiweightKernel,
    get_kernel,
)
from repro.density.bandwidth import scott_bandwidth, silverman_bandwidth
from repro.density.kde import KernelDensityEstimator
from repro.density.histogram import GridDensityEstimator
from repro.density.knn import KnnDensityEstimator
from repro.density.wavelet import WaveletDensityEstimator
from repro.density.dct import DctDensityEstimator
from repro.density.reservoir import ReservoirSampler, reservoir_sample

__all__ = [
    "DensityEstimator",
    "Kernel",
    "EpanechnikovKernel",
    "GaussianKernel",
    "UniformKernel",
    "TriangularKernel",
    "BiweightKernel",
    "get_kernel",
    "scott_bandwidth",
    "silverman_bandwidth",
    "KernelDensityEstimator",
    "GridDensityEstimator",
    "KnnDensityEstimator",
    "WaveletDensityEstimator",
    "DctDensityEstimator",
    "ReservoirSampler",
    "reservoir_sample",
]
