"""Density estimation substrate.

The biased sampler (``repro.core``) only needs an object with the
:class:`~repro.density.base.DensityEstimator` interface; the paper uses
kernel density estimation (``KernelDensityEstimator``) but stresses the
choice is orthogonal, so grid-histogram and k-NN estimators are provided
as drop-in alternatives (and exercised by the ablation benchmark).
"""

from repro.density.backends import (
    DENSITY_BACKEND_ENV,
    density_backend_names,
    make_density_estimator,
    resolve_density_backend,
    use_density_backend,
)
from repro.density.base import DensityEstimator
from repro.density.kernels import (
    Kernel,
    EpanechnikovKernel,
    GaussianKernel,
    UniformKernel,
    TriangularKernel,
    BiweightKernel,
    get_kernel,
)
from repro.density.bandwidth import scott_bandwidth, silverman_bandwidth
from repro.density.kde import KernelDensityEstimator
from repro.density.histogram import GridDensityEstimator
from repro.density.tree import TreeDensityEstimator, tree_leaf_indices
from repro.density.knn import KnnDensityEstimator
from repro.density.wavelet import WaveletDensityEstimator
from repro.density.dct import DctDensityEstimator
from repro.density.reservoir import ReservoirSampler, reservoir_sample

__all__ = [
    "DENSITY_BACKEND_ENV",
    "DensityEstimator",
    "density_backend_names",
    "make_density_estimator",
    "resolve_density_backend",
    "use_density_backend",
    "Kernel",
    "EpanechnikovKernel",
    "GaussianKernel",
    "UniformKernel",
    "TriangularKernel",
    "BiweightKernel",
    "get_kernel",
    "scott_bandwidth",
    "silverman_bandwidth",
    "KernelDensityEstimator",
    "GridDensityEstimator",
    "TreeDensityEstimator",
    "tree_leaf_indices",
    "KnnDensityEstimator",
    "WaveletDensityEstimator",
    "DctDensityEstimator",
    "ReservoirSampler",
    "reservoir_sample",
]
