"""One-dimensional kernel profiles used in product form.

The multi-dimensional kernel density estimate uses product kernels:

``K_d(u_1..u_d) = prod_j K(u_j)``

with each 1-D profile integrating to one. The paper uses the
Epanechnikov kernel (optimal mean integrated squared error and cheap to
evaluate); Gaussian, uniform, triangular and biweight profiles are
provided for completeness and ablation.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.exceptions import ParameterError
from repro.obs import get_recorder

__all__ = [
    "Kernel",
    "EpanechnikovKernel",
    "GaussianKernel",
    "UniformKernel",
    "TriangularKernel",
    "BiweightKernel",
    "get_kernel",
]


class Kernel(abc.ABC):
    """A symmetric 1-D kernel profile integrating to one.

    Attributes
    ----------
    support:
        Half-width of the support, ``inf`` for kernels with unbounded
        support (Gaussian). Profiles are zero outside ``[-support, support]``.
    canonical_bandwidth:
        The factor ``delta_0(K)`` that converts a Gaussian-reference
        bandwidth into this kernel's equivalent bandwidth (see
        Silverman 1986, section 3.4.2 "canonical kernels").
    """

    support: float = 1.0
    canonical_bandwidth: float = 1.0
    name: str = "kernel"

    @abc.abstractmethod
    def profile(
        self, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Kernel value at (already scaled) offsets ``u``.

        When ``out`` is given it receives the result (and is returned),
        letting blocked evaluation loops reuse one scratch buffer
        instead of allocating per call; ``out`` must not overlap ``u``.
        Implementations keep the exact arithmetic (operation order and
        rounding) of the allocating path, so results are byte-identical
        either way.
        """

    def __call__(self, u) -> np.ndarray:
        values = np.asarray(u, dtype=np.float64)
        get_recorder().count("kernel_evals", values.size)
        if values.ndim == 0:
            # Ufuncs hand back scalars (not 0-d arrays) for 0-d input,
            # which the profiles' ``out=``-chains cannot consume; route
            # scalars through a length-1 view instead.
            return self.profile(values.reshape(1))[0]
        return self.profile(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class EpanechnikovKernel(Kernel):
    """``K(u) = 0.75 (1 - u^2)`` on ``[-1, 1]`` — the paper's choice."""

    support = 1.0
    canonical_bandwidth = 2.214  # delta_0 relative to the Gaussian kernel
    name = "epanechnikov"

    def profile(
        self, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        # Same expression tree as ``0.75 * (1.0 - u * u)``: square,
        # subtract from one, scale — each step rounds identically.
        out = np.multiply(u, u, out=out)
        np.subtract(1.0, out, out=out)
        out *= 0.75
        np.copyto(out, 0.0, where=~(np.abs(u) <= 1.0))
        return out


class GaussianKernel(Kernel):
    """Standard normal profile; unbounded support."""

    support = math.inf
    canonical_bandwidth = 1.0
    name = "gaussian"

    _NORM = 1.0 / math.sqrt(2.0 * math.pi)

    def profile(
        self, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        # Mirrors ``self._NORM * np.exp(-0.5 * u * u)`` left to right:
        # (-0.5 * u) * u, exp, scale.
        out = np.multiply(-0.5, u, out=out)
        out *= u
        np.exp(out, out=out)
        out *= self._NORM
        return out


class UniformKernel(Kernel):
    """Box profile ``K(u) = 1/2`` on ``[-1, 1]``."""

    support = 1.0
    canonical_bandwidth = 1.740
    name = "uniform"

    def profile(
        self, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            out = np.empty_like(u, dtype=np.float64)
        out.fill(0.5)
        np.copyto(out, 0.0, where=~(np.abs(u) <= 1.0))
        return out


class TriangularKernel(Kernel):
    """Tent profile ``K(u) = 1 - |u|`` on ``[-1, 1]``."""

    support = 1.0
    canonical_bandwidth = 2.432
    name = "triangular"

    def profile(
        self, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        out = np.absolute(u, out=out)
        np.subtract(1.0, out, out=out)
        np.copyto(out, 0.0, where=~(out > 0.0))
        return out


class BiweightKernel(Kernel):
    """Quartic profile ``K(u) = 15/16 (1 - u^2)^2`` on ``[-1, 1]``."""

    support = 1.0
    canonical_bandwidth = 2.623
    name = "biweight"

    def profile(
        self, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        w = 1.0 - u * u
        out = np.multiply((15.0 / 16.0) * w, w, out=out)
        np.copyto(out, 0.0, where=~(np.abs(u) <= 1.0))
        return out


_KERNELS: dict[str, type[Kernel]] = {
    cls.name: cls
    for cls in (
        EpanechnikovKernel,
        GaussianKernel,
        UniformKernel,
        TriangularKernel,
        BiweightKernel,
    )
}


def get_kernel(kernel: str | Kernel) -> Kernel:
    """Resolve a kernel name or instance to a :class:`Kernel`.

    >>> get_kernel("epanechnikov").name
    'epanechnikov'
    """
    if isinstance(kernel, Kernel):
        return kernel
    try:
        return _KERNELS[kernel]()
    except KeyError:
        raise ParameterError(
            f"unknown kernel {kernel!r}; choose from {sorted(_KERNELS)}."
        ) from None
