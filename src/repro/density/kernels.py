"""One-dimensional kernel profiles used in product form.

The multi-dimensional kernel density estimate uses product kernels:

``K_d(u_1..u_d) = prod_j K(u_j)``

with each 1-D profile integrating to one. The paper uses the
Epanechnikov kernel (optimal mean integrated squared error and cheap to
evaluate); Gaussian, uniform, triangular and biweight profiles are
provided for completeness and ablation.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.exceptions import ParameterError
from repro.obs import get_recorder

__all__ = [
    "Kernel",
    "EpanechnikovKernel",
    "GaussianKernel",
    "UniformKernel",
    "TriangularKernel",
    "BiweightKernel",
    "get_kernel",
]


class Kernel(abc.ABC):
    """A symmetric 1-D kernel profile integrating to one.

    Attributes
    ----------
    support:
        Half-width of the support, ``inf`` for kernels with unbounded
        support (Gaussian). Profiles are zero outside ``[-support, support]``.
    canonical_bandwidth:
        The factor ``delta_0(K)`` that converts a Gaussian-reference
        bandwidth into this kernel's equivalent bandwidth (see
        Silverman 1986, section 3.4.2 "canonical kernels").
    """

    support: float = 1.0
    canonical_bandwidth: float = 1.0
    name: str = "kernel"

    @abc.abstractmethod
    def profile(self, u: np.ndarray) -> np.ndarray:
        """Kernel value at (already scaled) offsets ``u``."""

    def __call__(self, u) -> np.ndarray:
        values = np.asarray(u, dtype=np.float64)
        get_recorder().count("kernel_evals", values.size)
        return self.profile(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class EpanechnikovKernel(Kernel):
    """``K(u) = 0.75 (1 - u^2)`` on ``[-1, 1]`` — the paper's choice."""

    support = 1.0
    canonical_bandwidth = 2.214  # delta_0 relative to the Gaussian kernel
    name = "epanechnikov"

    def profile(self, u: np.ndarray) -> np.ndarray:
        out = 0.75 * (1.0 - u * u)
        return np.where(np.abs(u) <= 1.0, out, 0.0)


class GaussianKernel(Kernel):
    """Standard normal profile; unbounded support."""

    support = math.inf
    canonical_bandwidth = 1.0
    name = "gaussian"

    _NORM = 1.0 / math.sqrt(2.0 * math.pi)

    def profile(self, u: np.ndarray) -> np.ndarray:
        return self._NORM * np.exp(-0.5 * u * u)


class UniformKernel(Kernel):
    """Box profile ``K(u) = 1/2`` on ``[-1, 1]``."""

    support = 1.0
    canonical_bandwidth = 1.740
    name = "uniform"

    def profile(self, u: np.ndarray) -> np.ndarray:
        return np.where(np.abs(u) <= 1.0, 0.5, 0.0)


class TriangularKernel(Kernel):
    """Tent profile ``K(u) = 1 - |u|`` on ``[-1, 1]``."""

    support = 1.0
    canonical_bandwidth = 2.432
    name = "triangular"

    def profile(self, u: np.ndarray) -> np.ndarray:
        out = 1.0 - np.abs(u)
        return np.where(out > 0.0, out, 0.0)


class BiweightKernel(Kernel):
    """Quartic profile ``K(u) = 15/16 (1 - u^2)^2`` on ``[-1, 1]``."""

    support = 1.0
    canonical_bandwidth = 2.623
    name = "biweight"

    def profile(self, u: np.ndarray) -> np.ndarray:
        w = 1.0 - u * u
        out = (15.0 / 16.0) * w * w
        return np.where(np.abs(u) <= 1.0, out, 0.0)


_KERNELS: dict[str, type[Kernel]] = {
    cls.name: cls
    for cls in (
        EpanechnikovKernel,
        GaussianKernel,
        UniformKernel,
        TriangularKernel,
        BiweightKernel,
    )
}


def get_kernel(kernel: str | Kernel) -> Kernel:
    """Resolve a kernel name or instance to a :class:`Kernel`.

    >>> get_kernel("epanechnikov").name
    'epanechnikov'
    """
    if isinstance(kernel, Kernel):
        return kernel
    try:
        return _KERNELS[kernel]()
    except KeyError:
        raise ParameterError(
            f"unknown kernel {kernel!r}; choose from {sorted(_KERNELS)}."
        ) from None
