"""Selectable density backends: one knob choosing the estimator family.

The sampler is agnostic about *how* densities are estimated (the paper
stresses the choice is orthogonal), so the default estimator every
entry point builds — :class:`~repro.core.DensityBiasedSampler` without
an explicit ``estimator``, the practitioner's-guide
:meth:`~repro.core.SamplerRecommendation.make_sampler`, the pipelines
and the experiment runner — is resolved through this registry:

* ``"kde"`` — the paper's kernel density estimate (reservoir centers,
  product kernels); the default.
* ``"tree"`` — the random-partition forest
  (:class:`~repro.density.tree.TreeDensityEstimator`): coarser
  per-point estimates, but a fit that is pure streaming counting and a
  lookup that costs ``O(trees * depth)`` per point instead of
  ``O(m * d)``.

Resolution mirrors the worker-count knob: an explicit ``backend``
argument wins, then the ambient default installed by
:func:`use_density_backend` (what ``repro run --density-backend``
sets), then the ``REPRO_DENSITY_BACKEND`` environment variable, then
``"kde"``. An explicitly supplied estimator instance always bypasses
the registry.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.density.base import DensityEstimator
from repro.exceptions import ParameterError

__all__ = [
    "DENSITY_BACKEND_ENV",
    "density_backend_names",
    "make_density_estimator",
    "resolve_density_backend",
    "use_density_backend",
]

#: Environment variable overriding the default density backend.
DENSITY_BACKEND_ENV = "REPRO_DENSITY_BACKEND"

_DEFAULT_BACKEND: ContextVar[str | None] = ContextVar(
    "repro_density_default_backend", default=None
)


def _make_kde(budget: int, random_state) -> DensityEstimator:
    from repro.density.kde import KernelDensityEstimator

    return KernelDensityEstimator(
        n_kernels=budget, random_state=random_state
    )


def _make_tree(budget: int, random_state) -> DensityEstimator:
    # The kernel budget does not transfer (a forest's summary is
    # trees x leaves, not centers); the estimator's own defaults are
    # the oracle-validated configuration.
    from repro.density.tree import TreeDensityEstimator

    return TreeDensityEstimator(random_state=random_state)


_BACKENDS = {
    "kde": _make_kde,
    "tree": _make_tree,
}


def density_backend_names() -> tuple[str, ...]:
    """Registered backend names, for CLI choices and error messages."""
    return tuple(sorted(_BACKENDS))


def resolve_density_backend(backend: str | None = None) -> str:
    """Resolve a backend request to a registered backend name.

    Parameters
    ----------
    backend:
        Explicit request, or ``None`` to defer to the ambient default
        (:func:`use_density_backend`), then the
        ``REPRO_DENSITY_BACKEND`` environment variable, then ``"kde"``.
    """
    if backend is None:
        backend = _DEFAULT_BACKEND.get()
    if backend is None:
        backend = os.environ.get(DENSITY_BACKEND_ENV, "").strip() or "kde"
    name = str(backend).strip().lower()
    if name not in _BACKENDS:
        raise ParameterError(
            f"unknown density backend {backend!r}; "
            f"choose from {sorted(_BACKENDS)}."
        )
    return name


@contextmanager
def use_density_backend(backend: str | None) -> Iterator[None]:
    """Install ``backend`` as the ambient default for a ``with`` block.

    Everything inside the block that builds a default estimator — the
    sampler fallback, the practitioner's guide, the pipelines — picks
    this value up, which is how one ``--density-backend`` flag reaches
    each construction site without threading a parameter through every
    call. Built on a context variable, so concurrent threads and tasks
    never observe each other's defaults.

    Parameters
    ----------
    backend:
        The backend name to install (validated eagerly; ``None``
        reverts to the environment/default resolution).
    """
    if backend is not None:
        backend = resolve_density_backend(backend)
    token = _DEFAULT_BACKEND.set(backend)
    try:
        yield
    finally:
        _DEFAULT_BACKEND.reset(token)


def make_density_estimator(
    backend: str | None = None,
    *,
    budget: int = 1000,
    random_state=None,
) -> DensityEstimator:
    """Build an unfitted estimator from the resolved backend.

    Parameters
    ----------
    backend:
        Backend name, or ``None`` for the ambient/environment
        resolution (see :func:`resolve_density_backend`).
    budget:
        Summary-size budget in the backend's natural unit — kernel
        centers for ``"kde"``; the forest backend sizes itself from
        its own validated defaults.
    random_state:
        Seed or generator forwarded to the estimator.
    """
    return _BACKENDS[resolve_density_backend(backend)](
        int(budget), random_state
    )
